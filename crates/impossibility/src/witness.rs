//! Witness-execution recording (Definitions 2–4 of the paper).
//!
//! Given a legal execution `e_p` that can be split `e_p = e⁰_p e¹_p e²_p`,
//! the Theorem 1 construction needs, for the factor `e¹_p`:
//!
//! * every process's **state projection** `φ_r(γ)` at the factor's first
//!   configuration, and
//! * for every ordered pair `(q, r)`, the sequence `MesSeq_r^q` of messages
//!   `r` received from `q` during the factor, and
//! * each process's local **move sequence** (its own activations and the
//!   deliveries it consumed, in order) — enough to re-drive a deterministic
//!   process through the factor.
//!
//! [`record_window`] captures all three from a live [`Runner`].

use std::collections::HashMap;

use snapstab_sim::{Move, ProcessId, Protocol, Runner, Scheduler, SimError, TraceEvent};

/// One step of a single process's local schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocalMove {
    /// The process executed its enabled internal actions.
    Activate,
    /// The process consumed the head message of the channel from `0`.
    DeliverFrom(ProcessId),
}

/// Everything Theorem 1 needs about one execution factor.
#[derive(Clone, Debug)]
pub struct WitnessWindow<P: Protocol> {
    /// Number of processes.
    pub n: usize,
    /// `φ_r` of the factor's first configuration, for every `r`.
    pub states: Vec<P::State>,
    /// `MesSeq_to^from`: messages `to` received from `from` during the
    /// factor, in receipt order.
    pub mes_seq: HashMap<(ProcessId, ProcessId), Vec<P::Msg>>,
    /// Per-process local move sequences during the factor.
    pub local_moves: Vec<Vec<LocalMove>>,
    /// Global step at which the factor started (diagnostics).
    pub start_step: u64,
    /// Global step at which the factor ended (diagnostics).
    pub end_step: u64,
}

impl<P: Protocol> WitnessWindow<P> {
    /// The longest received-message sequence over all ordered pairs — the
    /// channel capacity the Theorem 1 construction requires.
    pub fn max_mes_seq_len(&self) -> usize {
        self.mes_seq.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Total messages received across all pairs during the factor.
    pub fn total_messages(&self) -> usize {
        self.mes_seq.values().map(Vec::len).sum()
    }

    /// The received-message sequence for `(from, to)` (empty if none).
    pub fn mes_seq_for(&self, from: ProcessId, to: ProcessId) -> &[P::Msg] {
        self.mes_seq
            .get(&(from, to))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

/// Records a witness window from a live runner: steps the execution until
/// `start` holds (checked before each step), snapshots every process, then
/// keeps stepping until `end` holds (checked after each step), collecting
/// received messages and local moves.
///
/// # Errors
///
/// Returns [`SimError::StepBudgetExhausted`] if either predicate fails to
/// hold within `max_steps` total steps, and propagates step errors.
pub fn record_window<P, S>(
    runner: &mut Runner<P, S>,
    mut start: impl FnMut(&Runner<P, S>) -> bool,
    mut end: impl FnMut(&Runner<P, S>) -> bool,
    max_steps: u64,
) -> Result<WitnessWindow<P>, SimError>
where
    P: Protocol,
    S: Scheduler,
{
    let n = runner.n();
    let mut budget = max_steps;

    // Phase 1: reach the window start.
    while !start(runner) {
        if budget == 0 {
            return Err(SimError::StepBudgetExhausted { budget: max_steps });
        }
        budget -= 1;
        if runner.step()?.is_none() {
            // Quiescent before the window opened: the predicate can no
            // longer become true by itself.
            return Err(SimError::StepBudgetExhausted { budget: max_steps });
        }
    }

    let start_step = runner.step_count();
    let states: Vec<P::State> = runner.processes().iter().map(P::snapshot).collect();
    let mut mes_seq: HashMap<(ProcessId, ProcessId), Vec<P::Msg>> = HashMap::new();
    let mut local_moves: Vec<Vec<LocalMove>> = vec![Vec::new(); n];
    let trace_mark = runner.trace().len();

    // Phase 2: record until the window end.
    while !end(runner) {
        if budget == 0 {
            return Err(SimError::StepBudgetExhausted { budget: max_steps });
        }
        budget -= 1;
        let Some(mv) = runner.step()? else {
            return Err(SimError::StepBudgetExhausted { budget: max_steps });
        };
        match mv {
            Move::Activate(p) => local_moves[p.index()].push(LocalMove::Activate),
            Move::Deliver { from, to } => {
                local_moves[to.index()].push(LocalMove::DeliverFrom(from));
            }
        }
    }

    // Collect the delivered messages from the trace suffix (delivery order
    // per pair is exactly receipt order).
    for entry in &runner.trace().entries()[trace_mark..] {
        if let TraceEvent::Delivered { from, to, msg } = &entry.event {
            mes_seq.entry((*from, *to)).or_default().push(msg.clone());
        }
    }

    Ok(WitnessWindow {
        n,
        states,
        mes_seq,
        local_moves,
        start_step,
        end_step: runner.step_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_core::harness;
    use snapstab_core::idl::IdlProcess;
    use snapstab_core::request::RequestState;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn records_idl_wave_window() {
        let mut r = harness::pif_system(3, |i| IdlProcess::new(p(i), 3, 10 + i as u64), 1);
        r.process_mut(p(0)).request_learning();
        let w = record_window(
            &mut r,
            |r| r.process(p(0)).request() == RequestState::Wait,
            |r| r.process(p(0)).request() == RequestState::Done,
            1_000_000,
        )
        .unwrap();
        assert_eq!(w.n, 3);
        // During a complete wave, P0 received at least 4 messages from each
        // neighbor (the four echoes).
        assert!(
            w.mes_seq_for(p(1), p(0)).len() >= 4,
            "{:?}",
            w.mes_seq_for(p(1), p(0)).len()
        );
        assert!(w.mes_seq_for(p(2), p(0)).len() >= 4);
        assert!(w.max_mes_seq_len() >= 4);
        assert!(w.total_messages() >= 16);
        // P0 performed both activations and deliveries.
        assert!(w.local_moves[0].contains(&LocalMove::Activate));
        assert!(w.local_moves[0].contains(&LocalMove::DeliverFrom(p(1))));
        assert!(w.end_step > w.start_step);
        // The snapshot at window start has the request still pending.
        assert_eq!(w.states[0].0.request, RequestState::Wait);
    }

    #[test]
    fn budget_exhaustion_when_start_never_holds() {
        let mut r = harness::pif_system(2, |i| IdlProcess::new(p(i), 2, i as u64), 0);
        let err = record_window(&mut r, |_| false, |_| true, 50).unwrap_err();
        assert!(matches!(err, SimError::StepBudgetExhausted { .. }));
    }

    #[test]
    fn empty_window_when_predicates_overlap() {
        let mut r = harness::pif_system(2, |i| IdlProcess::new(p(i), 2, i as u64), 0);
        let w = record_window(&mut r, |_| true, |_| true, 50).unwrap();
        assert_eq!(w.total_messages(), 0);
        assert_eq!(w.start_step, w.end_step);
    }
}
