//! Safety-distributed specifications (Definition 5).
//!
//! A specification is *safety-distributed* when there is a **bad factor** —
//! a sequence of abstract configurations (Definition 2) — such that (1) any
//! execution containing the bad factor violates the specification, while
//! (2) each process's own projection of the bad factor is locally plausible
//! (it occurs in some legal execution). Mutual exclusion is the paper's
//! running example: *several requesting processes in the critical section
//! at once* is the bad factor, yet *"I am in the critical section"* is
//! perfectly legal for each process in isolation.
//!
//! [`BadFactor`] is the executable form: a predicate over abstract
//! configurations (the vector of state projections) that the replay engine
//! watches for.

use snapstab_core::me::MeState;
use snapstab_sim::Protocol;

/// An executable bad factor: a predicate on abstract configurations whose
/// occurrence proves a safety violation of the specification.
pub trait BadFactor<P: Protocol> {
    /// True if this abstract configuration (the vector of all state
    /// projections, indexed by process) is a bad one.
    fn matches(&self, abstract_config: &[P::State]) -> bool;

    /// Human-readable description of the bad factor (for reports).
    fn describe(&self) -> String;
}

/// The mutual-exclusion bad factor: at least two processes simultaneously
/// inside the critical section. (The replay harness separately guarantees
/// both are *requesting* processes that started via A0, making the
/// violation binding under footnote 1's reading.)
#[derive(Clone, Copy, Debug, Default)]
pub struct MutualExclusionBad;

impl<P> BadFactor<P> for MutualExclusionBad
where
    P: Protocol<State = MeState>,
{
    fn matches(&self, abstract_config: &[MeState]) -> bool {
        abstract_config.iter().filter(|s| s.in_cs.is_some()).count() >= 2
    }

    fn describe(&self) -> String {
        "two or more processes inside the critical section".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_core::me::MeProcess;
    use snapstab_sim::{ProcessId, SimRng};

    #[test]
    fn me_bad_factor_requires_two_in_cs() {
        let mk = |i: usize| MeProcess::new(ProcessId::new(i), 3, 10 + i as u64);
        let mut procs = vec![mk(0), mk(1), mk(2)];
        let bad = MutualExclusionBad;
        let config = |ps: &[MeProcess]| ps.iter().map(|p| p.snapshot()).collect::<Vec<_>>();
        assert!(!<MutualExclusionBad as BadFactor<MeProcess>>::matches(
            &bad,
            &config(&procs)
        ));

        // Put one process in the CS via its state projection.
        let mut s0 = procs[0].snapshot();
        s0.in_cs = Some(3);
        procs[0].restore(s0);
        assert!(!<MutualExclusionBad as BadFactor<MeProcess>>::matches(
            &bad,
            &config(&procs)
        ));

        let mut s2 = procs[2].snapshot();
        s2.in_cs = Some(1);
        procs[2].restore(s2);
        assert!(<MutualExclusionBad as BadFactor<MeProcess>>::matches(
            &bad,
            &config(&procs)
        ));
        let _ = SimRng::seed_from(0); // silence unused-import lints in some cfgs
    }

    #[test]
    fn describe_mentions_cs() {
        let bad = MutualExclusionBad;
        assert!(<MutualExclusionBad as BadFactor<MeProcess>>::describe(&bad)
            .contains("critical section"));
    }
}
