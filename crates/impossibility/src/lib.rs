//! # snapstab-impossibility — Theorem 1, executably
//!
//! The paper's impossibility result (§3):
//!
//! > **Theorem 1.** There exists no safety-distributed specification that
//! > admits a snap-stabilizing solution in message-passing systems with
//! > unbounded capacity channels.
//!
//! The proof is constructive, and this crate executes it:
//!
//! 1. [`witness`] records, from legal executions, each process's *state
//!    projection* at a window start and the ordered sequences of messages
//!    `MesSeq_p^q` it received during the window (Definitions 2–4).
//! 2. [`construction`] assembles the adversarial initial configuration
//!    `γ₀`: restore the recorded states and pre-load every channel with the
//!    recorded message sequences. With `Capacity::Unbounded` this always
//!    succeeds; with `Capacity::Bounded(c)` it **fails to exist** as soon as
//!    some `|MesSeq| > c` — exactly the observation that lets §4 circumvent
//!    the impossibility.
//! 3. [`replay`] re-executes each process's recorded move sequence. The
//!    processes are deterministic and every input they need is already in
//!    the channels, so each one locally re-lives its witness execution —
//!    and the interleaving is chosen so the *bad factor* appears: for
//!    mutual exclusion, two requesting processes simultaneously inside the
//!    critical section.
//! 4. [`me_demo`] packages the full demonstration against the paper's own
//!    mutual-exclusion protocol (Algorithm 3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod construction;
pub mod me_demo;
pub mod replay;
pub mod safety;
pub mod witness;

pub use construction::{AdversarialConstruction, Feasibility};
pub use me_demo::{DemoOutcome, DoubleWinDemo};
pub use replay::{replay_construction, ReplayReport};
pub use safety::{BadFactor, MutualExclusionBad};
pub use witness::{record_window, LocalMove, WitnessWindow};
