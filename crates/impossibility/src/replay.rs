//! Deterministic replay of an adversarial construction.
//!
//! After [`AdversarialConstruction::install`] puts the system in `γ₀`,
//! every process can re-live its witness factor *locally*: its state
//! matches, and every message it consumed in the witness is already
//! pre-loaded at the head of the corresponding channel (FIFO order means
//! anything sent *during* the replay queues up behind the pre-load and is
//! never touched by the recorded delivery counts). The replay executes the
//! per-process move sequences round-robin, watching for the bad factor.

use snapstab_core::me::MeState;
use snapstab_sim::{Move, ProcessId, Protocol, Runner, Scheduler, SimError};

use crate::construction::AdversarialConstruction;
use crate::safety::BadFactor;
use crate::witness::LocalMove;

/// Outcome of replaying a construction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReplayReport {
    /// Steps executed.
    pub steps: u64,
    /// Step at which the bad factor first held, if it did.
    pub bad_factor_step: Option<u64>,
    /// Abstract configuration at the bad-factor step (state projections).
    pub moves_remaining: usize,
}

impl ReplayReport {
    /// True if the bad factor was observed — the safety violation that
    /// proves Theorem 1's claim for this protocol and specification.
    pub fn violated(&self) -> bool {
        self.bad_factor_step.is_some()
    }
}

fn local_to_move(p: ProcessId, lm: LocalMove) -> Move {
    match lm {
        LocalMove::Activate => Move::Activate(p),
        LocalMove::DeliverFrom(from) => Move::Deliver { from, to: p },
    }
}

/// Replays an installed construction on `runner`, interleaving the
/// per-process schedules round-robin, and checks the bad factor after
/// every step.
///
/// # Errors
///
/// Propagates [`SimError`] from the runner (e.g. a recorded delivery whose
/// channel is unexpectedly empty — which would indicate the construction
/// was not installed, or the processes are not deterministic).
pub fn replay_construction<P, S, B>(
    runner: &mut Runner<P, S>,
    construction: &AdversarialConstruction<P>,
    bad: &B,
) -> Result<ReplayReport, SimError>
where
    P: Protocol,
    S: Scheduler,
    B: BadFactor<P>,
{
    let n = construction.n;
    let mut cursors = vec![0usize; n];
    let mut steps = 0u64;
    let mut bad_step = None;

    loop {
        let mut progressed = false;
        for (r, cursor) in cursors.iter_mut().enumerate() {
            let schedule = &construction.schedules[r];
            if *cursor >= schedule.len() {
                continue;
            }
            let mv = local_to_move(ProcessId::new(r), schedule[*cursor]);
            *cursor += 1;
            runner.execute_move(mv)?;
            steps += 1;
            progressed = true;
            if bad_step.is_none() {
                let config: Vec<P::State> = runner.processes().iter().map(P::snapshot).collect();
                if bad.matches(&config) {
                    bad_step = Some(runner.step_count());
                }
            }
        }
        if !progressed {
            break;
        }
    }

    let moves_remaining = construction
        .schedules
        .iter()
        .zip(&cursors)
        .map(|(s, &c)| s.len() - c)
        .sum();
    Ok(ReplayReport {
        steps,
        bad_factor_step: bad_step,
        moves_remaining,
    })
}

/// Replays with protagonist-priority interleaving: first drives
/// `protagonist_a`'s schedule until its state projection says it is inside
/// the critical section, then `protagonist_b`'s likewise, then finishes all
/// schedules round-robin. This maximizes the overlap window for the
/// mutual-exclusion bad factor; [`replay_construction`]'s plain round-robin
/// usually finds it too, but this order makes the violation deterministic.
///
/// # Errors
///
/// Propagates [`SimError`] from the runner.
pub fn replay_for_cs_overlap<P, S, B>(
    runner: &mut Runner<P, S>,
    construction: &AdversarialConstruction<P>,
    bad: &B,
    protagonist_a: ProcessId,
    protagonist_b: ProcessId,
) -> Result<ReplayReport, SimError>
where
    P: Protocol<State = MeState>,
    S: Scheduler,
    B: BadFactor<P>,
{
    let n = construction.n;
    let mut cursors = vec![0usize; n];
    let mut steps = 0u64;
    let mut bad_step = None;

    let check_bad = |runner: &Runner<P, S>, bad_step: &mut Option<u64>| {
        if bad_step.is_none() {
            let config: Vec<P::State> = runner.processes().iter().map(P::snapshot).collect();
            if bad.matches(&config) {
                *bad_step = Some(runner.step_count());
            }
        }
    };

    // Phase 1: drive each protagonist (in order) until it is inside the CS
    // or its schedule ends.
    for &prot in &[protagonist_a, protagonist_b] {
        let r = prot.index();
        while cursors[r] < construction.schedules[r].len()
            && runner.process(prot).snapshot().in_cs.is_none()
        {
            let mv = local_to_move(prot, construction.schedules[r][cursors[r]]);
            cursors[r] += 1;
            runner.execute_move(mv)?;
            steps += 1;
            check_bad(runner, &mut bad_step);
        }
    }

    // Phase 2: finish every schedule round-robin.
    loop {
        let mut progressed = false;
        for (r, cursor) in cursors.iter_mut().enumerate() {
            if *cursor >= construction.schedules[r].len() {
                continue;
            }
            let mv = local_to_move(ProcessId::new(r), construction.schedules[r][*cursor]);
            *cursor += 1;
            runner.execute_move(mv)?;
            steps += 1;
            progressed = true;
            check_bad(runner, &mut bad_step);
        }
        if !progressed {
            break;
        }
    }

    let moves_remaining = construction
        .schedules
        .iter()
        .zip(&cursors)
        .map(|(s, &c)| s.len() - c)
        .sum();
    Ok(ReplayReport {
        steps,
        bad_factor_step: bad_step,
        moves_remaining,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_violation_flag() {
        let r = ReplayReport {
            steps: 10,
            bad_factor_step: None,
            moves_remaining: 0,
        };
        assert!(!r.violated());
        let r = ReplayReport {
            steps: 10,
            bad_factor_step: Some(5),
            moves_remaining: 2,
        };
        assert!(r.violated());
    }

    #[test]
    fn local_move_mapping() {
        let p = ProcessId::new(2);
        assert_eq!(local_to_move(p, LocalMove::Activate), Move::Activate(p));
        assert_eq!(
            local_to_move(p, LocalMove::DeliverFrom(ProcessId::new(0))),
            Move::Deliver {
                from: ProcessId::new(0),
                to: p
            }
        );
    }
}
