//! The end-to-end Theorem 1 demonstration against Algorithm 3.
//!
//! Mutual exclusion is safety-distributed (the paper's own example), so by
//! Theorem 1 *no* protocol — including the paper's own Algorithm 3 — can
//! snap-stabilize it over unbounded-capacity channels. This module builds
//! the explicit counterexample:
//!
//! 1. Record witness execution `E_a`: a clean run in which process `a`
//!    requests and is served (every message `a` and the bystanders receive
//!    is logged).
//! 2. Record witness execution `E_b`: likewise for process `b`.
//! 3. Compose `γ₀`: `a` starts in its `E_a` state, `b` in its `E_b` state,
//!    bystanders in their `E_a` states; the channel into each process is
//!    pre-loaded with exactly the messages that process received in its
//!    chosen witness — *messages that nobody ever sent in this execution*.
//! 4. Replay: both `a` and `b` deterministically re-live their winning
//!    runs and end up inside the critical section **simultaneously**, both
//!    as genuine requesters — the bad factor.
//!
//! Against bounded capacity the very same construction is infeasible
//! (`|MesSeq| > c`), which is why §4's protocols escape the theorem.

use snapstab_core::me::{MeConfig, MeProcess, ValueMode};
use snapstab_core::request::RequestState;
use snapstab_core::spec::{analyze_me_trace, MeReport};
use snapstab_sim::{Capacity, NetworkBuilder, ProcessId, RoundRobin, Runner, SimError};

use crate::construction::{AdversarialConstruction, Feasibility};
use crate::replay::{replay_for_cs_overlap, ReplayReport};
use crate::safety::MutualExclusionBad;
use crate::witness::{record_window, WitnessWindow};

/// Configuration of the double-win demonstration.
#[derive(Clone, Copy, Debug)]
pub struct DoubleWinDemo {
    /// System size (≥ 3: a leader plus two protagonists).
    pub n: usize,
    /// First protagonist (must not be the leader, process 0).
    pub a: ProcessId,
    /// Second protagonist (distinct from `a`, not the leader).
    pub b: ProcessId,
    /// Critical-section duration in activations (must be ≥ 1 so the CS
    /// occupancies can overlap in an interleaving semantics).
    pub cs_duration: u64,
    /// Seed for the witness executions.
    pub seed: u64,
    /// Step budget for each witness recording.
    pub max_steps: u64,
}

impl Default for DoubleWinDemo {
    fn default() -> Self {
        DoubleWinDemo {
            n: 3,
            a: ProcessId::new(1),
            b: ProcessId::new(2),
            cs_duration: 8,
            seed: 0xD0,
            max_steps: 2_000_000,
        }
    }
}

/// Everything the demonstration produced.
#[derive(Clone, Debug)]
pub struct DemoOutcome {
    /// Longest per-channel pre-load the construction requires — the
    /// capacity bound below which `γ₀` stops existing.
    pub max_channel_load: usize,
    /// Total pre-loaded ("sent by nobody") messages in `γ₀`.
    pub total_preloaded: usize,
    /// Feasibility verdicts over the probed capacities, `(capacity,
    /// feasible)` with `None` meaning unbounded.
    pub feasibility: Vec<(Option<usize>, bool)>,
    /// The replay report (unbounded channels).
    pub replay: ReplayReport,
    /// Trace analysis of the replay: `genuine_overlaps` is non-empty iff
    /// two genuine requesters overlapped in the CS.
    pub report: MeReport,
}

impl DemoOutcome {
    /// True if the demonstration exhibited the safety violation: two
    /// genuine requesters simultaneously in the critical section.
    pub fn violation_exhibited(&self) -> bool {
        self.replay.violated() && !self.report.exclusivity_holds()
    }
}

impl DoubleWinDemo {
    fn ids(&self) -> Vec<u64> {
        // Process 0 has the smallest id: it is the leader.
        (0..self.n).map(|i| 100 + i as u64).collect()
    }

    fn config(&self) -> MeConfig {
        MeConfig {
            cs_duration: self.cs_duration,
            value_mode: ValueMode::Corrected,
            ..MeConfig::default()
        }
    }

    fn clean_runner(&self, capacity: Capacity) -> Runner<MeProcess, RoundRobin> {
        let ids = self.ids();
        let config = self.config();
        let processes = (0..self.n)
            .map(|i| MeProcess::with_config(ProcessId::new(i), self.n, ids[i], config))
            .collect();
        let network = NetworkBuilder::new(self.n).capacity(capacity).build();
        Runner::new(processes, network, RoundRobin::new(), self.seed)
    }

    /// Records the witness execution in which `winner` requests the CS from
    /// a clean configuration and is served.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StepBudgetExhausted`] if the witness run does
    /// not serve the request within the budget.
    pub fn record_witness(&self, winner: ProcessId) -> Result<WitnessWindow<MeProcess>, SimError> {
        let mut runner = self.clean_runner(Capacity::Bounded(1));
        assert!(
            runner.process_mut(winner).request_cs(),
            "clean configuration must accept the request"
        );
        record_window(
            &mut runner,
            |_| true, // the window opens at the request
            |r| r.process(winner).request() == RequestState::Done,
            self.max_steps,
        )
    }

    /// Runs the full demonstration, probing feasibility at the given
    /// bounded capacities plus unbounded.
    ///
    /// # Errors
    ///
    /// Propagates witness-recording and replay errors.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is malformed (protagonists equal, the
    /// leader chosen as protagonist, `n < 3`, or `cs_duration == 0`).
    pub fn run(&self, probe_capacities: &[usize]) -> Result<DemoOutcome, SimError> {
        assert!(self.n >= 3, "need a leader plus two protagonists");
        assert_ne!(self.a, self.b, "protagonists must differ");
        assert_ne!(self.a.index(), 0, "the leader cannot be a protagonist");
        assert_ne!(self.b.index(), 0, "the leader cannot be a protagonist");
        assert!(self.cs_duration >= 1, "overlap needs a non-atomic CS (D1)");

        let wa = self.record_witness(self.a)?;
        let wb = self.record_witness(self.b)?;

        // Protagonists replay their own wins; bystanders follow E_a.
        let windows: Vec<&WitnessWindow<MeProcess>> = (0..self.n)
            .map(|r| if r == self.b.index() { &wb } else { &wa })
            .collect();
        let construction = AdversarialConstruction::compose(&windows);

        let mut feasibility: Vec<(Option<usize>, bool)> = probe_capacities
            .iter()
            .map(|&c| {
                (
                    Some(c),
                    construction.feasibility(Capacity::Bounded(c)).is_feasible(),
                )
            })
            .collect();
        feasibility.push((
            None,
            matches!(
                construction.feasibility(Capacity::Unbounded),
                Feasibility::Feasible
            ),
        ));

        // Install γ₀ on an unbounded network and replay.
        let mut runner = self.clean_runner(Capacity::Unbounded);
        construction.install(&mut runner)?;
        runner.mark(self.a, "request");
        runner.mark(self.b, "request");
        let replay = replay_for_cs_overlap(
            &mut runner,
            &construction,
            &MutualExclusionBad,
            self.a,
            self.b,
        )?;
        let report = analyze_me_trace(runner.trace(), self.n);

        Ok(DemoOutcome {
            max_channel_load: construction.max_channel_load(),
            total_preloaded: construction.total_preloaded(),
            feasibility,
            replay,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_win_demo_violates_on_unbounded_and_not_on_bounded() {
        let demo = DoubleWinDemo::default();
        let outcome = demo.run(&[1, 2, 4]).expect("demo must run");

        // The construction needs more than one message per channel, so it
        // is infeasible at the paper's bounded capacities...
        assert!(outcome.max_channel_load > 1);
        for (cap, feasible) in &outcome.feasibility {
            match cap {
                Some(c) if *c < outcome.max_channel_load => {
                    assert!(!feasible, "capacity {c} must refuse γ₀")
                }
                Some(_) => {}
                None => assert!(feasible, "unbounded must accept γ₀"),
            }
        }

        // ...and on unbounded channels the replay exhibits two genuine
        // requesters in the CS simultaneously.
        assert!(outcome.replay.violated(), "bad factor must be reached");
        assert!(
            !outcome.report.exclusivity_holds(),
            "genuine CS overlap must be visible in the trace: {:?}",
            outcome.report.genuine_overlaps.len()
        );
        assert!(outcome.violation_exhibited());
    }

    #[test]
    fn witness_serves_the_requester() {
        let demo = DoubleWinDemo::default();
        let w = demo.record_witness(demo.a).unwrap();
        assert!(w.total_messages() > 0);
        assert!(
            w.max_mes_seq_len() > 1,
            "a win needs several messages per channel"
        );
        // The protagonist's schedule contains deliveries from the leader.
        assert!(w.local_moves[demo.a.index()]
            .iter()
            .any(|m| matches!(m, crate::witness::LocalMove::DeliverFrom(q) if q.index() == 0)));
    }
}
