//! Assembling the adversarial initial configuration `γ₀` (Theorem 1).
//!
//! Per the proof: pick, for each process `r`, a witness window `W(r)` (the
//! protagonists of the bad factor use their own; everyone else shares a
//! base witness). Then
//!
//! * `φ_r(γ₀) = W(r).states[r]` — process states from the witnesses;
//! * the channel `x → r` initially holds exactly `W(r).MesSeq_r^x` — every
//!   message `r` will ever need is already in flight, "sent by nobody".
//!
//! The paper's parenthetical is the crux: *"Assuming channels with a
//! bounded capacity `c`, no configuration satisfies Point (2) if there are
//! two distinct processes `p`, `q` such that `|MesSeq_p^q| > c`."*
//! [`AdversarialConstruction::feasibility`] computes exactly this.

use std::collections::HashMap;

use snapstab_sim::{Capacity, ProcessId, Protocol, Runner, Scheduler, SimError};

use crate::witness::{LocalMove, WitnessWindow};

/// Whether `γ₀` exists under a given channel-capacity regime.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Feasibility {
    /// The configuration exists (all pre-loads fit).
    Feasible,
    /// The configuration does not exist: some channel would need to hold
    /// more messages than the capacity bound allows.
    Infeasible {
        /// The offending links: `(from, to, required)` with `required > c`.
        violations: Vec<(ProcessId, ProcessId, usize)>,
        /// The capacity bound.
        bound: usize,
    },
}

impl Feasibility {
    /// True if the configuration exists.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible)
    }
}

/// The adversarial initial configuration plus the per-process replay
/// schedules extracted from the witnesses.
#[derive(Clone, Debug)]
pub struct AdversarialConstruction<P: Protocol> {
    /// Number of processes.
    pub n: usize,
    /// `φ_r(γ₀)` for every process.
    pub initial_states: Vec<P::State>,
    /// Initial channel contents: `(from, to) → messages` (head first).
    pub channel_preload: HashMap<(ProcessId, ProcessId), Vec<P::Msg>>,
    /// Per-process move sequences to replay.
    pub schedules: Vec<Vec<LocalMove>>,
}

impl<P: Protocol> AdversarialConstruction<P> {
    /// Composes the construction: `windows[r]` is the witness window chosen
    /// for process `r` (protagonists get their own witness, everyone else a
    /// shared base witness — the caller decides).
    ///
    /// # Panics
    ///
    /// Panics if the windows disagree on the system size.
    pub fn compose(windows: &[&WitnessWindow<P>]) -> Self {
        let n = windows.len();
        assert!(n >= 2, "need at least two processes");
        for w in windows {
            assert_eq!(w.n, n, "witness windows disagree on system size");
        }
        let initial_states: Vec<P::State> = windows
            .iter()
            .enumerate()
            .map(|(r, w)| w.states[r].clone())
            .collect();
        let mut channel_preload: HashMap<(ProcessId, ProcessId), Vec<P::Msg>> = HashMap::new();
        for (r, w) in windows.iter().enumerate() {
            let to = ProcessId::new(r);
            for from_idx in 0..n {
                if from_idx == r {
                    continue;
                }
                let from = ProcessId::new(from_idx);
                let seq = w.mes_seq_for(from, to);
                if !seq.is_empty() {
                    channel_preload.insert((from, to), seq.to_vec());
                }
            }
        }
        let schedules: Vec<Vec<LocalMove>> = windows
            .iter()
            .enumerate()
            .map(|(r, w)| w.local_moves[r].clone())
            .collect();
        AdversarialConstruction {
            n,
            initial_states,
            channel_preload,
            schedules,
        }
    }

    /// The largest pre-load any single channel needs.
    pub fn max_channel_load(&self) -> usize {
        self.channel_preload
            .values()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
    }

    /// Total pre-loaded messages.
    pub fn total_preloaded(&self) -> usize {
        self.channel_preload.values().map(Vec::len).sum()
    }

    /// Does `γ₀` exist under `capacity`? (The paper's Point (2) check.)
    pub fn feasibility(&self, capacity: Capacity) -> Feasibility {
        match capacity {
            Capacity::Unbounded => Feasibility::Feasible,
            Capacity::Bounded(c) => {
                let violations: Vec<(ProcessId, ProcessId, usize)> = self
                    .channel_preload
                    .iter()
                    .filter(|(_, msgs)| msgs.len() > c)
                    .map(|(&(from, to), msgs)| (from, to, msgs.len()))
                    .collect();
                if violations.is_empty() {
                    Feasibility::Feasible
                } else {
                    Feasibility::Infeasible {
                        violations,
                        bound: c,
                    }
                }
            }
        }
    }

    /// Installs `γ₀` into a runner: restores every process state and
    /// pre-loads every channel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CapacityExceeded`] if the runner's network
    /// capacity cannot hold the construction (the Theorem 1 dichotomy) —
    /// nothing is modified in that case.
    pub fn install<S: Scheduler>(&self, runner: &mut Runner<P, S>) -> Result<(), SimError> {
        assert_eq!(runner.n(), self.n, "runner size mismatch");
        if let Feasibility::Infeasible { violations, bound } =
            self.feasibility(runner.network().capacity())
        {
            let (from, to, required) = violations[0];
            return Err(SimError::CapacityExceeded {
                from,
                to,
                required,
                bound,
            });
        }
        for (r, state) in self.initial_states.iter().enumerate() {
            runner.process_mut(ProcessId::new(r)).restore(state.clone());
        }
        for (&(from, to), msgs) in &self.channel_preload {
            let mut ch = runner
                .network_mut()
                .channel_mut(from, to)
                .expect("valid link");
            ch.clear();
            ch.preload(msgs.iter().cloned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness::record_window;
    use snapstab_core::harness;
    use snapstab_core::idl::IdlProcess;
    use snapstab_core::request::RequestState;
    use snapstab_sim::{NetworkBuilder, RoundRobin};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn idl_witness(initiator: usize) -> WitnessWindow<IdlProcess> {
        let mut r = harness::pif_system(3, |i| IdlProcess::new(p(i), 3, 10 + i as u64), 7);
        r.process_mut(p(initiator)).request_learning();
        record_window(
            &mut r,
            |r| r.process(p(initiator)).request() == RequestState::Wait,
            |r| r.process(p(initiator)).request() == RequestState::Done,
            1_000_000,
        )
        .unwrap()
    }

    #[test]
    fn compose_and_feasibility_dichotomy() {
        let w0 = idl_witness(0);
        let w1 = idl_witness(1);
        // P0 and P1 replay their own winning windows; P2 follows P0's world.
        let c = AdversarialConstruction::compose(&[&w0, &w1, &w0]);
        assert_eq!(c.n, 3);
        assert!(
            c.max_channel_load() >= 4,
            "a wave needs ≥4 echoes per channel"
        );
        assert!(c.feasibility(Capacity::Unbounded).is_feasible());
        match c.feasibility(Capacity::Bounded(1)) {
            Feasibility::Infeasible { violations, bound } => {
                assert_eq!(bound, 1);
                assert!(!violations.is_empty());
                assert!(violations.iter().all(|&(_, _, req)| req > 1));
            }
            Feasibility::Feasible => panic!("must be infeasible at capacity 1"),
        }
        // A bound at least as large as the max load is feasible.
        assert!(c
            .feasibility(Capacity::Bounded(c.max_channel_load()))
            .is_feasible());
    }

    #[test]
    fn install_rejects_bounded_runner() {
        let w0 = idl_witness(0);
        let w1 = idl_witness(1);
        let c = AdversarialConstruction::compose(&[&w0, &w1, &w0]);
        let processes = (0..3)
            .map(|i| IdlProcess::new(p(i), 3, 10 + i as u64))
            .collect();
        let network = NetworkBuilder::new(3)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut runner = Runner::new(processes, network, RoundRobin::new(), 0);
        let err = c.install(&mut runner).unwrap_err();
        assert!(matches!(err, SimError::CapacityExceeded { .. }));
        // Nothing was pre-loaded.
        assert!(runner.network().is_quiescent());
    }

    #[test]
    fn install_succeeds_unbounded() {
        let w0 = idl_witness(0);
        let w1 = idl_witness(1);
        let c = AdversarialConstruction::compose(&[&w0, &w1, &w0]);
        let processes = (0..3)
            .map(|i| IdlProcess::new(p(i), 3, 10 + i as u64))
            .collect();
        let network = NetworkBuilder::new(3).capacity(Capacity::Unbounded).build();
        let mut runner = Runner::new(processes, network, RoundRobin::new(), 0);
        c.install(&mut runner).unwrap();
        assert_eq!(runner.network().messages_in_flight(), c.total_preloaded());
        // States restored: the protagonists' requests are pending again.
        assert_eq!(runner.process(p(0)).request(), RequestState::Wait);
        assert_eq!(runner.process(p(1)).request(), RequestState::Wait);
    }
}
