//! A Varghese-style counter-flushing wave protocol.
//!
//! Counter flushing [33 in the paper] makes a request/reply wave
//! self-stabilizing on bounded channels: the initiator stamps each wave
//! with a counter `c ∈ {0..K-1}`, bumps it per wave, and accepts only
//! replies echoing the current stamp. Stale messages are *flushed*: they
//! can pollute at most the waves whose stamp they happen to carry.
//!
//! The contrast with the snap-stabilizing PIF (experiment C1):
//!
//! * from a corrupted configuration, the **first** wave collects a forged
//!   reply whenever a stale reply in a channel carries the current stamp —
//!   probability ≈ 1/K per polluted channel;
//! * after one complete wave the channels are flushed and subsequent waves
//!   are correct — *eventual* safety (self-stabilization), versus the PIF's
//!   immediate safety for every started wave (snap-stabilization).

use snapstab_core::request::RequestState;
use snapstab_sim::{ArbitraryState, Context, PerNeighbor, ProcessId, Protocol, SimRng};

/// Messages of the counter-flushing protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CfMsg {
    /// A stamped query.
    Query {
        /// The wave stamp.
        c: u64,
    },
    /// A stamped reply carrying the responder's datum.
    Reply {
        /// The echoed stamp.
        c: u64,
        /// The responder's datum.
        data: u32,
    },
}

impl ArbitraryState for CfMsg {
    /// Stamps drawn from `0..8` so forged replies have observable
    /// collision probability in tests; experiments sweeping `K` pre-load
    /// channels explicitly.
    fn arbitrary(rng: &mut SimRng) -> Self {
        if rng.gen_bool(0.5) {
            CfMsg::Query {
                c: rng.gen_u64() % 8,
            }
        } else {
            CfMsg::Reply {
                c: rng.gen_u64() % 8,
                data: u32::arbitrary(rng),
            }
        }
    }
}

/// Observable events of the protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CfEvent {
    /// A wave started with this stamp.
    Started {
        /// The stamp of the new wave.
        c: u64,
    },
    /// A reply was accepted for the current wave.
    Collected {
        /// The responder.
        from: ProcessId,
        /// The collected datum.
        data: u32,
    },
    /// The wave decided (all replies collected).
    Decided,
}

/// The state projection of a counter-flushing process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CfState {
    /// The request variable.
    pub request: RequestState,
    /// The wave counter.
    pub counter: u64,
    /// Collected replies (own slot unused).
    pub collected: Vec<Option<u32>>,
}

/// A counter-flushing process: initiator-capable, and answers queries with
/// its fixed datum.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CfProcess {
    me: ProcessId,
    n: usize,
    /// Counter domain size `K`.
    k: u64,
    /// The datum this process reports to queries.
    data_value: u32,
    request: RequestState,
    counter: u64,
    collected: PerNeighbor<Option<u32>>,
}

impl CfProcess {
    /// Creates a correctly-initialized process with counter domain `K`
    /// answering queries with `data_value`.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2`.
    pub fn new(me: ProcessId, n: usize, k: u64, data_value: u32) -> Self {
        assert!(k >= 2, "counter domain needs at least two stamps");
        CfProcess {
            me,
            n,
            k,
            data_value,
            request: RequestState::Done,
            counter: 0,
            collected: PerNeighbor::new(me, n, None),
        }
    }

    /// Current request state.
    pub fn request(&self) -> RequestState {
        self.request
    }

    /// The current wave stamp.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Externally requests a wave.
    pub fn request_wave(&mut self) -> bool {
        self.request.try_request()
    }

    /// The datum collected from `q` in the last completed/ongoing wave.
    pub fn collected_from(&self, q: ProcessId) -> Option<u32> {
        *self.collected.get(q)
    }
}

impl Protocol for CfProcess {
    type Msg = CfMsg;
    type Event = CfEvent;
    type State = CfState;

    fn activate(&mut self, ctx: &mut Context<'_, CfMsg, CfEvent>) -> bool {
        let mut acted = false;
        if self.request == RequestState::Wait {
            self.request = RequestState::In;
            self.counter = (self.counter + 1) % self.k;
            self.collected.fill_with(|_| None);
            ctx.emit(CfEvent::Started { c: self.counter });
            acted = true;
        }
        if self.request == RequestState::In {
            if self.collected.all(Option::is_some) {
                self.request = RequestState::Done;
                ctx.emit(CfEvent::Decided);
            } else {
                // Retransmit to the still-missing responders (loss-tolerant,
                // unlike the naive protocol).
                let missing: Vec<ProcessId> = self
                    .collected
                    .iter()
                    .filter(|(_, v)| v.is_none())
                    .map(|(q, _)| q)
                    .collect();
                for q in missing {
                    ctx.send(q, CfMsg::Query { c: self.counter });
                }
            }
            acted = true;
        }
        acted
    }

    fn on_receive(&mut self, from: ProcessId, msg: CfMsg, ctx: &mut Context<'_, CfMsg, CfEvent>) {
        match msg {
            CfMsg::Query { c } => {
                ctx.send(
                    from,
                    CfMsg::Reply {
                        c,
                        data: self.data_value,
                    },
                );
            }
            CfMsg::Reply { c, data } => {
                // The flushing rule: accept only the current stamp. A stale
                // reply that *happens* to carry it is indistinguishable
                // from a genuine one — the 1/K violation window.
                if self.request == RequestState::In
                    && c == self.counter
                    && self.collected.get(from).is_none()
                {
                    self.collected.set(from, Some(data));
                    ctx.emit(CfEvent::Collected { from, data });
                }
            }
        }
    }

    fn has_enabled_action(&self) -> bool {
        matches!(self.request, RequestState::Wait | RequestState::In)
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        self.request = RequestState::arbitrary(rng);
        self.counter = rng.gen_u64() % self.k;
        self.collected.fill_with(|_| {
            if bool::arbitrary(rng) {
                Some(u32::arbitrary(rng))
            } else {
                None
            }
        });
    }

    fn snapshot(&self) -> CfState {
        CfState {
            request: self.request,
            counter: self.counter,
            collected: (0..self.n)
                .map(|i| {
                    if i == self.me.index() {
                        None
                    } else {
                        *self.collected.get(ProcessId::new(i))
                    }
                })
                .collect(),
        }
    }

    fn restore(&mut self, s: CfState) {
        self.request = s.request;
        self.counter = s.counter;
        for i in 0..self.n {
            if i != self.me.index() {
                self.collected.set(ProcessId::new(i), s.collected[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_sim::{Capacity, LossModel, NetworkBuilder, RoundRobin, Runner};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize, k: u64, seed: u64) -> Runner<CfProcess, RoundRobin> {
        let processes = (0..n)
            .map(|i| CfProcess::new(p(i), n, k, 100 + i as u32))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RoundRobin::new(), seed)
    }

    #[test]
    fn wave_collects_all_data_from_clean_state() {
        let mut r = system(3, 4, 1);
        r.process_mut(p(0)).request_wave();
        r.run_until(50_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(0)).collected_from(p(1)), Some(101));
        assert_eq!(r.process(p(0)).collected_from(p(2)), Some(102));
    }

    #[test]
    fn waves_survive_loss() {
        let mut r = system(3, 4, 2);
        r.set_loss(LossModel::probabilistic(0.3));
        r.process_mut(p(0)).request_wave();
        r.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(0)).collected_from(p(1)), Some(101));
    }

    #[test]
    fn stale_reply_with_matching_stamp_pollutes_first_wave() {
        let mut r = system(2, 4, 3);
        // The initiator's counter is 0; its next wave is stamped 1. Forge a
        // stale reply already carrying stamp 1.
        r.network_mut()
            .channel_mut(p(1), p(0))
            .unwrap()
            .preload([CfMsg::Reply { c: 1, data: 666 }]);
        r.process_mut(p(0)).request_wave();
        r.run_until(50_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(
            r.process(p(0)).collected_from(p(1)),
            Some(666),
            "first wave collected the forged datum"
        );
        // The second wave is clean: the channels were flushed.
        r.process_mut(p(0)).request_wave();
        r.run_until(50_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(0)).collected_from(p(1)), Some(101));
    }

    #[test]
    fn stale_reply_with_other_stamp_is_flushed_harmlessly() {
        let mut r = system(2, 4, 4);
        r.network_mut()
            .channel_mut(p(1), p(0))
            .unwrap()
            .preload([CfMsg::Reply { c: 3, data: 666 }]);
        r.process_mut(p(0)).request_wave();
        r.run_until(50_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(0)).collected_from(p(1)), Some(101));
    }

    #[test]
    fn corrupted_non_started_computation_terminates() {
        let mut r = system(3, 4, 5);
        let mut s = r.process(p(0)).snapshot();
        s.request = RequestState::In;
        s.collected = vec![None, None, None];
        r.process_mut(p(0)).restore(s);
        r.run_until(50_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
    }

    #[test]
    fn counter_wraps_modulo_k() {
        let mut r = system(2, 2, 6);
        for _ in 0..3 {
            r.process_mut(p(0)).request_wave();
            r.run_until(50_000, |r| r.process(p(0)).request() == RequestState::Done)
                .unwrap();
            assert!(r.process(p(0)).counter() < 2);
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut proc = CfProcess::new(p(1), 3, 8, 5);
        let mut rng = SimRng::seed_from(7);
        proc.corrupt(&mut rng);
        let snap = proc.snapshot();
        proc.corrupt(&mut rng);
        proc.restore(snap.clone());
        assert_eq!(proc.snapshot(), snap);
    }
}
