//! Dijkstra-style self-stabilizing token circulation over message passing.
//!
//! Dijkstra's K-state algorithm — the founding self-stabilizing protocol —
//! adapted to the message-passing model: the processes form a virtual ring
//! inside the fully-connected network, each repeatedly sends its value to
//! its successor, and
//!
//! * the **root** (process 0) holds the token when the value it receives
//!   from its predecessor *equals* its own; it then executes the CS and
//!   increments its value mod `K`;
//! * a **non-root** holds the token when the received value *differs*; it
//!   executes the CS and adopts the received value.
//!
//! With `K ≥ n` the system converges from any configuration to exactly one
//! circulating token — but *during* convergence several processes can hold
//! tokens simultaneously, i.e. genuinely overlapping critical sections.
//! Experiment C1 counts those overlaps and contrasts them with Algorithm
//! 3's zero.

use snapstab_sim::{ArbitraryState, Context, ProcessId, Protocol, SimRng};

/// The single message of the token ring: a value announcement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrMsg {
    /// The sender's current value.
    pub v: u64,
}

impl ArbitraryState for TrMsg {
    /// Values drawn from `0..8` (experiments with larger `K` pre-load
    /// explicitly).
    fn arbitrary(rng: &mut SimRng) -> Self {
        TrMsg {
            v: rng.gen_u64() % 8,
        }
    }
}

/// Observable events.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrEvent {
    /// The process acquired the token and entered the CS.
    CsEnter,
    /// The process left the CS (and passed the token on).
    CsExit,
}

/// State projection of a token-ring process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrState {
    /// The Dijkstra value.
    pub value: u64,
    /// Remaining CS activations, if inside the CS.
    pub in_cs: Option<u64>,
    /// The pending value update to apply at CS exit.
    pub pending: Option<u64>,
}

/// A process of the message-passing K-state token ring.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TokenRingProcess {
    me: ProcessId,
    n: usize,
    /// Value domain size `K` (self-stabilizing iff `K ≥ n`).
    k: u64,
    /// CS duration in activations (≥ 1 so overlaps are observable).
    cs_duration: u64,
    value: u64,
    in_cs: Option<u64>,
    /// The value to adopt (non-root) or the increment marker (root) at CS
    /// exit.
    pending: Option<u64>,
    /// CS executions (instrumentation).
    cs_count: u64,
}

impl TokenRingProcess {
    /// Creates a correctly-initialized process (root = process 0).
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `cs_duration == 0`.
    pub fn new(me: ProcessId, n: usize, k: u64, cs_duration: u64) -> Self {
        assert!(k >= 2, "value domain needs at least two values");
        assert!(cs_duration >= 1, "CS must take at least one activation");
        TokenRingProcess {
            me,
            n,
            k,
            cs_duration,
            value: 0,
            in_cs: None,
            pending: None,
            cs_count: 0,
        }
    }

    /// True for the distinguished root process.
    pub fn is_root(&self) -> bool {
        self.me.index() == 0
    }

    /// The current Dijkstra value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// True while holding the token inside the CS.
    pub fn is_in_cs(&self) -> bool {
        self.in_cs.is_some()
    }

    /// Number of CS executions so far.
    pub fn cs_count(&self) -> u64 {
        self.cs_count
    }

    fn successor(&self) -> ProcessId {
        ProcessId::new((self.me.index() + 1) % self.n)
    }
}

impl Protocol for TokenRingProcess {
    type Msg = TrMsg;
    type Event = TrEvent;
    type State = TrState;

    fn activate(&mut self, ctx: &mut Context<'_, TrMsg, TrEvent>) -> bool {
        // CS continuation.
        if let Some(remaining) = self.in_cs {
            if remaining > 1 {
                self.in_cs = Some(remaining - 1);
            } else {
                self.in_cs = None;
                ctx.emit(TrEvent::CsExit);
                match self.pending.take() {
                    Some(adopt) => self.value = adopt,              // non-root
                    None => self.value = (self.value + 1) % self.k, // root
                }
                // Pass the token on immediately.
                ctx.send(self.successor(), TrMsg { v: self.value });
            }
            return true;
        }
        // Perpetual announcement to the successor (retransmission makes the
        // ring loss-tolerant; extras are dropped by the full channel).
        ctx.send(self.successor(), TrMsg { v: self.value });
        true
    }

    fn on_receive(&mut self, from: ProcessId, msg: TrMsg, ctx: &mut Context<'_, TrMsg, TrEvent>) {
        // Only the ring predecessor's announcements matter.
        let predecessor = ProcessId::new((self.me.index() + self.n - 1) % self.n);
        if from != predecessor || self.in_cs.is_some() {
            return;
        }
        let privileged = if self.is_root() {
            msg.v == self.value
        } else {
            msg.v != self.value
        };
        if privileged {
            self.in_cs = Some(self.cs_duration);
            self.pending = if self.is_root() { None } else { Some(msg.v) };
            self.cs_count += 1;
            ctx.emit(TrEvent::CsEnter);
        }
    }

    fn has_enabled_action(&self) -> bool {
        true // perpetual protocol: always announcing or inside the CS
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        self.value = rng.gen_u64() % self.k;
        self.in_cs = None;
        self.pending = None;
    }

    fn snapshot(&self) -> TrState {
        TrState {
            value: self.value,
            in_cs: self.in_cs,
            pending: self.pending,
        }
    }

    fn restore(&mut self, s: TrState) {
        self.value = s.value;
        self.in_cs = s.in_cs;
        self.pending = s.pending;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::extract_cs_intervals;
    use snapstab_sim::{Capacity, NetworkBuilder, RoundRobin, Runner};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn ring(n: usize, k: u64, seed: u64) -> Runner<TokenRingProcess, RoundRobin> {
        let processes = (0..n)
            .map(|i| TokenRingProcess::new(p(i), n, k, 2))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RoundRobin::new(), seed)
    }

    #[test]
    fn token_circulates_from_clean_state() {
        let mut r = ring(3, 5, 1);
        r.run_steps(20_000).unwrap();
        for i in 0..3 {
            assert!(r.process(p(i)).cs_count() > 0, "P{i} never held the token");
        }
    }

    #[test]
    fn clean_start_has_no_overlapping_cs() {
        let mut r = ring(4, 7, 2);
        r.run_steps(30_000).unwrap();
        let intervals = extract_cs_intervals(
            r.trace(),
            4,
            |e| matches!(e, TrEvent::CsEnter),
            |e| matches!(e, TrEvent::CsExit),
        );
        assert!(intervals.len() > 3);
        for i in 0..intervals.len() {
            for j in i + 1..intervals.len() {
                assert!(
                    intervals[i].p == intervals[j].p || !intervals[i].overlaps(&intervals[j]),
                    "clean-start ring must have one token"
                );
            }
        }
    }

    #[test]
    fn corrupted_start_can_overlap_but_converges() {
        // Find a corrupted configuration exhibiting an overlap during
        // convergence, then verify the suffix is overlap-free
        // (self-stabilization: eventual, not immediate, safety).
        let mut found_overlap = false;
        for seed in 0..40u64 {
            let mut r = ring(4, 5, seed);
            let mut rng = SimRng::seed_from(seed);
            for i in 0..4 {
                r.process_mut(p(i)).corrupt(&mut rng);
            }
            r.run_steps(40_000).unwrap();
            let intervals = extract_cs_intervals(
                r.trace(),
                4,
                |e| matches!(e, TrEvent::CsEnter),
                |e| matches!(e, TrEvent::CsExit),
            );
            let overlaps = intervals.iter().enumerate().any(|(i, a)| {
                intervals[i + 1..]
                    .iter()
                    .any(|b| a.p != b.p && a.overlaps(b))
            });
            if overlaps {
                found_overlap = true;
                // Convergence: the last quarter of the run is clean.
                let cutoff = r.step_count() * 3 / 4;
                let late: Vec<_> = intervals.iter().filter(|iv| iv.enter >= cutoff).collect();
                for i in 0..late.len() {
                    for j in i + 1..late.len() {
                        assert!(
                            late[i].p == late[j].p || !late[i].overlaps(late[j]),
                            "seed {seed}: ring must converge to one token"
                        );
                    }
                }
                break;
            }
        }
        assert!(
            found_overlap,
            "some corrupted configuration must exhibit a convergence-phase overlap"
        );
    }

    #[test]
    fn corrupt_respects_value_domain() {
        let mut proc = TokenRingProcess::new(p(1), 3, 5, 2);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..30 {
            proc.corrupt(&mut rng);
            assert!(proc.value() < 5);
            assert!(!proc.is_in_cs());
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut proc = TokenRingProcess::new(p(2), 3, 5, 2);
        let mut rng = SimRng::seed_from(4);
        proc.corrupt(&mut rng);
        let snap = proc.snapshot();
        proc.corrupt(&mut rng);
        proc.restore(snap);
        assert_eq!(proc.snapshot(), snap);
    }

    #[test]
    fn non_predecessor_messages_ignored() {
        let mut procs = [
            TokenRingProcess::new(p(0), 3, 5, 2),
            TokenRingProcess::new(p(1), 3, 5, 2),
            TokenRingProcess::new(p(2), 3, 5, 2),
        ];
        let mut rng = SimRng::seed_from(0);
        let mut sends = Vec::new();
        let mut events = Vec::new();
        let mut ctx = Context::new(p(2), 3, 0, &mut rng, &mut sends, &mut events);
        // P2's predecessor is P1; a differing value from P0 must not grant
        // the token.
        procs[2].on_receive(p(0), TrMsg { v: 3 }, &mut ctx);
        assert!(!procs[2].is_in_cs());
        procs[2].on_receive(p(1), TrMsg { v: 3 }, &mut ctx);
        assert!(procs[2].is_in_cs());
    }
}
