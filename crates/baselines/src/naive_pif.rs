//! The §4.1 "naive attempt" at a message-passing PIF.
//!
//! The paper motivates Algorithm 1 by first sketching the obvious protocol
//! — broadcast once, wait for one feedback per neighbor — and showing it
//! is *not* snap-stabilizing in the model:
//!
//! 1. **Deadlock under loss**: with unreliable channels, a lost broadcast
//!    or feedback message leaves the initiator waiting forever (there is
//!    no retransmission).
//! 2. **Corrupted-channel acceptance**: an arbitrary initial configuration
//!    can hold a forged feedback in a channel; the initiator accepts it as
//!    a genuine acknowledgment and may decide on garbage, and a forged
//!    broadcast triggers a spurious feedback at the receiver.
//!
//! Experiment Q3 quantifies both failure modes against Algorithm 1.

use snapstab_core::pif::PifEvent;
use snapstab_core::request::RequestState;
use snapstab_sim::{ArbitraryState, Context, PerNeighbor, ProcessId, Protocol, SimRng};

/// Messages of the naive protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NaiveMsg {
    /// The broadcast, carrying the data.
    Brd(u32),
    /// A feedback, carrying the responder's answer.
    Fck(u32),
}

impl ArbitraryState for NaiveMsg {
    fn arbitrary(rng: &mut SimRng) -> Self {
        if rng.gen_bool(0.5) {
            NaiveMsg::Brd(u32::arbitrary(rng))
        } else {
            NaiveMsg::Fck(u32::arbitrary(rng))
        }
    }
}

/// The state projection of a naive process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NaiveState {
    /// The request variable.
    pub request: RequestState,
    /// The broadcast data.
    pub b_mes: u32,
    /// Which neighbors have acknowledged (own slot unused).
    pub acked: Vec<bool>,
    /// Feedback values collected this wave (own slot unused).
    pub collected: Vec<Option<u32>>,
}

/// A process running the naive PIF. It reuses [`PifEvent`] so the same
/// Specification 1 checker judges it — and finds it wanting.
#[derive(Clone, Debug)]
pub struct NaivePifProcess {
    me: ProcessId,
    n: usize,
    request: RequestState,
    b_mes: u32,
    /// The answer this process gives to any broadcast it receives.
    feedback_value: u32,
    acked: PerNeighbor<bool>,
    collected: PerNeighbor<Option<u32>>,
}

impl NaivePifProcess {
    /// Creates a correctly-initialized naive process answering broadcasts
    /// with `feedback_value`.
    pub fn new(me: ProcessId, n: usize, feedback_value: u32) -> Self {
        NaivePifProcess {
            me,
            n,
            request: RequestState::Done,
            b_mes: 0,
            feedback_value,
            acked: PerNeighbor::new(me, n, false),
            collected: PerNeighbor::new(me, n, None),
        }
    }

    /// Current request state.
    pub fn request(&self) -> RequestState {
        self.request
    }

    /// Externally requests a broadcast of `b`.
    pub fn request_broadcast(&mut self, b: u32) -> bool {
        if self.request.accepts_request() {
            self.b_mes = b;
            self.request = RequestState::Wait;
            true
        } else {
            false
        }
    }

    /// The feedback value collected from neighbor `q` this wave (if any).
    pub fn collected_from(&self, q: ProcessId) -> Option<u32> {
        *self.collected.get(q)
    }
}

impl Protocol for NaivePifProcess {
    type Msg = NaiveMsg;
    type Event = PifEvent<u32, u32>;
    type State = NaiveState;

    fn activate(&mut self, ctx: &mut Context<'_, NaiveMsg, Self::Event>) -> bool {
        let mut acted = false;
        // A1: start — broadcast ONCE to everyone (the naive flaw: no
        // retransmission).
        if self.request == RequestState::Wait {
            self.request = RequestState::In;
            self.acked.fill_with(|_| false);
            self.collected.fill_with(|_| None);
            ctx.emit(PifEvent::Started);
            let targets: Vec<ProcessId> = ctx.neighbors().collect();
            for q in targets {
                ctx.send(q, NaiveMsg::Brd(self.b_mes));
            }
            acted = true;
        }
        // A2: decide once every neighbor acknowledged.
        if self.request == RequestState::In && self.acked.all(|&a| a) {
            self.request = RequestState::Done;
            ctx.emit(PifEvent::Decided);
            acted = true;
        }
        acted
    }

    fn on_receive(
        &mut self,
        from: ProcessId,
        msg: NaiveMsg,
        ctx: &mut Context<'_, NaiveMsg, Self::Event>,
    ) {
        match msg {
            NaiveMsg::Brd(b) => {
                ctx.emit(PifEvent::ReceiveBrd { from, data: b });
                ctx.send(from, NaiveMsg::Fck(self.feedback_value));
            }
            NaiveMsg::Fck(f) => {
                // The naive flaw: ANY feedback is accepted as genuine.
                ctx.emit(PifEvent::ReceiveFck { from, data: f });
                self.acked.set(from, true);
                self.collected.set(from, Some(f));
            }
        }
    }

    fn has_enabled_action(&self) -> bool {
        self.request == RequestState::Wait
            || (self.request == RequestState::In && self.acked.all(|&a| a))
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        self.request = RequestState::arbitrary(rng);
        self.b_mes = u32::arbitrary(rng);
        self.acked.fill_with(|_| bool::arbitrary(rng));
        self.collected.fill_with(|_| {
            if bool::arbitrary(rng) {
                Some(u32::arbitrary(rng))
            } else {
                None
            }
        });
    }

    fn snapshot(&self) -> NaiveState {
        NaiveState {
            request: self.request,
            b_mes: self.b_mes,
            acked: (0..self.n)
                .map(|i| i != self.me.index() && *self.acked.get(ProcessId::new(i)))
                .collect(),
            collected: (0..self.n)
                .map(|i| {
                    if i == self.me.index() {
                        None
                    } else {
                        *self.collected.get(ProcessId::new(i))
                    }
                })
                .collect(),
        }
    }

    fn restore(&mut self, s: NaiveState) {
        self.request = s.request;
        self.b_mes = s.b_mes;
        for i in 0..self.n {
            if i != self.me.index() {
                self.acked.set(ProcessId::new(i), s.acked[i]);
                self.collected.set(ProcessId::new(i), s.collected[i]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_sim::{Capacity, LossModel, NetworkBuilder, RoundRobin, Runner};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize, loss: LossModel) -> Runner<NaivePifProcess, RoundRobin> {
        let processes = (0..n)
            .map(|i| NaivePifProcess::new(p(i), n, 100 + i as u32))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        let mut r = Runner::new(processes, network, RoundRobin::new(), 3);
        r.set_loss(loss);
        r
    }

    #[test]
    fn completes_on_reliable_channels_from_clean_state() {
        let mut r = system(3, LossModel::reliable());
        r.process_mut(p(0)).request_broadcast(7);
        let out = r
            .run_until(10_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(out.stopped, snapstab_sim::StopCondition::Predicate);
        assert_eq!(r.process(p(0)).collected_from(p(1)), Some(101));
        assert_eq!(r.process(p(0)).collected_from(p(2)), Some(102));
    }

    #[test]
    fn deadlocks_when_a_broadcast_is_lost() {
        // Lose the first message on the link 0 -> 1: the broadcast vanishes
        // and the initiator waits forever (failure mode 1 of §4.1).
        let mut r = system(2, LossModel::first_k(1));
        r.process_mut(p(0)).request_broadcast(7);
        let out = r.run_steps(50_000).unwrap();
        // The system goes quiescent with the request still In: deadlock.
        assert!(out.is_quiescent() || r.is_quiescent());
        assert_eq!(r.process(p(0)).request(), RequestState::In);
    }

    #[test]
    fn accepts_forged_feedback_from_corrupted_channel() {
        // A forged Fck(666) sits in the channel 1 -> 0. The initiator
        // accepts it as P1's acknowledgment (failure mode 2 of §4.1).
        let mut r = system(2, LossModel::reliable());
        r.network_mut()
            .channel_mut(p(1), p(0))
            .unwrap()
            .preload([NaiveMsg::Fck(666)]);
        r.process_mut(p(0)).request_broadcast(7);
        r.run_until(10_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(
            r.process(p(0)).collected_from(p(1)),
            Some(666),
            "the decision took forged garbage into account"
        );
    }

    #[test]
    fn forged_broadcast_triggers_spurious_feedback() {
        let mut r = system(2, LossModel::reliable());
        r.network_mut()
            .channel_mut(p(1), p(0))
            .unwrap()
            .preload([NaiveMsg::Brd(42)]);
        r.run_steps(100).unwrap();
        // P0 answered a broadcast nobody sent.
        let spurious = r
            .trace()
            .protocol_events_of(p(0))
            .any(|(_, e)| matches!(e, PifEvent::ReceiveBrd { data: 42, .. }));
        assert!(spurious);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut proc = NaivePifProcess::new(p(0), 3, 5);
        let mut rng = SimRng::seed_from(2);
        proc.corrupt(&mut rng);
        let snap = proc.snapshot();
        proc.corrupt(&mut rng);
        proc.restore(snap.clone());
        assert_eq!(proc.snapshot(), snap);
    }

    #[test]
    fn arbitrary_msg_covers_both_kinds() {
        let mut rng = SimRng::seed_from(0);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..50 {
            kinds.insert(std::mem::discriminant(&NaiveMsg::arbitrary(&mut rng)));
        }
        assert_eq!(kinds.len(), 2);
    }
}
