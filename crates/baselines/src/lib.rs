//! # snapstab-baselines — comparison protocols
//!
//! The paper's headline qualitative claim is a *contrast*: a
//! snap-stabilizing protocol satisfies the very first started request from
//! any initial configuration, while a self-stabilizing protocol may
//! violate safety until it converges, and a non-stabilizing protocol may
//! never recover at all. This crate implements the comparators that make
//! the contrast measurable:
//!
//! * [`naive_pif`] — the "naive attempt" of §4.1: a PIF with no handshake
//!   flags and no retransmission. Deadlocks under message loss and accepts
//!   forged feedback from corrupted channels (experiment Q3).
//! * [`abp`] — the Afek–Brown alternating-bit protocol with randomized
//!   labels (related work \[2\]): self-stabilizing with probability growing
//!   in the label-space size; the violation probability of the first
//!   transfer is ≈ 1/L (experiment C1).
//! * [`counter_flush`] — a Varghese-style counter-flushing wave (related
//!   work \[33\]): self-stabilizing once the counter has flushed the
//!   channels; the *first* wave after faults can collect stale replies
//!   with probability ≈ 1/K per channel (experiment C1).
//! * [`token_ring`] — a Dijkstra K-state token circulation adapted to
//!   message passing: self-stabilizing mutual exclusion whose convergence
//!   phase exhibits real CS overlaps (experiment C1), unlike Algorithm 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abp;
pub mod counter_flush;
pub mod naive_pif;
pub mod token_ring;
pub mod util;

pub use abp::{AbpEvent, AbpMsg, AbpProcess};
pub use counter_flush::{CfEvent, CfMsg, CfProcess};
pub use naive_pif::{NaiveMsg, NaivePifProcess};
pub use token_ring::{TokenRingProcess, TrEvent, TrMsg};
