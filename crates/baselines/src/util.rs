//! Trace-analysis helpers shared by the baseline experiments.

use snapstab_core::spec::CsInterval;
use snapstab_sim::{Message, ProcessId, Trace};

/// Extracts critical-section intervals from a trace using caller-supplied
/// event classifiers (the baseline protocols have their own event types,
/// unlike Algorithm 3 whose analysis lives in `snapstab_core::spec`).
///
/// Unpaired entries at the end of the trace are closed at their entry
/// step. All intervals are marked `genuine` (the baselines have no
/// request/start discipline to distinguish).
pub fn extract_cs_intervals<M, E>(
    trace: &Trace<M, E>,
    n: usize,
    mut is_enter: impl FnMut(&E) -> bool,
    mut is_exit: impl FnMut(&E) -> bool,
) -> Vec<CsInterval>
where
    M: Message,
    E: Clone + std::fmt::Debug + PartialEq,
{
    let mut intervals = Vec::new();
    for i in 0..n {
        let p = ProcessId::new(i);
        let mut open: Option<u64> = None;
        for (step, e) in trace.protocol_events_of(p) {
            if is_enter(e) {
                open = Some(step);
            } else if is_exit(e) {
                if let Some(enter) = open.take() {
                    intervals.push(CsInterval {
                        p,
                        enter,
                        exit: step,
                        genuine: true,
                    });
                }
            }
        }
        if let Some(enter) = open {
            intervals.push(CsInterval {
                p,
                enter,
                exit: enter,
                genuine: true,
            });
        }
    }
    intervals.sort_by_key(|iv| iv.enter);
    intervals
}

/// Counts overlapping pairs among intervals of distinct processes.
pub fn count_overlaps(intervals: &[CsInterval]) -> usize {
    let mut count = 0;
    for i in 0..intervals.len() {
        for j in i + 1..intervals.len() {
            if intervals[i].p != intervals[j].p && intervals[i].overlaps(&intervals[j]) {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_sim::TraceEvent;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    enum E {
        In,
        Out,
    }

    #[test]
    fn extracts_and_counts() {
        let mut t: Trace<u8, E> = Trace::new();
        t.push(
            1,
            TraceEvent::Protocol {
                p: p(0),
                event: E::In,
            },
        );
        t.push(
            5,
            TraceEvent::Protocol {
                p: p(0),
                event: E::Out,
            },
        );
        t.push(
            3,
            TraceEvent::Protocol {
                p: p(1),
                event: E::In,
            },
        );
        t.push(
            4,
            TraceEvent::Protocol {
                p: p(1),
                event: E::Out,
            },
        );
        t.push(
            9,
            TraceEvent::Protocol {
                p: p(1),
                event: E::In,
            },
        ); // unpaired
        let ivs = extract_cs_intervals(&t, 2, |e| *e == E::In, |e| *e == E::Out);
        assert_eq!(ivs.len(), 3);
        assert_eq!(count_overlaps(&ivs), 1, "[1,5] and [3,4] overlap");
        assert_eq!(ivs[2].enter, 9);
        assert_eq!(ivs[2].exit, 9);
    }

    #[test]
    fn same_process_overlaps_not_counted() {
        let ivs = vec![
            CsInterval {
                p: p(0),
                enter: 0,
                exit: 10,
                genuine: true,
            },
            CsInterval {
                p: p(0),
                enter: 5,
                exit: 7,
                genuine: true,
            },
        ];
        assert_eq!(count_overlaps(&ivs), 0);
    }
}
