//! The Afek–Brown self-stabilizing alternating-bit protocol.
//!
//! Afek and Brown [2 in the paper] showed that the alternating-bit
//! protocol becomes self-stabilizing over unreliable channels when the
//! 1-bit sequence number is replaced by a *random label* from a large
//! space: a forged or stale acknowledgment then matches the sender's
//! current label only with probability ≈ 1/L.
//!
//! This implementation parameterizes the label-space size `L`, which makes
//! the contrast with snap-stabilization quantitative (experiment C1):
//!
//! * `L = 2` is the classic alternating-bit protocol: from a corrupted
//!   configuration the first transfer is violated with probability ≈ 1/2;
//! * growing `L` drives the violation probability to 0 — but never *to* 0:
//!   self-stabilization is eventual and probabilistic, while the
//!   snap-stabilizing PIF transfer (Algorithm 1) is violated with
//!   probability exactly 0 from any configuration.
//!
//! The sender occupies process 0 and the receiver process 1 of a
//! 2-process system (the data-link setting of the original paper).

use snapstab_sim::{ArbitraryState, Context, ProcessId, Protocol, SimRng};

/// Messages of the alternating-bit protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbpMsg {
    /// A data item with its label.
    Data {
        /// The payload.
        item: u32,
        /// The sender's current label.
        label: u64,
    },
    /// An acknowledgment echoing a label.
    Ack {
        /// The acknowledged label.
        label: u64,
    },
}

impl ArbitraryState for AbpMsg {
    /// Arbitrary messages draw labels from a small range so that forged
    /// acknowledgments have observable collision probability in tests;
    /// experiments that sweep the label space pre-load channels explicitly.
    fn arbitrary(rng: &mut SimRng) -> Self {
        if rng.gen_bool(0.5) {
            AbpMsg::Data {
                item: u32::arbitrary(rng),
                label: rng.gen_u64() % 4,
            }
        } else {
            AbpMsg::Ack {
                label: rng.gen_u64() % 4,
            }
        }
    }
}

/// Observable events of the protocol.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AbpEvent {
    /// The receiver delivered an item to its application.
    Delivered(u32),
    /// The sender advanced to the item at this queue index.
    AdvancedTo(usize),
}

/// Sender/receiver role and state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AbpRole {
    /// The transmitting side (process 0).
    Sender {
        /// The workload: items to transfer, in order.
        queue: Vec<u32>,
        /// Index of the item currently being transferred.
        next: usize,
        /// The current label.
        label: u64,
    },
    /// The delivering side (process 1).
    Receiver {
        /// The label of the last delivered item.
        last_label: u64,
        /// Everything delivered so far (instrumentation).
        delivered: Vec<u32>,
    },
}

/// State projection of an ABP process.
pub type AbpState = AbpRole;

/// One endpoint of the alternating-bit link.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AbpProcess {
    me: ProcessId,
    peer: ProcessId,
    /// Label-space size `L`: labels live in `0..L`.
    label_space: u64,
    role: AbpRole,
}

impl AbpProcess {
    /// Creates the sender (process 0) with its workload.
    ///
    /// # Panics
    ///
    /// Panics if `label_space < 2`.
    pub fn sender(queue: Vec<u32>, label_space: u64) -> Self {
        assert!(label_space >= 2, "need at least two labels");
        AbpProcess {
            me: ProcessId::new(0),
            peer: ProcessId::new(1),
            label_space,
            role: AbpRole::Sender {
                queue,
                next: 0,
                label: 0,
            },
        }
    }

    /// Creates the receiver (process 1). Its initial `last_label` is
    /// `L − 1`, distinct from the sender's initial label `0`, so a clean
    /// start delivers the first item (the classic ABP initialization).
    ///
    /// # Panics
    ///
    /// Panics if `label_space < 2`.
    pub fn receiver(label_space: u64) -> Self {
        assert!(label_space >= 2, "need at least two labels");
        AbpProcess {
            me: ProcessId::new(1),
            peer: ProcessId::new(0),
            label_space,
            role: AbpRole::Receiver {
                last_label: label_space - 1,
                delivered: Vec::new(),
            },
        }
    }

    /// The label-space size.
    pub fn label_space(&self) -> u64 {
        self.label_space
    }

    /// The role and state.
    pub fn role(&self) -> &AbpRole {
        &self.role
    }

    /// The receiver's delivered sequence (empty for a sender).
    pub fn delivered(&self) -> &[u32] {
        match &self.role {
            AbpRole::Receiver { delivered, .. } => delivered,
            AbpRole::Sender { .. } => &[],
        }
    }

    /// The sender's progress: index of the item being transferred
    /// (queue length once done). `None` for a receiver.
    pub fn progress(&self) -> Option<usize> {
        match &self.role {
            AbpRole::Sender { next, .. } => Some(*next),
            AbpRole::Receiver { .. } => None,
        }
    }

    fn fresh_label(current: u64, space: u64, rng: &mut SimRng) -> u64 {
        // A fresh label differs from the current one (the alternating
        // guarantee); uniform over the remaining L − 1 labels.
        let offset = 1 + rng.gen_u64() % (space - 1);
        (current + offset) % space
    }
}

impl Protocol for AbpProcess {
    type Msg = AbpMsg;
    type Event = AbpEvent;
    type State = AbpState;

    fn activate(&mut self, ctx: &mut Context<'_, AbpMsg, AbpEvent>) -> bool {
        match &self.role {
            AbpRole::Sender { queue, next, label } => {
                if *next < queue.len() {
                    // Retransmit the current item until acknowledged.
                    ctx.send(
                        self.peer,
                        AbpMsg::Data {
                            item: queue[*next],
                            label: *label,
                        },
                    );
                    true
                } else {
                    false
                }
            }
            AbpRole::Receiver { .. } => false,
        }
    }

    fn on_receive(
        &mut self,
        _from: ProcessId,
        msg: AbpMsg,
        ctx: &mut Context<'_, AbpMsg, AbpEvent>,
    ) {
        let peer = self.peer;
        let space = self.label_space;
        match (&mut self.role, msg) {
            (AbpRole::Sender { queue, next, label }, AbpMsg::Ack { label: acked })
                if acked == *label && *next < queue.len() =>
            {
                *next += 1;
                *label = Self::fresh_label(*label, space, ctx.rng());
                ctx.emit(AbpEvent::AdvancedTo(*next));
            }
            (
                AbpRole::Receiver {
                    last_label,
                    delivered,
                },
                AbpMsg::Data { item, label },
            ) => {
                if label != *last_label {
                    delivered.push(item);
                    *last_label = label;
                    ctx.emit(AbpEvent::Delivered(item));
                }
                ctx.send(peer, AbpMsg::Ack { label });
            }
            // Role/message mismatches (possible from forged initial
            // messages): ignored.
            _ => {}
        }
    }

    fn has_enabled_action(&self) -> bool {
        matches!(&self.role, AbpRole::Sender { queue, next, .. } if *next < queue.len())
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        // Transient faults hit the link state (labels); the workload queue
        // and the delivery log are the experiment's ground truth.
        match &mut self.role {
            AbpRole::Sender { label, .. } => *label = rng.gen_u64() % self.label_space,
            AbpRole::Receiver { last_label, .. } => *last_label = rng.gen_u64() % self.label_space,
        }
    }

    fn snapshot(&self) -> AbpState {
        self.role.clone()
    }

    fn restore(&mut self, state: AbpState) {
        self.role = state;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_sim::{Capacity, LossModel, NetworkBuilder, RoundRobin, Runner};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn link(queue: Vec<u32>, space: u64, seed: u64) -> Runner<AbpProcess, RoundRobin> {
        let processes = vec![
            AbpProcess::sender(queue, space),
            AbpProcess::receiver(space),
        ];
        let network = NetworkBuilder::new(2)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RoundRobin::new(), seed)
    }

    #[test]
    fn transfers_in_order_from_clean_state() {
        let mut r = link(vec![10, 20, 30], 1 << 32, 1);
        r.run_until(100_000, |r| r.process(p(0)).progress() == Some(3))
            .unwrap();
        assert_eq!(r.process(p(1)).delivered(), &[10, 20, 30]);
    }

    #[test]
    fn tolerates_message_loss() {
        let mut r = link(vec![1, 2, 3, 4], 1 << 32, 2);
        r.set_loss(LossModel::probabilistic(0.3));
        r.run_until(500_000, |r| r.process(p(0)).progress() == Some(4))
            .unwrap();
        assert_eq!(r.process(p(1)).delivered(), &[1, 2, 3, 4]);
    }

    #[test]
    fn forged_matching_ack_skips_an_item() {
        // The sender starts with label 0 (clean init); a forged Ack{0}
        // delivered before the sender's first transmission makes it skip
        // item 10 entirely — the self-stabilization safety violation.
        let mut r = link(vec![10, 20], 4, 3);
        r.network_mut()
            .channel_mut(p(1), p(0))
            .unwrap()
            .preload([AbpMsg::Ack { label: 0 }]);
        r.execute_move(snapstab_sim::Move::Deliver {
            from: p(1),
            to: p(0),
        })
        .unwrap();
        assert_eq!(
            r.process(p(0)).progress(),
            Some(1),
            "sender advanced on garbage"
        );
        r.run_until(100_000, |r| r.process(p(0)).progress() == Some(2))
            .unwrap();
        let delivered = r.process(p(1)).delivered();
        assert!(
            !delivered.contains(&10),
            "item 10 must have been skipped, delivered = {delivered:?}"
        );
    }

    #[test]
    fn forged_nonmatching_ack_is_harmless() {
        let mut r = link(vec![10, 20], 4, 4);
        r.network_mut()
            .channel_mut(p(1), p(0))
            .unwrap()
            .preload([AbpMsg::Ack { label: 3 }]);
        r.run_until(100_000, |r| r.process(p(0)).progress() == Some(2))
            .unwrap();
        assert_eq!(r.process(p(1)).delivered(), &[10, 20]);
    }

    #[test]
    fn receiver_label_collision_suppresses_delivery() {
        // If the receiver's corrupted last_label equals the sender's first
        // label, the first item is acknowledged but never delivered.
        let mut r = link(vec![10], 4, 5);
        let mut state = r.process(p(1)).snapshot();
        if let AbpRole::Receiver { last_label, .. } = &mut state {
            *last_label = 0; // collides with the sender's initial label 0
        }
        r.process_mut(p(1)).restore(state);
        r.run_until(100_000, |r| r.process(p(0)).progress() == Some(1))
            .unwrap();
        assert!(r.process(p(1)).delivered().is_empty());
    }

    #[test]
    fn fresh_labels_always_differ() {
        let mut rng = SimRng::seed_from(9);
        for space in [2u64, 3, 16] {
            for cur in 0..space {
                for _ in 0..20 {
                    let next = AbpProcess::fresh_label(cur, space, &mut rng);
                    assert_ne!(next, cur);
                    assert!(next < space);
                }
            }
        }
    }

    #[test]
    fn corruption_preserves_workload() {
        let mut s = AbpProcess::sender(vec![1, 2, 3], 8);
        let mut rng = SimRng::seed_from(0);
        s.corrupt(&mut rng);
        if let AbpRole::Sender { queue, next, label } = s.role() {
            assert_eq!(queue, &[1, 2, 3]);
            assert_eq!(*next, 0);
            assert!(*label < 8);
        } else {
            panic!("sender stayed a sender");
        }
    }
}
