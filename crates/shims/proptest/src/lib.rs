//! Offline shim of the [proptest](https://crates.io/crates/proptest) API
//! surface used by this workspace.
//!
//! The build environment has no registry access, so this in-tree crate
//! provides a compatible subset: the `proptest!` macro, integer / float
//! range strategies, `any::<T>()`, `proptest::collection::{vec, btree_set}`,
//! and the `prop_assert*` / `prop_assume!` macros. Cases are generated from
//! a deterministic per-test seed (override with `PROPTEST_SEED`); there is
//! no shrinking — a failure reports the generated inputs via the assertion
//! message instead.

use std::fmt;
use std::ops::Range;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated before the
    /// test errors out as unsatisfiable.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed-assertion error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected-assumption marker.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Deterministic generator driving case sampling (xoshiro256++ seeded via
/// SplitMix64 — the same reference algorithms as the simulator's `SimRng`,
/// duplicated on purpose: the shims stay dependency-free in both
/// directions so they can be swapped for the real crates without
/// untangling a shared helper).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Seeds from `PROPTEST_SEED` if set, else from a hash of the test name
    /// so every test owns a stable, distinct stream.
    pub fn for_test(test_name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                return TestRng::seed_from(seed);
            }
        }
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::seed_from(h)
    }

    /// Raw 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Unbiased uniform draw below `bound`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of values of one type: the sampling half of proptest's
/// `Strategy`, without shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical "draw anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "anything of type `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A strategy producing a fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Number of elements a collection strategy may produce.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; duplicates shrink the set, as in
    /// real proptest.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a `proptest!`-based test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                while passed < config.cases {
                    case += 1;
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                        $body
                        Ok(())
                    })();
                    match result {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {case} (set PROPTEST_SEED to replay): {msg}",
                                stringify!($name)
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!`: fails the current case (not the whole process) on a
/// false condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}: {}",
                stringify!($cond), file!(), line!(), format!($($fmt)+)
            )));
        }
    };
}

/// `prop_assert_eq!`: equality assertion reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), file!(), line!(), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n right: {:?}\n {}",
                stringify!($left), stringify!($right), file!(), line!(), l, r, format!($($fmt)+)
            )));
        }
    }};
}

/// `prop_assert_ne!`: inequality assertion reporting both values.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` at {}:{}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                file!(),
                line!(),
                l
            )));
        }
    }};
}

/// `prop_assume!`: rejects the current case, drawing a fresh one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_strategy_lengths(v in crate::collection::vec(any::<u32>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn assume_filters(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
