//! Offline shim of the [rayon](https://crates.io/crates/rayon) data-parallel
//! surface used by this workspace.
//!
//! The build environment has no registry access, so this in-tree crate
//! provides the subset the experiment drivers rely on: `par_iter()` /
//! `into_par_iter()` on slices, vectors and ranges, with `map` + `collect`
//! / `for_each` / `sum`. Work is executed on `std::thread::scope` workers
//! (one per available core, capped by item count) and `collect` preserves
//! input order, so a parallel driver over per-trial seeds produces exactly
//! the same `Vec` as the sequential loop it replaces.
//!
//! Set `RAYON_NUM_THREADS=1` to force sequential execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The traits user code imports (`use rayon::prelude::*`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

fn worker_count(items: usize) -> usize {
    let env = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0);
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    env.unwrap_or(hw).min(items).max(1)
}

/// Runs `f(i)` for every index in `0..len` on a scoped worker pool and
/// returns the results in index order.
fn run_indexed<R: Send>(len: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let workers = worker_count(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let out: Vec<Mutex<Option<R>>> = (0..len).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let r = f(i);
                *out[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    out.into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// A parallel iterator: a materialized list of items plus the parallel
/// consumer methods.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Lazily mapped parallel iterator.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

/// Types convertible into a [`ParIter`] by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts into a parallel iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// Types offering a borrowing parallel iterator (`par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed element type.
    type Item: Send + 'a;
    /// A parallel iterator over references.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

range_into_par_iter!(u32, u64, usize, i32, i64);

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Parallel consumer methods shared by [`ParIter`] and [`ParMap`].
pub trait ParallelIterator: Sized {
    /// The element type produced.
    type Item: Send;

    /// Evaluates the pipeline, returning results in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each element through `f` in parallel.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> ParMap<Self::Item, F>
    where
        Self: IntoItems,
    {
        ParMap {
            items: self.into_items(),
            f,
        }
    }

    /// Collects results in input order.
    fn collect<C: FromParallel<Self::Item>>(self) -> C {
        C::from_ordered(self.run())
    }

    /// Runs `f` on every element.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F)
    where
        Self::Item: Sync,
    {
        for item in self.run() {
            f(item);
        }
    }

    /// Sums the elements.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run().into_iter().sum()
    }
}

/// Internal: pipelines that can surrender their source items.
#[doc(hidden)]
pub trait IntoItems: ParallelIterator {
    fn into_items(self) -> Vec<Self::Item>;
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoItems for ParIter<T> {
    fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParallelIterator for ParMap<T, F> {
    type Item = R;
    fn run(self) -> Vec<R> {
        let slots: Vec<Mutex<Option<T>>> = self
            .items
            .into_iter()
            .map(|t| Mutex::new(Some(t)))
            .collect();
        let f = &self.f;
        run_indexed(slots.len(), move |i| {
            let item = slots[i]
                .lock()
                .expect("item slot poisoned")
                .take()
                .expect("item taken once");
            f(item)
        })
    }
}

/// Collection types buildable from ordered parallel results.
pub trait FromParallel<T> {
    /// Builds the collection from results already in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParallel<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u32, 2, 3, 4];
        let out: Vec<u32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert_eq!(data.len(), 4);
    }

    #[test]
    fn sum_works() {
        let s: u64 = (1u64..=10)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x)
            .sum();
        assert_eq!(s, 55);
    }

    #[test]
    fn single_item_runs_on_one_worker() {
        // worker_count caps at the item count, so this exercises the
        // sequential path without touching the process environment (env
        // mutation would race with sibling tests' workers reading it).
        let out: Vec<usize> = (0usize..1).into_par_iter().map(|i| i + 41).collect();
        assert_eq!(out, vec![41]);
    }
}
