//! Offline shim of the [criterion](https://crates.io/crates/criterion)
//! benchmarking surface used by this workspace.
//!
//! The build environment has no registry access, so this in-tree crate
//! provides a compatible subset: `Criterion`, `criterion_group!` /
//! `criterion_main!`, benchmark groups, `Bencher::iter` /
//! `Bencher::iter_batched`, `BenchmarkId` and `black_box`. Measurements are
//! real wall-clock timings (median over samples), printed one line per
//! benchmark in a `name ... time: X ns/iter` format; there is no HTML
//! report or statistical regression analysis.
//!
//! Knobs (environment variables):
//! * `BENCH_SAMPLE_MS` — target measurement time per benchmark in
//!   milliseconds (default 120).
//! * `BENCH_SAMPLES` — number of samples the median is taken over
//!   (default 15).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration setup output is sized relative to the routine (shape
/// compatibility only; the shim times the routine alone either way).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small setup output: batches many iterations together.
    SmallInput,
    /// Large setup output: one setup per iteration.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Runs timing loops and records per-iteration cost.
pub struct Bencher {
    sample_time: Duration,
    samples: usize,
    /// Median ns per iteration of the last `iter*` call.
    result_ns: f64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            sample_time: Duration::from_millis(env_u64("BENCH_SAMPLE_MS", 120)),
            samples: env_u64("BENCH_SAMPLES", 15) as usize,
            result_ns: 0.0,
        }
    }

    /// Times `routine` repeatedly; the reported figure is the median over
    /// samples of mean-ns-per-iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fit in one sample slot.
        let per_sample = self.sample_time / self.samples.max(1) as u32;
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= per_sample / 4 || iters_per_sample >= 1 << 40 {
                if elapsed.as_nanos() > 0 {
                    let target = per_sample.as_nanos() as u64;
                    let scale = (target / elapsed.as_nanos().max(1) as u64).clamp(1, 1 << 20);
                    iters_per_sample = (iters_per_sample * scale).max(1);
                }
                break;
            }
            iters_per_sample *= 2;
        }
        let mut sample_means = Vec::with_capacity(self.samples);
        for _ in 0..self.samples.max(1) {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64;
            sample_means.push(ns / iters_per_sample as f64);
        }
        sample_means.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = sample_means[sample_means.len() / 2];
    }

    /// Times `routine` on fresh input from `setup` each iteration; setup
    /// cost is excluded from the timing.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut per_iter_ns: Vec<f64> = Vec::new();
        let budget = self.sample_time;
        while total < budget || iters < 10 {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let d = start.elapsed();
            black_box(out);
            total += d;
            per_iter_ns.push(d.as_nanos() as f64);
            iters += 1;
            if iters >= 100_000 {
                break;
            }
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = per_iter_ns[per_iter_ns.len() / 2];
    }

    /// Like [`Bencher::iter_batched`] but the routine borrows the input.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        size: BatchSize,
    ) {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

fn human_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(name: &str, ns: f64) {
    println!("{name:<58} time: {:>12}/iter  ({ns:.1} ns)", human_ns(ns));
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, b.result_ns);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Compatibility no-op (the shim sizes samples from wall-clock budget).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Compatibility no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input parameter.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.result_ns);
        self
    }

    /// Runs one benchmark without an input parameter.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.result_ns);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function running each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("BENCH_SAMPLE_MS", "5");
        let mut b = Bencher::new();
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(b.result_ns >= 0.0);
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.result_ns >= 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p=0.1").to_string(), "p=0.1");
    }
}
