//! The datagram wire format: a fixed 16-byte header plus a compact
//! little-endian payload encoding of the protocol message types.
//!
//! Every datagram is self-describing enough for the receiving endpoint to
//! enforce the paper's §4 channel semantics *without trusting the
//! network*:
//!
//! ```text
//! byte  0      1        2..=3     4..=5   6..=7   8..=15      16..
//!       MAGIC  VERSION  from:u16  to:u16  lane:u16  seq:u64   payload
//! ```
//!
//! * `from`/`to` name the directed link the datagram travels on (one
//!   sequence space per ordered process pair);
//! * `lane` is the capacity lane the message occupies (the sharded
//!   service runs one lane per shard; plain links use lane 0);
//! * `seq` is the per-link sequence number, assigned in send order —
//!   the receiver delivers strictly increasing `seq` only, so a reordered
//!   or duplicated datagram is *dropped*, which turns UDP's weak ordering
//!   into the paper's FIFO fair-lossy channel.
//!
//! Payloads are encoded by the [`Wire`] trait — a minimal, dependency-free
//! codec (the workspace is offline; no serde) implemented here for every
//! message type the protocols exchange. Trailing bytes after a decoded
//! payload mark the datagram malformed, and malformed datagrams are
//! dropped (a fair-lossy channel is allowed to lose them).

use snapstab_apps::SnapQuery;
use snapstab_core::flag::Flag;
use snapstab_core::forward::{ForwardMsg, HopAck, Payload};
use snapstab_core::idl::IdlQuery;
use snapstab_core::me::{MeBroadcast, MeFeedback};
use snapstab_core::pif::PifMsg;
use snapstab_core::probe::ProbeDigest;
use snapstab_core::shard::ShardedMeMsg;
use snapstab_runtime::MonitoredMsg;

/// First header byte of every snapstab datagram.
pub const MAGIC: u8 = 0xD5;
/// Wire-format version; bumped on any incompatible layout change.
pub const VERSION: u8 = 1;
/// Fixed size of the datagram header in bytes.
pub const HEADER_LEN: usize = 16;

/// The decoded fixed-size datagram header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Header {
    /// Sender process index.
    pub from: u16,
    /// Receiver process index.
    pub to: u16,
    /// Capacity lane the message occupies (clamped by the receiver).
    pub lane: u16,
    /// Per-link sequence number, strictly increasing in send order.
    pub seq: u64,
}

/// A cursor over a received byte buffer, consumed by [`Wire::decode`].
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Wraps a buffer, starting at its first byte.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|s| u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }
}

/// A type that can travel inside a snapstab datagram.
///
/// The encoding is positional and little-endian; `decode` must consume
/// exactly what `encode` wrote ([`decode_exact`] additionally rejects
/// trailing bytes). Implemented for the primitive integers and for every
/// message type the paper's protocols exchange, so any existing
/// `Protocol` runs over UDP unchanged.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Reads one value; `None` on truncated or invalid input.
    fn decode(r: &mut WireReader<'_>) -> Option<Self>;
}

/// Decodes a complete payload: one `M`, with no bytes left over.
pub fn decode_exact<M: Wire>(buf: &[u8]) -> Option<M> {
    let mut r = WireReader::new(buf);
    let m = M::decode(&mut r)?;
    (r.remaining() == 0).then_some(m)
}

/// Encodes `header` + `msg` into `out` (cleared first) — the full
/// datagram as it goes on the wire.
pub fn encode_datagram<M: Wire>(header: Header, msg: &M, out: &mut Vec<u8>) {
    out.clear();
    out.push(MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&header.from.to_le_bytes());
    out.extend_from_slice(&header.to.to_le_bytes());
    out.extend_from_slice(&header.lane.to_le_bytes());
    out.extend_from_slice(&header.seq.to_le_bytes());
    msg.encode(out);
}

/// Splits a received datagram into its header and payload. `None` if the
/// buffer is too short or carries the wrong magic/version.
pub fn decode_datagram(buf: &[u8]) -> Option<(Header, &[u8])> {
    if buf.len() < HEADER_LEN || buf[0] != MAGIC || buf[1] != VERSION {
        return None;
    }
    let mut r = WireReader::new(&buf[2..HEADER_LEN]);
    let header = Header {
        from: r.u16()?,
        to: r.u16()?,
        lane: r.u16()?,
        seq: r.u64()?,
    };
    Some((header, &buf[HEADER_LEN..]))
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        r.u8()
    }
}

impl Wire for u16 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        r.u16()
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        r.u64()
    }
}

impl Wire for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader<'_>) -> Option<Self> {
        Some(())
    }
}

impl Wire for Flag {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.value());
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        r.u8().map(Flag::new)
    }
}

impl Wire for IdlQuery {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader<'_>) -> Option<Self> {
        Some(IdlQuery)
    }
}

impl Wire for MeBroadcast {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            MeBroadcast::Idl => 0,
            MeBroadcast::Ask => 1,
            MeBroadcast::Exit => 2,
            MeBroadcast::ExitCs => 3,
        });
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        Some(match r.u8()? {
            0 => MeBroadcast::Idl,
            1 => MeBroadcast::Ask,
            2 => MeBroadcast::Exit,
            3 => MeBroadcast::ExitCs,
            _ => return None,
        })
    }
}

impl Wire for MeFeedback {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MeFeedback::Id(id) => {
                out.push(0);
                id.encode(out);
            }
            MeFeedback::Yes => out.push(1),
            MeFeedback::No => out.push(2),
            MeFeedback::Ok => out.push(3),
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        Some(match r.u8()? {
            0 => MeFeedback::Id(u64::decode(r)?),
            1 => MeFeedback::Yes,
            2 => MeFeedback::No,
            3 => MeFeedback::Ok,
            _ => return None,
        })
    }
}

impl<B: Wire, F: Wire> Wire for PifMsg<B, F> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.broadcast.encode(out);
        self.feedback.encode(out);
        self.sender_state.encode(out);
        self.echoed_state.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        Some(PifMsg {
            broadcast: B::decode(r)?,
            feedback: F::decode(r)?,
            sender_state: Flag::decode(r)?,
            echoed_state: Flag::decode(r)?,
        })
    }
}

impl Wire for Payload {
    fn encode(&self, out: &mut Vec<u8>) {
        self.src.encode(out);
        self.dst.encode(out);
        self.id.encode(out);
        self.data.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        Some(Payload {
            src: u16::decode(r)?,
            dst: u16::decode(r)?,
            id: u64::decode(r)?,
            data: u64::decode(r)?,
        })
    }
}

impl Wire for HopAck {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            HopAck::Refused => out.push(0),
            HopAck::Accepted(id) => {
                out.push(1);
                id.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        Some(match r.u8()? {
            0 => HopAck::Refused,
            1 => HopAck::Accepted(u64::decode(r)?),
            _ => return None,
        })
    }
}

impl Wire for ForwardMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match &self.payload {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                p.encode(out);
            }
        }
        self.ack.encode(out);
        self.sender_state.encode(out);
        self.echoed_state.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        let payload = match r.u8()? {
            0 => None,
            1 => Some(Payload::decode(r)?),
            _ => return None,
        };
        Some(ForwardMsg {
            payload,
            ack: HopAck::decode(r)?,
            sender_state: Flag::decode(r)?,
            echoed_state: Flag::decode(r)?,
        })
    }
}

impl Wire for SnapQuery {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut WireReader<'_>) -> Option<Self> {
        Some(SnapQuery)
    }
}

impl Wire for ProbeDigest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.proc.encode(out);
        self.state_hash.encode(out);
        self.queue_depth.encode(out);
        self.in_flight.encode(out);
        self.served.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        Some(ProbeDigest {
            proc: u16::decode(r)?,
            state_hash: u64::decode(r)?,
            queue_depth: u32::decode(r)?,
            in_flight: u32::decode(r)?,
            served: u64::decode(r)?,
        })
    }
}

impl<M: Wire> Wire for MonitoredMsg<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MonitoredMsg::Service(m) => {
                out.push(0);
                m.encode(out);
            }
            MonitoredMsg::Monitor(m) => {
                out.push(1);
                m.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        Some(match r.u8()? {
            0 => MonitoredMsg::Service(M::decode(r)?),
            1 => MonitoredMsg::Monitor(Wire::decode(r)?),
            _ => return None,
        })
    }
}

impl Wire for ShardedMeMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.shard.encode(out);
        self.msg.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        Some(ShardedMeMsg {
            shard: u32::decode(r)?,
            msg: Wire::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<M: Wire + PartialEq + std::fmt::Debug>(msg: M) {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let back: M = decode_exact(&buf).expect("decodes");
        assert_eq!(back, msg);
    }

    #[test]
    fn primitives_round_trip() {
        roundtrip(0xABu8);
        roundtrip(0xAB_CDu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(0x0123_4567_89AB_CDEFu64);
        roundtrip(());
        roundtrip(Flag::new(4));
    }

    #[test]
    fn me_messages_round_trip() {
        for b in [
            MeBroadcast::Idl,
            MeBroadcast::Ask,
            MeBroadcast::Exit,
            MeBroadcast::ExitCs,
        ] {
            for f in [
                MeFeedback::Id(42),
                MeFeedback::Yes,
                MeFeedback::No,
                MeFeedback::Ok,
            ] {
                roundtrip(PifMsg {
                    broadcast: b,
                    feedback: f,
                    sender_state: Flag::new(3),
                    echoed_state: Flag::new(1),
                });
            }
        }
        roundtrip(ShardedMeMsg {
            shard: 7,
            msg: PifMsg {
                broadcast: MeBroadcast::Ask,
                feedback: MeFeedback::Id(99),
                sender_state: Flag::new(0),
                echoed_state: Flag::new(4),
            },
        });
    }

    #[test]
    fn forward_messages_round_trip() {
        let payload = Payload {
            src: 2,
            dst: 5,
            id: 0x8000_0000_0000_0007,
            data: 0xDEAD_BEEF_CAFE_F00D,
        };
        for p in [None, Some(payload)] {
            for ack in [HopAck::Refused, HopAck::Accepted(0x42)] {
                roundtrip(ForwardMsg {
                    payload: p,
                    ack,
                    sender_state: Flag::new(3),
                    echoed_state: Flag::new(1),
                });
            }
        }
        roundtrip(payload);
        roundtrip(HopAck::Accepted(u64::MAX));
        roundtrip(HopAck::Refused);
    }

    #[test]
    fn forward_invalid_tags_rejected() {
        // Unknown payload-option tag.
        assert_eq!(decode_exact::<ForwardMsg>(&[9]), None);
        // Unknown ack tag.
        assert_eq!(decode_exact::<HopAck>(&[7]), None);
        // Truncated payload.
        let mut buf = Vec::new();
        ForwardMsg {
            payload: Some(Payload {
                src: 0,
                dst: 1,
                id: 1,
                data: 2,
            }),
            ack: HopAck::Refused,
            sender_state: Flag::new(0),
            echoed_state: Flag::new(0),
        }
        .encode(&mut buf);
        assert_eq!(decode_exact::<ForwardMsg>(&buf[..buf.len() - 1]), None);
        // Trailing bytes are malformed too.
        buf.push(0);
        assert_eq!(decode_exact::<ForwardMsg>(&buf), None);
    }

    #[test]
    fn datagram_round_trips_and_rejects_foreign_bytes() {
        let header = Header {
            from: 3,
            to: 5,
            lane: 2,
            seq: 0x1122_3344_5566_7788,
        };
        let msg: PifMsg<u32, u32> = PifMsg {
            broadcast: 7,
            feedback: 9,
            sender_state: Flag::new(2),
            echoed_state: Flag::new(3),
        };
        let mut buf = Vec::new();
        encode_datagram(header, &msg, &mut buf);
        assert_eq!(buf.len(), HEADER_LEN + 4 + 4 + 1 + 1);
        let (h, payload) = decode_datagram(&buf).expect("well-formed");
        assert_eq!(h, header);
        assert_eq!(decode_exact::<PifMsg<u32, u32>>(payload), Some(msg));

        // Wrong magic, wrong version, truncated: all rejected.
        let mut bad = buf.clone();
        bad[0] = 0x00;
        assert!(decode_datagram(&bad).is_none());
        let mut bad = buf.clone();
        bad[1] = VERSION + 1;
        assert!(decode_datagram(&bad).is_none());
        assert!(decode_datagram(&buf[..HEADER_LEN - 1]).is_none());
    }

    #[test]
    fn decode_exact_rejects_trailing_and_truncated() {
        let mut buf = Vec::new();
        5u32.encode(&mut buf);
        buf.push(0); // trailing garbage
        assert_eq!(decode_exact::<u32>(&buf), None);
        assert_eq!(decode_exact::<u32>(&buf[..3]), None);
        assert_eq!(decode_exact::<u32>(&buf[..4]), Some(5));
    }

    #[test]
    fn invalid_enum_tags_rejected() {
        assert_eq!(decode_exact::<MeBroadcast>(&[9]), None);
        assert_eq!(decode_exact::<MeFeedback>(&[9]), None);
    }

    #[test]
    fn monitored_messages_round_trip() {
        type MonMsg = MonitoredMsg<PifMsg<MeBroadcast, MeFeedback>>;
        let service: MonMsg = MonitoredMsg::Service(PifMsg {
            broadcast: MeBroadcast::Ask,
            feedback: MeFeedback::Id(7),
            sender_state: Flag::new(2),
            echoed_state: Flag::new(3),
        });
        roundtrip(service);
        let digest = ProbeDigest {
            proc: 5,
            state_hash: 0xFEED_FACE_CAFE_BEEF,
            queue_depth: 42,
            in_flight: 1,
            served: 1_000_003,
        };
        roundtrip(digest);
        roundtrip(SnapQuery);
        let monitor: MonMsg = MonitoredMsg::Monitor(PifMsg {
            broadcast: SnapQuery,
            feedback: digest,
            sender_state: Flag::new(4),
            echoed_state: Flag::new(0),
        });
        roundtrip(monitor);
    }

    #[test]
    fn monitored_invalid_plane_tag_and_truncation_rejected() {
        type MonMsg = MonitoredMsg<PifMsg<MeBroadcast, MeFeedback>>;
        // Unknown plane tag.
        assert_eq!(decode_exact::<MonMsg>(&[2]), None);
        // Truncated monitor payload.
        let mut buf = Vec::new();
        MonitoredMsg::<PifMsg<MeBroadcast, MeFeedback>>::Monitor(PifMsg {
            broadcast: SnapQuery,
            feedback: ProbeDigest::default(),
            sender_state: Flag::new(0),
            echoed_state: Flag::new(0),
        })
        .encode(&mut buf);
        assert_eq!(decode_exact::<MonMsg>(&buf[..buf.len() - 1]), None);
        // Trailing bytes are malformed.
        buf.push(0);
        assert_eq!(decode_exact::<MonMsg>(&buf), None);
    }
}
