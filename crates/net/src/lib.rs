//! # snapstab-net — the paper's channels over real UDP sockets
//!
//! The computational model of §4 — asynchronous message passing over
//! **lossy, duplicate-prone, finite-capacity** channels — is exactly what
//! UDP provides for free. This crate makes that correspondence executable:
//! a [`UdpLoopback`] transport runs any existing
//! [`Protocol`](snapstab_sim::Protocol) implementation *unchanged* over
//! real OS datagram sockets, behind the
//! [`Transport`](snapstab_runtime::Transport) abstraction extracted from
//! the in-memory runtime — and the runs are judged by the same executable
//! specifications (`snapstab_core::spec`) as simulated and in-memory live
//! runs.
//!
//! Three pieces:
//!
//! * [`wire`] — the datagram format: a 16-byte header (link endpoints,
//!   capacity lane, per-link sequence number) plus a compact
//!   dependency-free payload codec (the [`Wire`] trait) for every message
//!   type the protocols exchange;
//! * [`UdpLink`] — one directed link. The *receive* path enforces what
//!   UDP does not promise: FIFO/duplication-freedom by dropping
//!   out-of-sequence datagrams, and the §4 bounded capacity by silently
//!   dropping on a full lane — plus seeded injected loss and delivery
//!   jitter for reproducible experiments, with per-link counters
//!   ([`LinkStats`](snapstab_runtime::LinkStats): sent / delivered /
//!   dropped-full / dropped-reorder);
//! * [`UdpLoopback`] — the harness: binds `n` ephemeral sockets on
//!   `127.0.0.1`, wires the full topology, and demultiplexes each
//!   endpoint's datagrams onto its incoming links.
//!
//! ## Running a service over UDP
//!
//! ```
//! use snapstab_net::UdpLoopback;
//! use snapstab_runtime::{run_mutex_service_on, MutexServiceConfig};
//! use std::time::Duration;
//!
//! # if !snapstab_net::udp_available() { return; } // skip in socketless sandboxes
//! let report = run_mutex_service_on(
//!     &MutexServiceConfig {
//!         n: 3,
//!         requests_per_process: 2,
//!         time_budget: Duration::from_secs(30),
//!         ..MutexServiceConfig::default()
//!     },
//!     &UdpLoopback::new(),
//! )
//! .expect("bind loopback sockets");
//! assert_eq!(report.served, 6);
//! // The merged trace passes the same Specification 3 checker as
//! // simulated and in-memory live runs (see `tests/udp_runtime.rs`).
//! ```
//!
//! Environments that forbid socket creation are detected by
//! [`udp_available`]; the UDP test suites skip-and-warn instead of
//! failing there.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod loopback;
pub mod wire;

pub use link::UdpLink;
pub use loopback::{udp_available, UdpLoopback};
pub use wire::{Wire, WireReader};
