//! [`UdpLink`] — one directed link carried by UDP datagrams, with the
//! paper's §4 channel semantics enforced in the receive path.
//!
//! UDP already *is* most of the paper's computational model: datagrams
//! are lost, duplicated and reordered by the network, and kernel socket
//! buffers are finite. What UDP does not promise — FIFO order and a
//! *known* per-link capacity bound — the receiving endpoint enforces:
//!
//! | §4 property | mechanism |
//! |---|---|
//! | FIFO, duplication-free | per-link sequence numbers; a datagram whose `seq` is not strictly greater than the last accepted one is dropped (`lost_reorder`) |
//! | bounded capacity, silent drop-on-full | a bounded per-lane delivery queue; a datagram arriving at a full lane is dropped and counted (`lost_full`), the sender learns nothing |
//! | fair loss (probability < 1) | the network's own loss, plus a seeded injected stream on the send side for reproducible experiments (`lost_in_transit`) |
//! | eventual delivery | the workers' bounded park/retransmission backoff keeps offering; a fair-lossy link delivers infinitely often |
//!
//! One [`UdpLink`] object serves both ends on a loopback harness: the
//! sending worker calls [`UdpLink::send`] (encode + `send_to`), the
//! receiving endpoint's demultiplexer thread calls `UdpLink::deliver`
//! with each datagram, and the receiving worker drains
//! [`UdpLink::try_recv`] exactly as it drains a
//! [`LiveLink`](snapstab_runtime::LiveLink).

use std::collections::VecDeque;
use std::net::{SocketAddr, UdpSocket};
use std::sync::{Arc, Mutex};
use std::thread::Thread;
use std::time::{Duration, Instant};

use snapstab_runtime::{LaneOf, Link, LinkStats, LiveConfig};
use snapstab_sim::{ProcessId, SendFate, SimRng};

use crate::wire::{decode_exact, encode_datagram, Header, Wire};

/// Send-side state: the sequence counter, the seeded injected-loss
/// stream, and a reused encode buffer.
struct SendState {
    seq: u64,
    rng: SimRng,
    buf: Vec<u8>,
    sends: u64,
    lost_in_transit: u64,
}

/// Receive-side state: the bounded delivery queue and the FIFO guard.
struct RecvState<M> {
    /// Deliverable messages with their jittered ready instant (`None` =
    /// immediately) and the lane they occupy.
    queue: VecDeque<(M, Option<Instant>, usize)>,
    /// Current occupancy per lane; the §4 capacity bound is enforced
    /// against the datagram's lane.
    lane_len: Vec<usize>,
    /// Highest sequence number accepted so far (0 = none; `seq` starts
    /// at 1). Anything not strictly above it is dropped.
    last_seq: u64,
    /// Per-link jitter stream (receive side).
    rng: SimRng,
    /// The receiving worker's thread, unparked on enqueue.
    receiver: Option<Thread>,
    enqueued: u64,
    lost_full: u64,
    lost_reorder: u64,
    delivered: u64,
}

/// One directed UDP link `from → to`: datagrams out of the sender
/// endpoint's socket, a bounded FIFO delivery queue fed by the receiver
/// endpoint's demultiplexer.
///
/// Constructed by [`UdpLoopback`](crate::UdpLoopback); drive it through
/// the [`Link`] trait.
///
/// ```
/// use snapstab_net::UdpLoopback;
/// use snapstab_runtime::{Link, LiveConfig, Transport};
/// use snapstab_sim::SendFate;
/// use std::time::{Duration, Instant};
///
/// # if !snapstab_net::udp_available() { return; } // skip in socketless sandboxes
/// let transport = UdpLoopback::new();
/// let links = Transport::<u32>::connect(&transport, 2, &LiveConfig::default(), None)
///     .expect("bind loopback sockets");
/// let link = links[0 * 2 + 1].as_ref().expect("link 0 -> 1");
/// assert_eq!(link.send(42), SendFate::Enqueued); // handed to the socket
/// let deadline = Instant::now() + Duration::from_secs(5);
/// loop {
///     if let Some(msg) = link.try_recv() {
///         assert_eq!(msg, 42);
///         break;
///     }
///     assert!(Instant::now() < deadline, "datagram never arrived");
///     std::thread::yield_now();
/// }
/// assert_eq!(link.stats().delivered, 1);
/// ```
pub struct UdpLink<M> {
    from: ProcessId,
    to: ProcessId,
    /// Capacity **per lane**, as in the in-memory link.
    capacity: usize,
    lanes: usize,
    lane_of: Option<LaneOf<M>>,
    loss: f64,
    jitter: Option<Duration>,
    /// The *sender* endpoint's socket (shared with its demux thread).
    socket: Arc<UdpSocket>,
    /// The *receiver* endpoint's bound address.
    peer: SocketAddr,
    send: Mutex<SendState>,
    recv: Mutex<RecvState<M>>,
}

impl<M: Wire> UdpLink<M> {
    /// Creates the link `from → to` sending out of `socket` toward
    /// `peer`, with the channel parameters of `config`.
    ///
    /// # Panics
    ///
    /// As the in-memory link: zero `capacity`, `loss` outside `[0, 1)`
    /// or zero `lanes` are out of the model's domain.
    pub(crate) fn new(
        from: ProcessId,
        to: ProcessId,
        socket: Arc<UdpSocket>,
        peer: SocketAddr,
        config: &LiveConfig,
        lanes: usize,
        lane_of: Option<LaneOf<M>>,
    ) -> Self {
        snapstab_runtime::transport::assert_channel_domain(config.capacity, config.loss, lanes);
        // The backends share one per-link seed formula, split here into
        // independent send (loss) and receive (jitter) streams.
        let link_seed = snapstab_runtime::transport::link_seed(config.seed, from, to);
        UdpLink {
            from,
            to,
            capacity: config.capacity,
            lanes,
            lane_of,
            loss: config.loss,
            jitter: config.jitter,
            socket,
            peer,
            send: Mutex::new(SendState {
                seq: 0,
                rng: SimRng::seed_from(link_seed ^ 0x5E4D_0000_0000_0001),
                buf: Vec::with_capacity(64),
                sends: 0,
                lost_in_transit: 0,
            }),
            recv: Mutex::new(RecvState {
                queue: VecDeque::new(),
                lane_len: vec![0; lanes],
                last_seq: 0,
                rng: SimRng::seed_from(link_seed ^ 0x4ECF_0000_0000_0002),
                receiver: None,
                enqueued: 0,
                lost_full: 0,
                lost_reorder: 0,
                delivered: 0,
            }),
        }
    }

    /// Feeds one received datagram into the delivery queue, enforcing the
    /// §4 semantics. Called by the receiving endpoint's demultiplexer
    /// thread with the already-split header and payload.
    pub(crate) fn deliver(&self, header: Header, payload: &[u8]) {
        // Decode before touching any state: a malformed datagram is
        // foreign traffic and must not advance the FIFO guard.
        let Some(msg) = decode_exact::<M>(payload) else {
            return;
        };
        let lane = (header.lane as usize).min(self.lanes - 1);
        let wake;
        {
            let mut recv = self.recv.lock().expect("recv state poisoned");
            if header.seq <= recv.last_seq {
                // Out-of-order or duplicated by the network: dropping it
                // keeps the link FIFO and duplication-free (the drop
                // itself is fair loss).
                recv.lost_reorder += 1;
                return;
            }
            recv.last_seq = header.seq;
            if recv.lane_len[lane] >= self.capacity {
                // §4 silent drop-on-full; the sender is not told.
                recv.lost_full += 1;
                return;
            }
            let ready = self.jitter.map(|j| {
                let span = j.as_nanos().max(1) as usize;
                Instant::now() + Duration::from_nanos(recv.rng.gen_range(0..span) as u64)
            });
            recv.queue.push_back((msg, ready, lane));
            recv.lane_len[lane] += 1;
            recv.enqueued += 1;
            wake = recv.receiver.clone();
        }
        if let Some(t) = wake {
            t.unpark();
        }
    }
}

impl<M: Wire + Send> Link<M> for UdpLink<M> {
    fn from(&self) -> ProcessId {
        self.from
    }

    fn to(&self) -> ProcessId {
        self.to
    }

    fn register_receiver(&self, receiver: Thread) {
        self.recv.lock().expect("recv state poisoned").receiver = Some(receiver);
    }

    /// Encodes the message and hands it to the socket. The returned fate
    /// is the sender's *local* knowledge: `Enqueued` means the datagram
    /// left for the network — a remote drop-on-full stays silent, exactly
    /// as §4 demands. The seeded injected-loss stream (and any socket
    /// error, e.g. a full kernel buffer) maps to `LostInTransit`.
    fn send(&self, msg: M) -> SendFate {
        let lane = self
            .lane_of
            .as_ref()
            .map(|f| f(&msg).min(self.lanes - 1))
            .unwrap_or(0);
        let mut send = self.send.lock().expect("send state poisoned");
        send.sends += 1;
        if self.loss > 0.0 && send.rng.gen_bool(self.loss) {
            send.lost_in_transit += 1;
            return SendFate::LostInTransit;
        }
        send.seq += 1;
        let header = Header {
            from: self.from.index() as u16,
            to: self.to.index() as u16,
            lane: lane as u16,
            seq: send.seq,
        };
        let SendState { buf, .. } = &mut *send;
        encode_datagram(header, &msg, buf);
        match self.socket.send_to(&send.buf, self.peer) {
            Ok(_) => SendFate::Enqueued,
            Err(_) => {
                // The kernel refused the datagram (full buffer, transient
                // error): indistinguishable from in-transit loss, and the
                // fair-lossy model absorbs it.
                send.lost_in_transit += 1;
                SendFate::LostInTransit
            }
        }
    }

    fn try_recv(&self) -> Option<M> {
        let mut recv = self.recv.lock().expect("recv state poisoned");
        match recv.queue.front() {
            None => None,
            Some((_, Some(ready), _)) if Instant::now() < *ready => None,
            Some(_) => {
                let (m, _, lane) = recv.queue.pop_front().expect("front checked");
                recv.lane_len[lane] -= 1;
                recv.delivered += 1;
                Some(m)
            }
        }
    }

    fn len(&self) -> usize {
        self.recv.lock().expect("recv state poisoned").queue.len()
    }

    fn stats(&self) -> LinkStats {
        let send = self.send.lock().expect("send state poisoned");
        let recv = self.recv.lock().expect("recv state poisoned");
        LinkStats {
            sends: send.sends,
            enqueued: recv.enqueued,
            lost_full: recv.lost_full,
            lost_in_transit: send.lost_in_transit,
            lost_reorder: recv.lost_reorder,
            delivered: recv.delivered,
        }
    }
}
