//! [`UdpLoopback`] — the orchestration layer: binds one UDP socket per
//! process on `127.0.0.1`, wires the full `n × n` [`UdpLink`] topology,
//! and runs one demultiplexer thread per endpoint that routes incoming
//! datagrams to their link's delivery queue.
//!
//! This is the single-host ("loopback") deployment of the transport: all
//! `n` workers are threads of one OS process, but every message crosses
//! the kernel's UDP stack — real sockets, real syscalls, real finite
//! buffers. A multi-host deployment would construct the same links with
//! remote peer addresses; the `Protocol`-facing surface is identical.

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use snapstab_runtime::{LaneOf, Link, LinkMatrix, LiveConfig, Transport};
use snapstab_sim::ProcessId;

use crate::link::UdpLink;
use crate::wire::{decode_datagram, Wire};

/// How long a demultiplexer blocks in `recv_from` before re-checking the
/// shutdown flag.
const DEMUX_POLL: Duration = Duration::from_millis(20);

/// One endpoint's demultiplexer thread, joined when the transport drops.
struct Endpoint {
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// A UDP transport over `127.0.0.1`: implements
/// [`Transport`] by binding `n` ephemeral sockets
/// and spawning one demultiplexer thread per endpoint.
///
/// The object owns the demultiplexer threads of every topology it has
/// connected: keep it alive for the duration of the run (the services
/// take it by reference), and drop it to shut the threads down.
///
/// ```
/// use snapstab_net::UdpLoopback;
/// use snapstab_runtime::{run_mutex_service_on, LiveConfig, MutexServiceConfig};
/// use std::time::Duration;
///
/// # if !snapstab_net::udp_available() { return; } // skip in socketless sandboxes
/// // Three workers exchanging Algorithm 3 messages as real datagrams.
/// let report = run_mutex_service_on(
///     &MutexServiceConfig {
///         n: 3,
///         requests_per_process: 1,
///         time_budget: Duration::from_secs(30),
///         ..MutexServiceConfig::default()
///     },
///     &UdpLoopback::new(),
/// )
/// .expect("bind loopback sockets");
/// assert_eq!(report.served, 3);
/// ```
#[derive(Default)]
pub struct UdpLoopback {
    endpoints: Mutex<Vec<Endpoint>>,
    /// The socket addresses bound by the most recent `connect`, in
    /// process order — exposed for tests that inject raw datagrams.
    last_addrs: Mutex<Vec<std::net::SocketAddr>>,
    /// The sockets bound by the most recent `connect` (shared with the
    /// demux threads and links) — exposed for raw-datagram tests.
    last_sockets: Mutex<Vec<Arc<UdpSocket>>>,
}

impl UdpLoopback {
    /// Creates a transport with no sockets bound yet; each
    /// [`Transport::connect`] call binds a fresh set.
    pub fn new() -> Self {
        Self::default()
    }

    /// The socket addresses bound by the most recent
    /// [`Transport::connect`] call, in process order. Empty before the
    /// first call.
    pub fn endpoint_addrs(&self) -> Vec<std::net::SocketAddr> {
        self.last_addrs.lock().expect("addrs poisoned").clone()
    }

    /// Endpoint `i`'s bound socket (most recent connect) — the handle
    /// raw-datagram tests send crafted datagrams *from*, simulating a
    /// misbehaving network on the links out of process `i`. Demux
    /// threads only accept datagrams whose source address matches the
    /// header's claimed sender, so crafted traffic must leave the
    /// genuine socket.
    pub fn endpoint_socket(&self, i: usize) -> Arc<UdpSocket> {
        self.last_sockets.lock().expect("sockets poisoned")[i].clone()
    }
}

/// True if this environment lets us bind (and talk over) UDP loopback
/// sockets — the guard the UDP tests use to *skip-and-warn* inside
/// sandboxes that forbid socket creation.
pub fn udp_available() -> bool {
    let Ok(a) = UdpSocket::bind(("127.0.0.1", 0)) else {
        return false;
    };
    let Ok(b) = UdpSocket::bind(("127.0.0.1", 0)) else {
        return false;
    };
    let Ok(addr) = b.local_addr() else {
        return false;
    };
    a.send_to(&[0xD5], addr).is_ok()
}

impl<M: Wire + Send + 'static> Transport<M> for UdpLoopback {
    fn connect(
        &self,
        n: usize,
        config: &LiveConfig,
        lanes: Option<(usize, LaneOf<M>)>,
    ) -> std::io::Result<LinkMatrix<M>> {
        let (lane_count, lane_of) = match lanes {
            Some((count, f)) => (count, Some(f)),
            None => (1, None),
        };
        // Bind one socket per process; the OS picks the ports.
        let mut sockets = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            let socket = UdpSocket::bind(("127.0.0.1", 0))?;
            socket.set_read_timeout(Some(DEMUX_POLL))?;
            addrs.push(socket.local_addr()?);
            sockets.push(Arc::new(socket));
        }
        *self.last_addrs.lock().expect("addrs poisoned") = addrs.clone();
        *self.last_sockets.lock().expect("sockets poisoned") = sockets.clone();

        // The full link matrix, plus per-receiver routing tables for the
        // demultiplexers (indexed by sender id).
        let mut matrix: LinkMatrix<M> = Vec::with_capacity(n * n);
        let mut routes: Vec<Vec<Option<Arc<UdpLink<M>>>>> = (0..n).map(|_| vec![None; n]).collect();
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    matrix.push(None);
                    continue;
                }
                let link = Arc::new(UdpLink::new(
                    ProcessId::new(from),
                    ProcessId::new(to),
                    sockets[from].clone(),
                    addrs[to],
                    config,
                    lane_count,
                    lane_of.clone(),
                ));
                routes[to][from] = Some(link.clone());
                matrix.push(Some(link as Arc<dyn Link<M>>));
            }
        }

        // One demultiplexer per endpoint: route each datagram to the
        // sending link's delivery queue, where the §4 semantics are
        // enforced.
        let mut endpoints = self.endpoints.lock().expect("endpoints poisoned");
        for (i, (socket, incoming)) in sockets.into_iter().zip(routes).enumerate() {
            let shutdown = Arc::new(AtomicBool::new(false));
            let flag = shutdown.clone();
            let expected = addrs.clone();
            let handle = std::thread::Builder::new()
                .name(format!("snapstab-udp-demux-{i}"))
                .spawn(move || {
                    let mut buf = [0u8; 2048];
                    while !flag.load(Ordering::Relaxed) {
                        let (len, src) = match socket.recv_from(&mut buf) {
                            Ok(received) => received,
                            // Timeout (or spurious error): re-check the
                            // shutdown flag and keep listening.
                            Err(_) => continue,
                        };
                        // Malformed, foreign or misrouted datagrams are
                        // dropped: a fair-lossy channel may lose anything.
                        let Some((header, payload)) = decode_datagram(&buf[..len]) else {
                            continue;
                        };
                        if header.to as usize != i {
                            continue;
                        }
                        // The datagram must actually come from the socket
                        // of the process it claims as sender: otherwise a
                        // stray datagram from another topology (ephemeral
                        // port reuse) or a stale test could advance a
                        // link's FIFO sequence guard arbitrarily — e.g.
                        // seq = u64::MAX would deafen the link forever,
                        // turning its loss probability into 1 and
                        // violating the fair-loss assumption.
                        if expected.get(header.from as usize) != Some(&src) {
                            continue;
                        }
                        if let Some(link) =
                            incoming.get(header.from as usize).and_then(Option::as_ref)
                        {
                            link.deliver(header, payload);
                        }
                    }
                })
                .expect("spawn demux thread");
            endpoints.push(Endpoint {
                shutdown,
                handle: Some(handle),
            });
        }
        Ok(matrix)
    }
}

impl Drop for UdpLoopback {
    fn drop(&mut self) {
        let mut endpoints = self.endpoints.lock().expect("endpoints poisoned");
        for e in endpoints.iter() {
            e.shutdown.store(true, Ordering::Relaxed);
        }
        for e in endpoints.iter_mut() {
            if let Some(h) = e.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_sim::SendFate;
    use std::time::Instant;

    fn recv_within<M>(link: &Arc<dyn Link<M>>, secs: u64) -> Option<M> {
        let deadline = Instant::now() + Duration::from_secs(secs);
        while Instant::now() < deadline {
            if let Some(m) = link.try_recv() {
                return Some(m);
            }
            std::thread::yield_now();
        }
        None
    }

    #[test]
    fn connect_builds_a_working_matrix() {
        if !udp_available() {
            eprintln!("warning: UDP loopback unavailable in this sandbox; skipping");
            return;
        }
        let transport = UdpLoopback::new();
        let links =
            Transport::<u32>::connect(&transport, 3, &LiveConfig::default(), None).expect("bind");
        assert_eq!(links.len(), 9);
        assert_eq!(transport.endpoint_addrs().len(), 3);
        // Every directed pair carries a message.
        for from in 0..3usize {
            for to in 0..3usize {
                let Some(link) = links[from * 3 + to].as_ref() else {
                    assert_eq!(from, to);
                    continue;
                };
                let payload = (from * 10 + to) as u32;
                assert_eq!(link.send(payload), SendFate::Enqueued);
                assert_eq!(recv_within(link, 5), Some(payload), "{from} -> {to}");
            }
        }
    }

    #[test]
    fn seeded_injected_loss_is_reproducible() {
        if !udp_available() {
            eprintln!("warning: UDP loopback unavailable in this sandbox; skipping");
            return;
        }
        let run = |seed: u64| {
            let transport = UdpLoopback::new();
            let cfg = LiveConfig {
                loss: 0.3,
                seed,
                capacity: usize::MAX,
                ..LiveConfig::default()
            };
            let links = Transport::<u32>::connect(&transport, 2, &cfg, None).expect("bind");
            let link = links[1].as_ref().expect("0 -> 1");
            let mut fates = Vec::new();
            for i in 0..200 {
                fates.push(link.send(i) == SendFate::LostInTransit);
            }
            let lost = fates.iter().filter(|&&l| l).count();
            assert!((20..=100).contains(&lost), "lost {lost} of 200");
            fates
        };
        assert_eq!(run(7), run(7), "same seed, same injected-loss stream");
        assert_ne!(run(7), run(8), "different seed, different stream");
    }
}
