//! `snapstab` — command-line explorer for the snap-stabilization
//! reproduction. Run `snapstab help` for usage.

mod args;
mod commands;

fn main() {
    let parsed = args::Args::parse(std::env::args().skip(1));
    print!("{}", commands::dispatch(&parsed));
}
