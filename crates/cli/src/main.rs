//! `snapstab` — command-line explorer for the snap-stabilization
//! reproduction. Run `snapstab help` for usage.

mod args;
mod commands;

fn main() {
    let parsed = args::Args::parse(std::env::args().skip(1));
    let (report, code) = commands::dispatch(&parsed);
    if code == 0 {
        print!("{report}");
    } else {
        eprint!("{report}");
    }
    std::process::exit(code);
}
