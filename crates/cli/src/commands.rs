//! The CLI subcommands: run a protocol from a (optionally corrupted)
//! start and report what happened.

use snapstab_core::idl::IdlProcess;
use snapstab_core::me::{MeConfig, MeProcess, ValueMode};
use snapstab_core::request::RequestState;
use snapstab_core::spec::{analyze_me_trace, check_idl_result};
use snapstab_impossibility::DoubleWinDemo;
use snapstab_sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

use crate::args::Args;

/// The usage text.
pub const USAGE: &str = "\
snapstab — explore the snap-stabilizing protocols of Delaet et al. (2008)

USAGE: snapstab <command> [options]

COMMANDS
  idl            one IDs-Learning computation (Algorithm 2, simulated)
  me             a mutual-exclusion workload (Algorithm 3, simulated)
  live           a service on the live runtime: one OS thread per
                 process over a concurrent lossy transport
                 (--app mutex: the mutual-exclusion service;
                  --app forward: snap-stabilizing message forwarding)
  impossibility  the Theorem 1 construction and replay
  help           this text

COMMON OPTIONS
  --n <int>      number of processes        (default 4)
  --seed <int>   deterministic seed         (default 1)
  --loss <f64>   per-message loss rate      (default 0.0)
  --corrupt      start from an arbitrary (corrupted) configuration
  --trace        print the execution timeline / service log

COMMAND OPTIONS
  me:            --steps <int> (default 60000), --requests <int> (default 3),
                 --cs-duration <int> (default 0)
  live:          --app {mutex|forward} (default mutex),
                 --requests <int> per process (default 50),
                 --cs-duration <int> (default 0), --budget-secs <int>
                 (default 60), --check (record + spec-check the trace),
                 --transport {inmem|udp} (default inmem; udp runs the
                 same protocol over real UDP loopback sockets),
                 --runtime {threads|mux} (default threads: one OS thread
                 per process; mux multiplexes the n protocol instances
                 over an event-driven worker pool, scaling to thousands
                 of instances; composes with --monitor — digests are
                 captured inside the same atomic per-instance step; not
                 with --shards/--batch/--queue-depth),
                 --workers <int> (default 4): mux worker-pool size,
                 --chaos {corrupt|crash|partition|storm|all}: inject a
                 seeded schedule of mid-run transient faults (state
                 corruption, crash storms healed by the supervisor with
                 adversarially corrupted restarts, link partitions, drop
                 storms); implies --check, with the spec judged per
                 fault-delimited epoch (not with --shards/--batch),
                 --shards <int> (default 1) and --batch <int> (default 1):
                 with either > 1, runs the sharded multi-leader service
                 with request batching (--key-space <int>, default 65536);
                 --queue-depth <int> (default 0): when set, runs the
                 sharded service with each per-shard client queue
                 starting ~that deep instead of --requests;
                 --monitor: run a snap-stabilizing snapshot monitor
                 alongside the service on the same transport — periodic
                 global cuts (state digests, queue depths, in-flight
                 counts, link counters) without pausing workers; prints
                 per-cut summaries and a final JSON metrics block;
                 with --check, the cuts are judged by Specification 5
                 (not with --shards/--batch/--queue-depth);
                 --monitor-interval <ms> (default 100, implies
                 --monitor): target period between cuts, a positive
                 integer of milliseconds;
                 --initiators <int> (default 1, implies --monitor):
                 concurrent snapshot initiators, each running its own
                 single-flight ledger on an independent schedule;
                 1 <= K <= n, and each decided cut is attributed to the
                 ledger that requested it;
                 --metrics-out <path|-> (implies --monitor): emit the
                 telemetry stream — schema-stable JSON lines, one per
                 decided cut (type: cut), per threshold alert (type:
                 alert), plus a final type: summary line — to a file,
                 or inline with `-`;
                 --jitter <ms> (default 0): uniform random per-delivery
                 delay up to that many milliseconds — stretches waves
                 under loss (the refusal-streak alert demo needs it);
                 --alert-refusal-streak <int> (default 3, implies
                 --monitor): fire an alert after that many consecutive
                 refused cuts on one ledger — surfaced in the report
                 and recorded as an `alert:` mark in the merged trace;
                 forward only: --buffer <int> (default 4) per-lane
                 buffer capacity, --stale (adversarially pre-fill every
                 buffer with stale entries before starting)
  impossibility: --cs-duration <int> (default 8)
";

/// Runs the `idl` subcommand; returns the report text.
pub fn cmd_idl(args: &Args) -> String {
    let n: usize = args.get_or("n", 4);
    let seed: u64 = args.get_or("seed", 1);
    let loss: f64 = args.get_or("loss", 0.0);
    let ids: Vec<u64> = (0..n)
        .map(|i| 1 + ((7919 * (i as u64 + seed)) % 9973))
        .collect();

    let processes: Vec<IdlProcess> = (0..n)
        .map(|i| IdlProcess::new(ProcessId::new(i), n, ids[i]))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    if loss > 0.0 {
        runner.set_loss(LossModel::probabilistic(loss));
    }
    let mut out = format!("IDs-Learning: n={n}, ids={ids:?}, loss={loss}, seed={seed}\n");
    if args.has("corrupt") {
        let mut rng = SimRng::seed_from(seed ^ 0xC0);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        out.push_str("corrupted every variable and channel\n");
    }
    let learner = ProcessId::new(0);
    let _ = runner.run_until(1_000_000, |r| {
        r.process(learner).request() == RequestState::Done
    });
    runner.process_mut(learner).request_learning();
    let before = runner.step_count();
    runner
        .run_until(5_000_000, |r| {
            r.process(learner).request() == RequestState::Done
        })
        .expect("computation decides");
    let verdict = check_idl_result(runner.process(learner).idl(), learner, &ids, true, true);
    out.push_str(&format!(
        "decided in {} steps; minID = {} (true {}); spec holds: {}\n",
        runner.step_count() - before,
        runner.process(learner).idl().min_id(),
        ids.iter().min().unwrap(),
        verdict.holds(),
    ));
    if args.has("trace") {
        out.push_str(&snapstab_sim::render_timeline(
            runner.trace(),
            n,
            &snapstab_sim::RenderOptions::default(),
        ));
    }
    out
}

/// Runs the `me` subcommand; returns the report text.
pub fn cmd_me(args: &Args) -> String {
    let n: usize = args.get_or("n", 4);
    let seed: u64 = args.get_or("seed", 1);
    let loss: f64 = args.get_or("loss", 0.0);
    let steps: u64 = args.get_or("steps", 60_000);
    let requests: u32 = args.get_or("requests", 3);
    let cs_duration: u64 = args.get_or("cs-duration", 0);

    let config = MeConfig {
        cs_duration,
        value_mode: ValueMode::Corrected,
        ..MeConfig::default()
    };
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| MeProcess::with_config(ProcessId::new(i), n, 100 + i as u64, config))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    if loss > 0.0 {
        runner.set_loss(LossModel::probabilistic(loss));
    }
    let mut out = format!(
        "Mutual exclusion: n={n}, loss={loss}, cs_duration={cs_duration}, \
         {requests} request(s) per process, budget {steps} steps\n"
    );
    let mut rng = SimRng::seed_from(seed ^ 0xE1);
    if args.has("corrupt") {
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        out.push_str("corrupted every variable and channel\n");
    }
    let mut pending = vec![requests; n];
    let mut executed = 0;
    while executed < steps {
        executed += runner.run_steps(300).expect("run").steps;
        for (i, left) in pending.iter_mut().enumerate() {
            let p = ProcessId::new(i);
            if *left > 0 && runner.process(p).request() == RequestState::Done {
                runner.mark(p, "request");
                runner.process_mut(p).request_cs();
                *left -= 1;
            }
        }
    }
    let report = analyze_me_trace(runner.trace(), n);
    out.push_str(&format!(
        "served {} request(s); genuine CS overlaps: {}; spurious overlaps: {}\n",
        report.served.len(),
        report.genuine_overlaps.len(),
        report.spurious_overlaps.len(),
    ));
    let lat = report.latencies();
    if !lat.is_empty() {
        out.push_str(&format!(
            "service latency: min {} / max {} steps\n",
            lat.iter().min().unwrap(),
            lat.iter().max().unwrap(),
        ));
    }
    if args.has("trace") {
        for (p, req, srv) in &report.served {
            out.push_str(&format!("  {p}: requested @{req}, served @{srv}\n"));
        }
    }
    out
}

/// Runs the `live` subcommand: the mutual-exclusion service on the live
/// multi-threaded runtime. Returns the report text and an exit code —
/// non-zero when requests went unserved within the budget or (under
/// `--check`) the merged trace violates Specification 3, so scripts and
/// CI can gate on a live regression.
/// The flags shared by both `live` variants, parsed once so their
/// defaults cannot diverge.
struct LiveFlags {
    n: usize,
    seed: u64,
    loss: f64,
    jitter_ms: u64,
    requests: u64,
    cs_duration: u64,
    budget_secs: u64,
    check: bool,
    shards: usize,
    batch: usize,
    queue_depth: u64,
    transport: String,
    runtime: String,
    workers: usize,
}

impl LiveFlags {
    fn parse(args: &Args) -> Self {
        LiveFlags {
            n: args.get_or("n", 4),
            seed: args.get_or("seed", 1),
            loss: args.get_or("loss", 0.0),
            jitter_ms: args.get_or("jitter", 0),
            requests: args.get_or("requests", 50),
            cs_duration: args.get_or("cs-duration", 0),
            budget_secs: args.get_or("budget-secs", 60),
            check: args.has("check"),
            shards: args.get_or("shards", 1),
            batch: args.get_or("batch", 1),
            queue_depth: args.get_or("queue-depth", 0),
            transport: args.get_or("transport", "inmem".to_string()),
            runtime: args.get_or("runtime", "threads".to_string()),
            workers: args.get_or("workers", 4),
        }
    }
}

/// `--jitter MS` as the runtime's optional per-delivery delay (0 = off).
fn jitter(ms: u64) -> Option<std::time::Duration> {
    (ms > 0).then(|| std::time::Duration::from_millis(ms))
}

/// The valid `--transport` backends, listed in the exit-2 error message.
const TRANSPORTS: [&str; 2] = ["inmem", "udp"];

/// The valid `--app` workloads of the `live` subcommand, listed in the
/// exit-2 error message (same convention as `--transport`).
const APPS: [&str; 2] = ["mutex", "forward"];

/// The valid `--runtime` backends of the `live` subcommand, listed in
/// the exit-2 error message (same convention as `--transport`).
const RUNTIMES: [&str; 2] = ["threads", "mux"];

/// Validates `--runtime` plus its `--workers` pool size, or an exit-2
/// usage error matching the `--transport` precedent. Returns `true`
/// when the event-driven mux backend was selected.
fn parse_runtime(name: &str, workers: usize) -> Result<bool, (String, i32)> {
    match name {
        "threads" => Ok(false),
        "mux" if workers == 0 => Err((
            format!("invalid --workers 0: the mux pool needs at least one worker\n\n{USAGE}"),
            2,
        )),
        "mux" => Ok(true),
        other => Err((
            format!(
                "unknown --runtime `{other}`: valid values are {}\n\n{USAGE}",
                RUNTIMES.join(", ")
            ),
            2,
        )),
    }
}

/// Validates `--app`, or an exit-2 usage error matching the
/// `--transport` precedent.
fn parse_app(name: &str) -> Result<&str, (String, i32)> {
    if APPS.contains(&name) {
        Ok(name)
    } else {
        Err((
            format!(
                "unknown --app `{name}`: valid values are {}\n\n{USAGE}",
                APPS.join(", ")
            ),
            2,
        ))
    }
}

/// Resolves `--chaos` to a fault-mix profile: `Ok(None)` when absent, an
/// exit-2 usage error listing the valid set for an unknown (or missing)
/// profile — the same contract as `parse_transport` / `--app`.
fn parse_chaos(args: &Args) -> Result<Option<snapstab_runtime::ChaosMix>, (String, i32)> {
    use snapstab_runtime::ChaosMix;
    let raw = args.get_or("chaos", String::new());
    if raw.is_empty() {
        if args.has("chaos") {
            return Err((
                format!(
                    "missing --chaos profile: valid values are {}\n\n{USAGE}",
                    ChaosMix::NAMES.join(", ")
                ),
                2,
            ));
        }
        return Ok(None);
    }
    match ChaosMix::parse(&raw) {
        Some(mix) => Ok(Some(mix)),
        None => Err((
            format!(
                "unknown --chaos `{raw}`: valid values are {}\n\n{USAGE}",
                ChaosMix::NAMES.join(", ")
            ),
            2,
        )),
    }
}

/// Resolves `--monitor` / `--monitor-interval` to a monitor
/// configuration: `Ok(None)` when monitoring is off, an exit-2 usage
/// error for an invalid interval (zero or non-numeric), listing the
/// valid input — the same contract as `parse_transport`. Passing
/// `--monitor-interval` alone implies `--monitor` (never silently
/// ignored, the `--queue-depth` precedent).
fn parse_monitor(
    args: &Args,
    n: usize,
) -> Result<Option<snapstab_runtime::MonitorConfig>, (String, i32)> {
    let raw = args.get_raw("monitor-interval");
    let raw_initiators = args.get_raw("initiators");
    let raw_streak = args.get_raw("alert-refusal-streak");
    let monitoring = args.has("monitor")
        || raw.is_some()
        || raw_initiators.is_some()
        || args.has("initiators")
        || raw_streak.is_some()
        || args.has("alert-refusal-streak")
        || args.has("metrics-out")
        || args.get_raw("metrics-out").is_some();
    if !monitoring {
        return Ok(None);
    }
    let interval_ms = match raw {
        None => 100,
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) if ms > 0 => ms,
            _ => {
                return Err((
                    format!(
                        "invalid --monitor-interval `{raw}`: valid values are \
                         positive integers (milliseconds between cuts)\n\n{USAGE}"
                    ),
                    2,
                ))
            }
        },
    };
    let initiators = match raw_initiators {
        None if args.has("initiators") => {
            return Err((
                format!(
                    "missing --initiators count: valid values are integers \
                     in 1..=n (concurrent snapshot initiators)\n\n{USAGE}"
                ),
                2,
            ))
        }
        None => 1,
        Some(raw) => match raw.parse::<usize>() {
            Ok(k) if k >= 1 && k <= n => k,
            _ => {
                return Err((
                    format!(
                        "invalid --initiators `{raw}`: valid values are \
                         integers in 1..=n (here 1..={n}, concurrent \
                         snapshot initiators)\n\n{USAGE}"
                    ),
                    2,
                ))
            }
        },
    };
    let refusal_streak = match raw_streak {
        None if args.has("alert-refusal-streak") => {
            return Err((
                format!(
                    "missing --alert-refusal-streak threshold: valid values \
                     are positive integers (consecutive refusals on one \
                     ledger before the alert fires)\n\n{USAGE}"
                ),
                2,
            ))
        }
        None => snapstab_runtime::AlertConfig::default().refusal_streak,
        Some(raw) => match raw.parse::<u64>() {
            Ok(k) if k >= 1 => k,
            _ => {
                return Err((
                    format!(
                        "invalid --alert-refusal-streak `{raw}`: valid values \
                         are positive integers (consecutive refusals on one \
                         ledger before the alert fires)\n\n{USAGE}"
                    ),
                    2,
                ))
            }
        },
    };
    Ok(Some(snapstab_runtime::MonitorConfig {
        interval: std::time::Duration::from_millis(interval_ms),
        initiators,
        alerts: snapstab_runtime::AlertConfig {
            refusal_streak,
            ..snapstab_runtime::AlertConfig::default()
        },
    }))
}

/// Where `--metrics-out` streams the telemetry JSON lines: inline with
/// the report (`-`) or appended to a file.
enum MetricsOut {
    Inline,
    File(std::path::PathBuf),
}

/// Resolves `--metrics-out` (implies `--monitor`): `-` streams the
/// schema-stable JSON lines inline with the report, any other value is
/// a file path. A bare switch is an exit-2 usage error listing the
/// valid form (the `parse_transport` precedent).
fn parse_metrics_out(args: &Args) -> Result<Option<MetricsOut>, (String, i32)> {
    if let Some(raw) = args.get_raw("metrics-out") {
        if raw == "-" {
            return Ok(Some(MetricsOut::Inline));
        }
        return Ok(Some(MetricsOut::File(std::path::PathBuf::from(raw))));
    }
    if args.has("metrics-out") {
        return Err((
            format!(
                "missing --metrics-out target: valid values are a file \
                 path, or `-` to stream the JSON lines inline with the \
                 report\n\n{USAGE}"
            ),
            2,
        ));
    }
    Ok(None)
}

/// Delivers the collected telemetry JSON lines to the `--metrics-out`
/// target: appended verbatim to the report for `-`, written to the file
/// otherwise (noted in the report either way).
fn deliver_metrics(out: &mut String, target: &MetricsOut, lines: &[String]) -> Option<i32> {
    match target {
        MetricsOut::Inline => {
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
            None
        }
        MetricsOut::File(path) => {
            let mut body = lines.join("\n");
            body.push('\n');
            match std::fs::write(path, body) {
                Ok(()) => {
                    out.push_str(&format!(
                        "telemetry: {} JSON line(s) written to {}\n",
                        lines.len(),
                        path.display()
                    ));
                    None
                }
                Err(e) => {
                    out.push_str(&format!(
                        "telemetry: failed to write {}: {e}\n",
                        path.display()
                    ));
                    Some(1)
                }
            }
        }
    }
}

/// The per-link half of the counter report: one row per directed link,
/// identical for every transport backend (the in-memory matrix and the
/// UDP loopback expose the same [`snapstab_runtime::LinkSample`]s).
/// Zero-activity links are elided to keep the table proportional to the
/// traffic, not to n².
fn per_link_table(samples: &[snapstab_runtime::LinkSample]) -> String {
    let mut out = String::from("per-link counters (drops full/transit/reorder, in transit):\n");
    let mut shown = 0;
    for s in samples {
        if s.stats.sends == 0 && s.in_transit == 0 {
            continue;
        }
        out.push_str(&format!(
            "  {}->{}: {} sends, {} delivered; drops {}/{}/{}; {} in transit\n",
            s.from.index(),
            s.to.index(),
            s.stats.sends,
            s.stats.delivered,
            s.stats.lost_full,
            s.stats.lost_in_transit,
            s.stats.lost_reorder,
            s.in_transit,
        ));
        shown += 1;
    }
    if shown == 0 {
        out.push_str("  (no link traffic)\n");
    }
    out
}

/// The transport's aggregate link counters, printed in every `live`
/// report so degradation (drop-on-full, in-transit loss, UDP reorder,
/// chaos drops) is visible without reading the trace.
fn link_counters_line(links: &snapstab_runtime::LinkStats) -> String {
    format!(
        "link counters: {} sends, {} enqueued, {} delivered; lost: {} full, \
         {} in transit, {} reorder\n",
        links.sends,
        links.enqueued,
        links.delivered,
        links.lost_full,
        links.lost_in_transit,
        links.lost_reorder,
    )
}

/// The chaos summary and recovery quantiles of a run's
/// [`ChaosReport`](snapstab_runtime::ChaosReport).
fn chaos_summary(mix: snapstab_runtime::ChaosMix, c: &snapstab_runtime::ChaosReport) -> String {
    let mut out = format!(
        "chaos ({} profile): {} burst(s) — {} corruption(s), {} crash(es), \
         {} partition(s), {} storm(s); {} message(s) destroyed; \
         {} supervisor intervention(s)\n",
        mix.as_str(),
        c.bursts_fired,
        c.corruptions,
        c.crashes,
        c.partitions,
        c.storms,
        c.chaos_drops,
        c.interventions.len(),
    );
    if let (Some(p50), Some(p99)) = (c.recovery_quantile(0.5), c.recovery_quantile(0.99)) {
        out.push_str(&format!(
            "recovery time (burst to next completion): p50 {:.2} / p99 {:.2} ms\n",
            p50.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3,
        ));
    }
    out
}

/// Resolves `--transport` to a backend object, or an exit-2 usage error
/// (matching the unknown-subcommand convention).
fn parse_transport<M: snapstab_net::Wire + Send + 'static>(
    name: &str,
) -> Result<Box<dyn snapstab_runtime::Transport<M>>, (String, i32)> {
    match name {
        "inmem" => Ok(Box::new(snapstab_runtime::InMemory)),
        "udp" => Ok(Box::new(snapstab_net::UdpLoopback::new())),
        other => Err((
            format!(
                "unknown --transport `{other}`: valid values are {}\n\n{USAGE}",
                TRANSPORTS.join(", ")
            ),
            2,
        )),
    }
}

pub fn cmd_live(args: &Args) -> (String, i32) {
    use snapstab_runtime::{LiveConfig, MutexServiceConfig};
    match parse_app(&args.get_or("app", "mutex".to_string())) {
        Ok("forward") => return cmd_live_forward(args),
        Ok(_) => {}
        Err(err) => return err,
    }
    let LiveFlags {
        n,
        seed,
        loss,
        jitter_ms,
        requests,
        cs_duration,
        budget_secs,
        check,
        shards,
        batch,
        queue_depth,
        transport,
        runtime,
        workers,
    } = LiveFlags::parse(args);
    let mux = match parse_runtime(&runtime, workers) {
        Ok(m) => m,
        Err(err) => return err,
    };
    let chaos = match parse_chaos(args) {
        Ok(c) => c,
        Err(err) => return err,
    };
    let monitor = match parse_monitor(args, n) {
        Ok(m) => m,
        Err(err) => return err,
    };
    let metrics_out = match parse_metrics_out(args) {
        Ok(m) => m,
        Err(err) => return err,
    };
    // --queue-depth sizes per-shard client queues, so (like --shards and
    // --batch) it selects the sharded service — a 1-shard, batch-1
    // sharded run degenerates to the plain service, and the flag is
    // never silently ignored.
    if shards > 1 || batch > 1 || queue_depth > 0 {
        if chaos.is_some() {
            return (
                format!(
                    "--chaos is not supported with the sharded service \
                     (--shards/--batch/--queue-depth)\n\n{USAGE}"
                ),
                2,
            );
        }
        if monitor.is_some() {
            return (
                format!(
                    "--monitor is not supported with the sharded service \
                     (--shards/--batch/--queue-depth)\n\n{USAGE}"
                ),
                2,
            );
        }
        if mux {
            return (
                format!(
                    "--runtime mux is not supported with the sharded service \
                     (--shards/--batch/--queue-depth)\n\n{USAGE}"
                ),
                2,
            );
        }
        return cmd_live_sharded(args);
    }
    if let Some(mon) = monitor {
        let mux_workers = mux.then_some(workers);
        return cmd_live_monitored_mutex(args, &mon, chaos, mux_workers, metrics_out);
    }
    let backend = match parse_transport::<snapstab_core::me::MeMsg>(&transport) {
        Ok(b) => b,
        Err(err) => return err,
    };

    let cfg = MutexServiceConfig {
        n,
        requests_per_process: requests,
        cs_duration,
        live: LiveConfig {
            loss,
            seed,
            jitter: jitter(jitter_ms),
            // --chaos implies recording: the epoch verdicts need the
            // merged trace.
            record_trace: check || chaos.is_some(),
            ..LiveConfig::default()
        },
        time_budget: std::time::Duration::from_secs(budget_secs),
    };
    let runtime_desc = if mux {
        format!("n={n} instances on {workers} mux worker(s)")
    } else {
        format!("n={n} worker threads")
    };
    let mut out = format!(
        "Live mutex service: {runtime_desc} ({transport} transport), \
         loss={loss}, {requests} request(s) per process, budget {budget_secs}s\n"
    );
    let plan = chaos.map(|mix| snapstab_runtime::ChaosPlan::profile(mix, seed));
    let (report, chaos_report) = match (&plan, mux) {
        (Some(p), false) => {
            match snapstab_runtime::run_mutex_service_chaos_on(&cfg, backend.as_ref(), p) {
                Ok((report, c)) => (report, Some(c)),
                Err(e) => return (format!("{out}transport setup failed: {e}\n"), 1),
            }
        }
        (Some(p), true) => {
            match snapstab_runtime::run_mutex_service_chaos_mux_on(
                &cfg,
                workers,
                backend.as_ref(),
                p,
            ) {
                Ok((report, c)) => (report, Some(c)),
                Err(e) => return (format!("{out}transport setup failed: {e}\n"), 1),
            }
        }
        (None, false) => match snapstab_runtime::run_mutex_service_on(&cfg, backend.as_ref()) {
            Ok(report) => (report, None),
            Err(e) => return (format!("{out}transport setup failed: {e}\n"), 1),
        },
        (None, true) => {
            match snapstab_runtime::run_mutex_service_mux_on(&cfg, workers, backend.as_ref()) {
                Ok(report) => (report, None),
                Err(e) => return (format!("{out}transport setup failed: {e}\n"), 1),
            }
        }
    };
    // Compare against the *requested* total, not `report.injected`: the
    // drivers inject lazily, so a budget-capped run has injected ≈ served
    // and would otherwise read (and exit) as complete.
    let total = requests * n as u64;
    out.push_str(&format!(
        "served {}/{} requests in {:.2}s: {:.0} req/s, {:.0} CS/s, {:.0} msgs/s\n",
        report.served,
        total,
        report.wall.as_secs_f64(),
        report.requests_per_sec(),
        report.cs_per_sec(),
        report.msgs_per_sec(),
    ));
    out.push_str(&link_counters_line(&report.stats.links));
    out.push_str(&per_link_table(&report.link_samples));
    if let (Some(mix), Some(c)) = (chaos, &chaos_report) {
        out.push_str(&chaos_summary(mix, c));
    }
    if let Some((min, mean, max)) = report.latency_min_mean_max() {
        out.push_str(&format!(
            "service latency: min {:.2} / mean {:.2} / max {:.2} ms\n",
            min.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
            max.as_secs_f64() * 1e3,
        ));
    }
    let mut failed = report.served < total;
    if let Some(trace) = &report.trace {
        if let Some(c) = &chaos_report {
            let epochs = snapstab_core::spec::analyze_me_epochs(trace, n, &c.fault_steps);
            out.push_str(&format!(
                "spec 3 per epoch: {} epoch(s), {} served, {} interrupted at \
                 fault boundaries, {} forged fault mark(s); holds: {}\n",
                epochs.epochs_checked(),
                epochs.served_total(),
                epochs.interrupted_total(),
                epochs.forged_marks.len(),
                epochs.holds(),
            ));
            failed |= !epochs.holds();
        } else {
            let spec = analyze_me_trace(trace, n);
            out.push_str(&format!(
                "spec 3 on the merged live trace: genuine CS overlaps: {}; \
                 spurious: {}; exclusivity holds: {}\n",
                spec.genuine_overlaps.len(),
                spec.spurious_overlaps.len(),
                spec.exclusivity_holds(),
            ));
            failed |= !spec.exclusivity_holds();
        }
    }
    if args.has("trace") {
        for (i, lat) in report.latencies.iter().take(20).enumerate() {
            out.push_str(&format!(
                "  request {i}: {:.2} ms\n",
                lat.as_secs_f64() * 1e3
            ));
        }
    }
    (out, i32::from(failed))
}

/// Renders the streamed per-cut summary lines (bounded) into the report.
fn cut_summary_lines(out: &mut String, cut_lines: &[String]) {
    const SHOWN: usize = 20;
    for line in cut_lines.iter().take(SHOWN) {
        out.push_str(line);
    }
    if cut_lines.len() > SHOWN {
        out.push_str(&format!(
            "  ... {} more cut(s) elided\n",
            cut_lines.len() - SHOWN
        ));
    }
}

/// The Specification 5 verdict line for a monitored run's merged trace.
fn spec5_line(spec: &snapstab_core::spec::SnapshotReport) -> String {
    format!(
        "spec 5 on the merged trace: {} cut(s) decided ({} clean, {} \
         interrupted at faults), {} refused, {} pending; fabricated: {}, \
         torn: {}, crashed values: {}, causal violations: {}; holds: {}\n",
        spec.cuts_decided(),
        spec.clean_cuts(),
        spec.interrupted_total(),
        spec.refused.len(),
        spec.pending.len(),
        spec.fabricated.len(),
        spec.torn.len(),
        spec.crashed_values.len(),
        spec.causal_violations.len(),
        spec.holds(),
    )
}

/// The final machine-readable metrics block of a monitored run — the
/// same schema-stable summary line the telemetry stream ends with
/// (`snapstab_runtime::summary_json_line`), so the ad-hoc CLI block and
/// `--metrics-out` cannot drift apart.
fn monitor_metrics_json(
    mon: &snapstab_runtime::MonitorConfig,
    m: &snapstab_runtime::MonitorReport,
    work_per_sec: f64,
) -> String {
    format!(
        "monitor metrics: {}\n",
        snapstab_runtime::summary_json_line(mon.interval, m, work_per_sec)
    )
}

/// Renders the alerts a monitored run raised (bounded), matching the
/// `alert:` marks recorded in the merged trace.
fn alert_lines(out: &mut String, alerts: &[snapstab_runtime::Alert]) {
    if alerts.is_empty() {
        return;
    }
    const SHOWN: usize = 10;
    out.push_str(&format!("alerts: {} raised\n", alerts.len()));
    for a in alerts.iter().take(SHOWN) {
        out.push_str(&format!("  {}\n", a.mark()));
    }
    if alerts.len() > SHOWN {
        out.push_str(&format!(
            "  ... {} more alert(s) elided\n",
            alerts.len() - SHOWN
        ));
    }
}

/// Describes the runtime a monitored service runs on (header line).
fn monitored_runtime_desc(n: usize, mux_workers: Option<usize>) -> String {
    match mux_workers {
        Some(w) => format!("n={n} instances on {w} mux worker(s)"),
        None => format!("n={n} worker threads"),
    }
}

/// The monitored variant of the mutex `live` subcommand (`--monitor`):
/// the mutual-exclusion service composed with a snap-stabilizing
/// snapshot monitor on the same transport. Streams one summary line per
/// decided cut, appends a JSON metrics block, and — when the trace is
/// recorded — judges the cuts by Specification 5 and the projected
/// service trace by Specification 3 (per fault epoch under `--chaos`).
fn cmd_live_monitored_mutex(
    args: &Args,
    mon: &snapstab_runtime::MonitorConfig,
    chaos: Option<snapstab_runtime::ChaosMix>,
    mux_workers: Option<usize>,
    metrics_out: Option<MetricsOut>,
) -> (String, i32) {
    use snapstab_core::spec::analyze_snapshot_trace;
    use snapstab_runtime::{LiveConfig, MonitoredMsg, MutexServiceConfig};
    let LiveFlags {
        n,
        seed,
        loss,
        jitter_ms,
        requests,
        cs_duration,
        budget_secs,
        check,
        transport,
        ..
    } = LiveFlags::parse(args);
    let backend = match parse_transport::<MonitoredMsg<snapstab_core::me::MeMsg>>(&transport) {
        Ok(b) => b,
        Err(err) => return err,
    };
    let cfg = MutexServiceConfig {
        n,
        requests_per_process: requests,
        cs_duration,
        live: LiveConfig {
            loss,
            seed,
            jitter: jitter(jitter_ms),
            record_trace: check || chaos.is_some(),
            ..LiveConfig::default()
        },
        time_budget: std::time::Duration::from_secs(budget_secs),
    };
    let mut out = format!(
        "Live monitored mutex service: {} ({transport} transport), \
         loss={loss}, {requests} request(s) per process, {} initiator(s), \
         cut interval {}ms, budget {budget_secs}s\n",
        monitored_runtime_desc(n, mux_workers),
        mon.initiators,
        mon.interval.as_millis(),
    );
    let plan = chaos.map(|mix| snapstab_runtime::ChaosPlan::profile(mix, seed));
    let mut cut_lines: Vec<String> = Vec::new();
    let mut series = snapstab_runtime::Series::default();
    let mut metrics_lines: Vec<String> = Vec::new();
    let mut on_cut = |cut: &snapstab_runtime::LiveCut| {
        cut_lines.push(format!(
            "  cut #{} (initiator {}) @step {}: served {}, queued {}, \
             {} in transit, staleness {:.2} ms\n",
            cut.cut,
            cut.initiator.index(),
            cut.step,
            cut.served_total(),
            cut.queue_total(),
            cut.in_transit_total(),
            cut.staleness.as_secs_f64() * 1e3,
        ));
        metrics_lines.push(series.observe(cut).json_line());
    };
    let run = match mux_workers {
        Some(workers) => snapstab_runtime::run_monitored_mutex_service_mux_with(
            &cfg,
            mon,
            workers,
            backend.as_ref(),
            plan.as_ref(),
            Some(&mut on_cut),
        ),
        None => snapstab_runtime::run_monitored_mutex_service_with(
            &cfg,
            mon,
            backend.as_ref(),
            plan.as_ref(),
            Some(&mut on_cut),
        ),
    };
    let (report, chaos_report) = match run {
        Ok(r) => r,
        Err(e) => return (format!("{out}transport setup failed: {e}\n"), 1),
    };
    let total = requests * n as u64;
    out.push_str(&format!(
        "served {}/{} requests in {:.2}s: {:.0} req/s; {} cut(s) decided \
         ({:.1} cuts/s), {} refused\n",
        report.served,
        total,
        report.wall.as_secs_f64(),
        report.requests_per_sec(),
        report.monitor.cuts.len(),
        report.monitor.cuts_per_sec(),
        report.monitor.refused,
    ));
    cut_summary_lines(&mut out, &cut_lines);
    if mon.initiators > 1 {
        for s in report.monitor.per_initiator() {
            out.push_str(&format!(
                "  initiator {}: {} cut(s) ({:.1} cuts/s), {} refused\n",
                s.initiator.index(),
                s.cuts,
                report.monitor.cuts_per_sec_of(s.initiator),
                s.refused,
            ));
        }
    }
    alert_lines(&mut out, &report.monitor.alerts);
    out.push_str(&link_counters_line(&report.stats.links));
    out.push_str(&per_link_table(&report.link_samples));
    if let (Some(mix), Some(c)) = (chaos, &chaos_report) {
        out.push_str(&chaos_summary(mix, c));
    }
    if let Some([p50, p99]) = report
        .latency_quantiles(&[0.5, 0.99])
        .map(|v| <[_; 2]>::try_from(v).expect("two quantiles"))
    {
        out.push_str(&format!(
            "service latency: p50 {:.2} / p99 {:.2} ms\n",
            p50.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3,
        ));
    }
    let mut failed = report.served < total;
    if let Some(trace) = &report.trace {
        let faults: Vec<u64> = chaos_report
            .as_ref()
            .map(|c| c.fault_steps.clone())
            .unwrap_or_default();
        let spec5 = analyze_snapshot_trace(trace, n, &faults);
        out.push_str(&spec5_line(&spec5));
        failed |= !spec5.holds();
        let service = snapstab_runtime::project_service_trace(trace);
        if let Some(c) = &chaos_report {
            let epochs = snapstab_core::spec::analyze_me_epochs(&service, n, &c.fault_steps);
            out.push_str(&format!(
                "spec 3 per epoch (projected service trace): {} epoch(s), \
                 {} served, {} interrupted; holds: {}\n",
                epochs.epochs_checked(),
                epochs.served_total(),
                epochs.interrupted_total(),
                epochs.holds(),
            ));
            failed |= !epochs.holds();
        } else {
            let spec = analyze_me_trace(&service, n);
            out.push_str(&format!(
                "spec 3 on the projected service trace: genuine CS overlaps: \
                 {}; exclusivity holds: {}\n",
                spec.genuine_overlaps.len(),
                spec.exclusivity_holds(),
            ));
            failed |= !spec.exclusivity_holds();
        }
    }
    if let Some(target) = &metrics_out {
        for a in &report.monitor.alerts {
            metrics_lines.push(a.json_line());
        }
        metrics_lines.push(snapstab_runtime::summary_json_line(
            mon.interval,
            &report.monitor,
            report.requests_per_sec(),
        ));
        failed |= deliver_metrics(&mut out, target, &metrics_lines).is_some();
    }
    out.push_str(&monitor_metrics_json(
        mon,
        &report.monitor,
        report.requests_per_sec(),
    ));
    (out, i32::from(failed))
}

/// The monitored variant of the forwarding `live` subcommand
/// (`--app forward --monitor`), mirroring [`cmd_live_monitored_mutex`]
/// with Specification 4 judging the projected service trace.
fn cmd_live_monitored_forward(
    args: &Args,
    mon: &snapstab_runtime::MonitorConfig,
    chaos: Option<snapstab_runtime::ChaosMix>,
    mux_workers: Option<usize>,
    metrics_out: Option<MetricsOut>,
) -> (String, i32) {
    use snapstab_core::spec::analyze_snapshot_trace;
    use snapstab_runtime::{ForwardingServiceConfig, LiveConfig, MonitoredMsg};
    let LiveFlags {
        n,
        seed,
        loss,
        jitter_ms,
        requests: payloads,
        budget_secs,
        check,
        transport,
        ..
    } = LiveFlags::parse(args);
    let buffer_cap: usize = args.get_or("buffer", 4);
    if buffer_cap == 0 {
        return (
            format!("invalid --buffer 0: lanes need at least one slot\n\n{USAGE}"),
            2,
        );
    }
    let stale = args.has("stale");
    let backend =
        match parse_transport::<MonitoredMsg<snapstab_core::forward::ForwardMsg>>(&transport) {
            Ok(b) => b,
            Err(err) => return err,
        };
    let cfg = ForwardingServiceConfig {
        n,
        payloads_per_process: payloads,
        buffer_cap,
        prefill_stale: stale,
        live: LiveConfig {
            loss,
            seed,
            jitter: jitter(jitter_ms),
            record_trace: check || chaos.is_some(),
            ..LiveConfig::default()
        },
        time_budget: std::time::Duration::from_secs(budget_secs),
    };
    let mut out = format!(
        "Live monitored forwarding service: {} ({transport} \
         transport), loss={loss}, {payloads} payload(s) per process, {} \
         initiator(s), cut interval {}ms, budget {budget_secs}s\n",
        monitored_runtime_desc(n, mux_workers),
        mon.initiators,
        mon.interval.as_millis(),
    );
    let plan = chaos.map(|mix| snapstab_runtime::ChaosPlan::profile(mix, seed));
    let mut cut_lines: Vec<String> = Vec::new();
    let mut series = snapstab_runtime::Series::default();
    let mut metrics_lines: Vec<String> = Vec::new();
    let mut on_cut = |cut: &snapstab_runtime::LiveCut| {
        cut_lines.push(format!(
            "  cut #{} (initiator {}) @step {}: collected {}, queued {}, \
             buffered {}, {} in transit, staleness {:.2} ms\n",
            cut.cut,
            cut.initiator.index(),
            cut.step,
            cut.served_total(),
            cut.queue_total(),
            cut.values
                .iter()
                .map(|v| u64::from(v.in_flight))
                .sum::<u64>(),
            cut.in_transit_total(),
            cut.staleness.as_secs_f64() * 1e3,
        ));
        metrics_lines.push(series.observe(cut).json_line());
    };
    let run = match mux_workers {
        Some(workers) => snapstab_runtime::run_monitored_forwarding_service_mux_with(
            &cfg,
            mon,
            workers,
            backend.as_ref(),
            plan.as_ref(),
            Some(&mut on_cut),
        ),
        None => snapstab_runtime::run_monitored_forwarding_service_with(
            &cfg,
            mon,
            backend.as_ref(),
            plan.as_ref(),
            Some(&mut on_cut),
        ),
    };
    let (report, chaos_report) = match run {
        Ok(r) => r,
        Err(e) => return (format!("{out}transport setup failed: {e}\n"), 1),
    };
    let total = payloads * n as u64;
    out.push_str(&format!(
        "delivered {}/{} payloads in {:.2}s: {:.0} payloads/s, {} spurious \
         stale flush(es); {} cut(s) decided ({:.1} cuts/s), {} refused\n",
        report.delivered,
        total,
        report.wall.as_secs_f64(),
        report.payloads_per_sec(),
        report.spurious,
        report.monitor.cuts.len(),
        report.monitor.cuts_per_sec(),
        report.monitor.refused,
    ));
    cut_summary_lines(&mut out, &cut_lines);
    if mon.initiators > 1 {
        for s in report.monitor.per_initiator() {
            out.push_str(&format!(
                "  initiator {}: {} cut(s) ({:.1} cuts/s), {} refused\n",
                s.initiator.index(),
                s.cuts,
                report.monitor.cuts_per_sec_of(s.initiator),
                s.refused,
            ));
        }
    }
    alert_lines(&mut out, &report.monitor.alerts);
    out.push_str(&link_counters_line(&report.stats.links));
    out.push_str(&per_link_table(&report.link_samples));
    if let (Some(mix), Some(c)) = (chaos, &chaos_report) {
        out.push_str(&chaos_summary(mix, c));
    }
    // Chaos may destroy in-flight payloads; the epoch verdict is then the
    // pass/fail signal (matching the unmonitored forwarding path).
    let mut failed = chaos_report.is_none() && report.delivered < total;
    if let Some(trace) = &report.trace {
        let faults: Vec<u64> = chaos_report
            .as_ref()
            .map(|c| c.fault_steps.clone())
            .unwrap_or_default();
        let spec5 = analyze_snapshot_trace(trace, n, &faults);
        out.push_str(&spec5_line(&spec5));
        failed |= !spec5.holds();
        let service = snapstab_runtime::project_service_trace(trace);
        if let Some(c) = &chaos_report {
            let epochs =
                snapstab_core::spec::analyze_forwarding_epochs(&service, n, &c.fault_steps);
            out.push_str(&format!(
                "spec 4 per epoch (projected service trace): {} epoch(s), \
                 {} delivered, {} interrupted; holds: {}\n",
                epochs.epochs_checked(),
                epochs.delivered_total(),
                epochs.interrupted_total(),
                epochs.holds(),
            ));
            failed |= !epochs.holds();
        } else {
            let spec = snapstab_core::spec::analyze_forwarding_trace(&service, n);
            out.push_str(&format!(
                "spec 4 on the projected service trace: lost: {}; duplicated \
                 ids: {}; corrupt deliveries: {}; holds: {}\n",
                spec.lost.len(),
                spec.duplicate_ids.len(),
                spec.corrupt_deliveries.len(),
                spec.holds(),
            ));
            failed |= !spec.holds();
        }
    }
    if let Some(target) = &metrics_out {
        for a in &report.monitor.alerts {
            metrics_lines.push(a.json_line());
        }
        metrics_lines.push(snapstab_runtime::summary_json_line(
            mon.interval,
            &report.monitor,
            report.payloads_per_sec(),
        ));
        failed |= deliver_metrics(&mut out, target, &metrics_lines).is_some();
    }
    out.push_str(&monitor_metrics_json(
        mon,
        &report.monitor,
        report.payloads_per_sec(),
    ));
    (out, i32::from(failed))
}

/// The sharded variant of the `live` subcommand: S independent leaders
/// over hash-partitioned resource keys, batched grants, grant-log audit —
/// and, under `--check`, per-shard Specification 3 on the merged trace.
fn cmd_live_sharded(args: &Args) -> (String, i32) {
    use snapstab_core::shard::project_shard_trace;
    use snapstab_runtime::{LiveConfig, ShardedServiceConfig};
    let LiveFlags {
        n,
        seed,
        loss,
        jitter_ms,
        requests,
        cs_duration,
        budget_secs,
        check,
        shards,
        batch,
        queue_depth,
        transport,
        ..
    } = LiveFlags::parse(args);
    let key_space: u64 = args.get_or("key-space", 1 << 16);
    let backend = match parse_transport::<snapstab_core::shard::ShardedMeMsg>(&transport) {
        Ok(b) => b,
        Err(err) => return err,
    };

    let cfg = ShardedServiceConfig {
        n,
        shards,
        batch,
        requests_per_process: requests,
        key_space,
        cs_duration,
        live: LiveConfig {
            loss,
            seed,
            jitter: jitter(jitter_ms),
            record_trace: check,
            ..LiveConfig::default()
        },
        time_budget: std::time::Duration::from_secs(budget_secs),
    };
    // --queue-depth D sizes the workload by target per-shard queue depth
    // instead of --requests.
    let cfg = if queue_depth > 0 {
        cfg.with_queue_depth(queue_depth)
    } else {
        cfg
    };
    let workload = if queue_depth > 0 {
        format!("queue depth {queue_depth} per shard")
    } else {
        format!("{requests} request(s) per process")
    };
    let mut out = format!(
        "Live sharded mutex service: n={n} worker threads ({transport} \
         transport), {shards} shard(s) (one leader each), batch≤{batch}, \
         loss={loss}, {workload}, budget {budget_secs}s\n"
    );
    let report = match snapstab_runtime::run_sharded_service_on(&cfg, backend.as_ref()) {
        Ok(report) => report,
        Err(e) => return (format!("{out}transport setup failed: {e}\n"), 1),
    };
    out.push_str(&format!(
        "served {}/{} requests in {:.2}s: {:.0} req/s over {} grants \
         ({:.0} grants/s, {:.2} requests per grant), {:.0} msgs/s\n",
        report.served,
        report.injected.len(),
        report.wall.as_secs_f64(),
        report.requests_per_sec(),
        report.grant_log.len(),
        report.grants_per_sec(),
        report.mean_batch(),
        report.msgs_per_sec(),
    ));
    out.push_str(&link_counters_line(&report.stats.links));
    for (s, served) in report.per_shard_served.iter().enumerate() {
        out.push_str(&format!("  shard {s}: {served} request(s) served\n"));
    }
    if let (Some((min, mean, max)), Some([p50, p99])) = (
        report.latency_min_mean_max(),
        report
            .latency_quantiles(&[0.5, 0.99])
            .map(|v| <[_; 2]>::try_from(v).expect("two quantiles")),
    ) {
        out.push_str(&format!(
            "service latency: min {:.2} / mean {:.2} / p50 {:.2} / p99 {:.2} / max {:.2} ms\n",
            min.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
            p50.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3,
            max.as_secs_f64() * 1e3,
        ));
    }
    let audit = report.audit();
    out.push_str(&format!(
        "grant-log audit: conflict-free batches: {}; routing respected: {}; \
         served exactly once: {}\n",
        audit.conflicting_grants.is_empty(),
        audit.misrouted_grants.is_empty(),
        audit.unserved_ids.is_empty()
            && audit.duplicate_ids.is_empty()
            && audit.unknown_ids.is_empty(),
    ));
    let mut failed = (report.served as usize) < report.injected.len() || !audit.holds();
    if let Some(trace) = &report.trace {
        for s in 0..shards {
            let spec = analyze_me_trace(&project_shard_trace(trace, s), n);
            out.push_str(&format!(
                "spec 3 on shard {s}'s projected trace: genuine CS overlaps: {}; \
                 exclusivity holds: {}\n",
                spec.genuine_overlaps.len(),
                spec.exclusivity_holds(),
            ));
            failed |= !spec.exclusivity_holds();
        }
    }
    (out, i32::from(failed))
}

/// The forwarding variant of the `live` subcommand
/// (`--app forward`): the snap-stabilizing message-forwarding service —
/// payload delivery under loss and (with `--stale`) adversarially
/// pre-filled buffers — judged, under `--check`, by executable
/// Specification 4 on the merged trace.
fn cmd_live_forward(args: &Args) -> (String, i32) {
    use snapstab_core::spec::analyze_forwarding_trace;
    use snapstab_runtime::{ForwardingServiceConfig, LiveConfig};
    // The shared flags come from the same parse as the mutex variants,
    // so their defaults cannot diverge; `--requests` doubles as the
    // per-process payload count.
    let LiveFlags {
        n,
        seed,
        loss,
        jitter_ms,
        requests: payloads,
        budget_secs,
        check,
        transport,
        runtime,
        workers,
        ..
    } = LiveFlags::parse(args);
    let mux = match parse_runtime(&runtime, workers) {
        Ok(m) => m,
        Err(err) => return err,
    };
    let buffer_cap: usize = args.get_or("buffer", 4);
    if buffer_cap == 0 {
        return (
            format!("invalid --buffer 0: lanes need at least one slot\n\n{USAGE}"),
            2,
        );
    }
    let stale = args.has("stale");
    let chaos = match parse_chaos(args) {
        Ok(c) => c,
        Err(err) => return err,
    };
    match parse_monitor(args, n) {
        Ok(Some(mon)) => {
            let metrics_out = match parse_metrics_out(args) {
                Ok(m) => m,
                Err(err) => return err,
            };
            let mux_workers = mux.then_some(workers);
            return cmd_live_monitored_forward(args, &mon, chaos, mux_workers, metrics_out);
        }
        Ok(None) => {}
        Err(err) => return err,
    }
    let backend = match parse_transport::<snapstab_core::forward::ForwardMsg>(&transport) {
        Ok(b) => b,
        Err(err) => return err,
    };

    let cfg = ForwardingServiceConfig {
        n,
        payloads_per_process: payloads,
        buffer_cap,
        prefill_stale: stale,
        live: LiveConfig {
            loss,
            seed,
            jitter: jitter(jitter_ms),
            // --chaos implies recording: the epoch verdicts need the
            // merged trace.
            record_trace: check || chaos.is_some(),
            ..LiveConfig::default()
        },
        time_budget: std::time::Duration::from_secs(budget_secs),
    };
    let runtime_desc = if mux {
        format!("n={n} instances on {workers} mux worker(s)")
    } else {
        format!("n={n} worker threads")
    };
    let mut out = format!(
        "Live forwarding service: {runtime_desc} ({transport} transport), \
         loss={loss}, {payloads} payload(s) per process, buffer cap {buffer_cap}\
         {}, budget {budget_secs}s\n",
        if stale {
            ", stale-pre-filled buffers"
        } else {
            ""
        }
    );
    let plan = chaos.map(|mix| snapstab_runtime::ChaosPlan::profile(mix, seed));
    let (report, chaos_report) = match (&plan, mux) {
        (Some(p), false) => {
            match snapstab_runtime::run_forwarding_service_chaos_on(&cfg, backend.as_ref(), p) {
                Ok((report, c)) => (report, Some(c)),
                Err(e) => return (format!("{out}transport setup failed: {e}\n"), 1),
            }
        }
        (Some(p), true) => match snapstab_runtime::run_forwarding_service_chaos_mux_on(
            &cfg,
            workers,
            backend.as_ref(),
            p,
        ) {
            Ok((report, c)) => (report, Some(c)),
            Err(e) => return (format!("{out}transport setup failed: {e}\n"), 1),
        },
        (None, false) => {
            match snapstab_runtime::run_forwarding_service_on(&cfg, backend.as_ref()) {
                Ok(report) => (report, None),
                Err(e) => return (format!("{out}transport setup failed: {e}\n"), 1),
            }
        }
        (None, true) => {
            match snapstab_runtime::run_forwarding_service_mux_on(&cfg, workers, backend.as_ref()) {
                Ok(report) => (report, None),
                Err(e) => return (format!("{out}transport setup failed: {e}\n"), 1),
            }
        }
    };
    let total = payloads * n as u64;
    out.push_str(&format!(
        "delivered {}/{} payloads in {:.2}s: {:.0} payloads/s, {:.0} msgs/s, \
         {} spurious stale flush(es)\n",
        report.delivered,
        total,
        report.wall.as_secs_f64(),
        report.payloads_per_sec(),
        report.msgs_per_sec(),
        report.spurious,
    ));
    out.push_str(&link_counters_line(&report.stats.links));
    out.push_str(&per_link_table(&report.link_samples));
    if let (Some(mix), Some(c)) = (chaos, &chaos_report) {
        out.push_str(&chaos_summary(mix, c));
    }
    if let Some((min, mean, max)) = report.latency_min_mean_max() {
        out.push_str(&format!(
            "end-to-end latency: min {:.2} / mean {:.2} / max {:.2} ms\n",
            min.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
            max.as_secs_f64() * 1e3,
        ));
    }
    // Under chaos, state corruption may destroy payloads in flight
    // through protocol buffers; the epoch verdict (which classifies them
    // as interrupted at a fault boundary) is the pass/fail signal, not
    // the raw delivery count.
    let mut failed = chaos_report.is_none() && report.delivered < total;
    if let Some(trace) = &report.trace {
        if let Some(c) = &chaos_report {
            let epochs = snapstab_core::spec::analyze_forwarding_epochs(trace, n, &c.fault_steps);
            out.push_str(&format!(
                "spec 4 per epoch: {} epoch(s), {} delivered, {} interrupted at \
                 fault boundaries, {} epoch-crossing, {} forged fault mark(s); \
                 holds: {}\n",
                epochs.epochs_checked(),
                epochs.delivered_total(),
                epochs.interrupted_total(),
                epochs.crossing.len(),
                epochs.forged_marks.len(),
                epochs.holds(),
            ));
            failed |= !epochs.holds();
        } else {
            let spec = analyze_forwarding_trace(trace, n);
            out.push_str(&format!(
                "spec 4 on the merged live trace: lost: {}; duplicated ids: {}; \
                 corrupt deliveries: {}; spurious: {}; holds: {}\n",
                spec.lost.len(),
                spec.duplicate_ids.len(),
                spec.corrupt_deliveries.len(),
                spec.spurious,
                spec.holds(),
            ));
            failed |= !spec.holds();
        }
    }
    if args.has("trace") {
        for (i, lat) in report.latencies.iter().take(20).enumerate() {
            out.push_str(&format!(
                "  payload {i}: {:.2} ms\n",
                lat.as_secs_f64() * 1e3
            ));
        }
    }
    (out, i32::from(failed))
}

/// Runs the `impossibility` subcommand; returns the report text.
pub fn cmd_impossibility(args: &Args) -> String {
    let n: usize = args.get_or("n", 3);
    let seed: u64 = args.get_or("seed", 0xD0);
    let cs_duration: u64 = args.get_or("cs-duration", 8);
    let demo = DoubleWinDemo {
        n,
        a: ProcessId::new(1),
        b: ProcessId::new(2),
        cs_duration,
        seed,
        max_steps: 4_000_000,
    };
    let outcome = demo.run(&[1, 2, 4, 8, 16]).expect("demo runs");
    let mut out = format!(
        "Theorem 1 construction: n={n}, cs_duration={cs_duration}, seed={seed}\n\
         gamma_0 needs up to {} messages per channel ({} total, sent by nobody)\n",
        outcome.max_channel_load, outcome.total_preloaded
    );
    for (cap, feasible) in &outcome.feasibility {
        match cap {
            Some(c) => out.push_str(&format!(
                "  capacity {c:>2}: gamma_0 {}\n",
                if *feasible {
                    "exists"
                } else {
                    "does NOT exist"
                }
            )),
            None => out.push_str(&format!(
                "  unbounded  : gamma_0 {}\n",
                if *feasible {
                    "exists"
                } else {
                    "does NOT exist"
                }
            )),
        }
    }
    out.push_str(&format!(
        "replay on unbounded channels: bad factor reached = {} (step {:?}), \
         genuine CS overlaps = {}\n",
        outcome.replay.violated(),
        outcome.replay.bad_factor_step,
        outcome.report.genuine_overlaps.len(),
    ));
    out
}

/// Dispatches a parsed command line; returns the report text and the
/// process exit code (non-zero for an unknown subcommand, so scripts and
/// CI notice typos instead of silently getting the usage text).
pub fn dispatch(args: &Args) -> (String, i32) {
    if args.has("help") {
        return (USAGE.to_string(), 0);
    }
    match args.command.as_deref() {
        Some("idl") => (cmd_idl(args), 0),
        Some("me") => (cmd_me(args), 0),
        Some("live") => cmd_live(args),
        Some("impossibility") => (cmd_impossibility(args), 0),
        Some("help") | Some("-h") | None => (USAGE.to_string(), 0),
        Some(other) => (format!("unknown command `{other}`\n\n{USAGE}"), 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn idl_reports_success() {
        let out = cmd_idl(&parse("idl --n 3 --seed 5"));
        assert!(out.contains("spec holds: true"), "{out}");
    }

    #[test]
    fn idl_corrupted_still_succeeds() {
        let out = cmd_idl(&parse("idl --n 3 --seed 6 --corrupt --loss 0.2"));
        assert!(out.contains("spec holds: true"), "{out}");
    }

    #[test]
    fn me_serves_and_stays_exclusive() {
        let out = cmd_me(&parse("me --n 3 --steps 80000 --requests 1 --corrupt"));
        assert!(out.contains("genuine CS overlaps: 0"), "{out}");
    }

    #[test]
    fn impossibility_reports_dichotomy() {
        let out = cmd_impossibility(&parse("impossibility --n 3"));
        assert!(out.contains("bad factor reached = true"), "{out}");
        assert!(out.contains("does NOT exist"), "{out}");
    }

    #[test]
    fn live_serves_and_reports_throughput() {
        let (out, code) = cmd_live(&parse("live --n 3 --requests 2 --check --budget-secs 40"));
        assert!(out.contains("served 6/6"), "{out}");
        assert!(out.contains("exclusivity holds: true"), "{out}");
        assert_eq!(code, 0, "healthy run exits 0");
    }

    #[test]
    fn live_sharded_serves_audits_and_exits_zero() {
        let (out, code) = cmd_live(&parse(
            "live --n 3 --shards 2 --batch 2 --requests 4 --key-space 4 --check --budget-secs 40",
        ));
        assert!(out.contains("2 shard(s)"), "{out}");
        assert!(out.contains("served 12/12"), "{out}");
        assert!(out.contains("conflict-free batches: true"), "{out}");
        assert!(out.contains("spec 3 on shard 1"), "{out}");
        assert!(!out.contains("exclusivity holds: false"), "{out}");
        assert_eq!(code, 0, "healthy sharded run exits 0:\n{out}");
    }

    #[test]
    fn live_batch_flag_alone_selects_sharded_path() {
        let (out, code) = cmd_live(&parse("live --n 3 --batch 3 --requests 3 --budget-secs 40"));
        assert!(out.contains("1 shard(s)"), "{out}");
        assert!(out.contains("batch≤3"), "{out}");
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn live_unknown_transport_exits_2_and_lists_valid_set() {
        let (out, code) = cmd_live(&parse("live --n 3 --transport carrier-pigeon"));
        assert_eq!(code, 2, "usage errors exit 2:\n{out}");
        assert!(
            out.contains("unknown --transport `carrier-pigeon`"),
            "{out}"
        );
        assert!(out.contains("valid values are inmem, udp"), "{out}");
        assert!(out.contains("USAGE"), "{out}");
        // The sharded path applies the same validation.
        let (out, code) = cmd_live(&parse("live --n 3 --shards 2 --transport tcp"));
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("valid values are inmem, udp"), "{out}");
    }

    #[test]
    fn live_unknown_runtime_exits_2_and_lists_valid_set() {
        let (out, code) = cmd_live(&parse("live --n 3 --runtime fibers"));
        assert_eq!(code, 2, "usage errors exit 2:\n{out}");
        assert!(out.contains("unknown --runtime `fibers`"), "{out}");
        assert!(out.contains("valid values are threads, mux"), "{out}");
        assert!(out.contains("USAGE"), "{out}");
        // The forwarding app applies the same validation.
        let (out, code) = cmd_live(&parse("live --app forward --n 3 --runtime fibers"));
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("unknown --runtime `fibers`"), "{out}");
    }

    #[test]
    fn live_mux_runtime_serves_and_checks() {
        let (out, code) = cmd_live(&parse(
            "live --n 4 --runtime mux --workers 2 --requests 2 --check --budget-secs 40",
        ));
        assert!(out.contains("n=4 instances on 2 mux worker(s)"), "{out}");
        assert!(out.contains("served 8/8"), "{out}");
        assert!(out.contains("exclusivity holds: true"), "{out}");
        assert_eq!(code, 0, "healthy mux run exits 0:\n{out}");
    }

    #[test]
    fn live_mux_forward_delivers_and_checks_spec4() {
        let (out, code) = cmd_live(&parse(
            "live --app forward --n 3 --runtime mux --workers 2 --requests 2 \
             --check --budget-secs 40",
        ));
        assert!(out.contains("n=3 instances on 2 mux worker(s)"), "{out}");
        assert!(out.contains("delivered 6/6"), "{out}");
        assert!(out.contains("holds: true"), "{out}");
        assert_eq!(code, 0, "healthy mux forwarding run exits 0:\n{out}");
    }

    #[test]
    fn live_mux_rejects_sharded_and_zero_workers() {
        let (out, code) = cmd_live(&parse("live --n 3 --runtime mux --shards 2"));
        assert_eq!(code, 2, "usage errors exit 2:\n{out}");
        assert!(out.contains("--runtime mux is not supported"), "{out}");
        let (out, code) = cmd_live(&parse("live --n 3 --runtime mux --workers 0"));
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("invalid --workers 0"), "{out}");
    }

    #[test]
    fn live_monitored_mux_serves_cuts_and_checks_spec5() {
        let (out, code) = cmd_live(&parse(
            "live --n 4 --runtime mux --workers 2 --requests 2 --monitor \
             --monitor-interval 5 --check --budget-secs 40",
        ));
        assert!(out.contains("mux worker(s)"), "{out}");
        assert!(out.contains("served 8/8"), "{out}");
        assert!(out.contains("spec 5 on the merged trace"), "{out}");
        assert!(out.contains("fabricated: 0"), "{out}");
        assert!(out.contains("holds: true"), "{out}");
        assert_eq!(code, 0, "healthy monitored mux run exits 0:\n{out}");
    }

    #[test]
    fn live_multi_initiator_attributes_cuts_per_ledger() {
        let (out, code) = cmd_live(&parse(
            "live --n 4 --runtime mux --workers 2 --requests 2 --initiators 2 \
             --monitor-interval 5 --check --budget-secs 40",
        ));
        assert!(out.contains("2 initiator(s)"), "{out}");
        assert!(out.contains("initiator 0:"), "{out}");
        assert!(out.contains("initiator 1:"), "{out}");
        assert!(out.contains("holds: true"), "{out}");
        assert_eq!(code, 0, "{out}");
    }

    /// The acceptance demo: a seeded corruption-chaos run whose
    /// refusal-streak alert fires, lands as an `alert:` mark in the
    /// merged trace (where `--check` judges Spec 5 around it), and is
    /// surfaced in the report. `--jitter` stretches every wave past the
    /// 1 ms cut schedule so the seeded bursts meet waves in flight;
    /// threshold 1 keeps the demo robust to scheduler timing (the
    /// refusals are seeded, their adjacency is not).
    #[test]
    fn live_chaos_refusal_streak_alert_fires_and_is_surfaced() {
        let (out, code) = cmd_live(&parse(
            "live --n 3 --requests 30 --loss 0.3 --jitter 2 --runtime mux \
             --workers 2 --monitor-interval 1 --alert-refusal-streak 1 \
             --chaos corrupt --seed 131 --check --budget-secs 60",
        ));
        assert!(out.contains("alerts:"), "{out}");
        assert!(out.contains("alert:refusal-streak initiator=0"), "{out}");
        assert!(out.contains("spec 5 on the merged trace"), "{out}");
        assert!(out.contains("holds: true"), "{out}");
        assert_eq!(code, 0, "alerting must not fail the run:\n{out}");
    }

    #[test]
    fn live_invalid_alert_refusal_streak_exits_2_and_lists_valid_form() {
        for bad in ["0", "many"] {
            let (out, code) = cmd_live(&parse(&format!("live --n 3 --alert-refusal-streak {bad}")));
            assert_eq!(code, 2, "usage errors exit 2:\n{out}");
            assert!(
                out.contains(&format!("invalid --alert-refusal-streak `{bad}`")),
                "{out}"
            );
            assert!(out.contains("positive integers"), "{out}");
            assert!(out.contains("USAGE"), "{out}");
        }
        let (out, code) = cmd_live(&parse("live --n 3 --alert-refusal-streak --check"));
        assert_eq!(code, 2, "{out}");
        assert!(
            out.contains("missing --alert-refusal-streak threshold"),
            "{out}"
        );
    }

    #[test]
    fn live_invalid_initiators_exits_2_and_lists_valid_form() {
        for bad in ["0", "nope", "9"] {
            let (out, code) = cmd_live(&parse(&format!("live --n 3 --initiators {bad}")));
            assert_eq!(code, 2, "usage errors exit 2:\n{out}");
            assert!(
                out.contains(&format!("invalid --initiators `{bad}`")),
                "{out}"
            );
            assert!(out.contains("valid values are integers in 1..=n"), "{out}");
            assert!(out.contains("USAGE"), "{out}");
        }
        let (out, code) = cmd_live(&parse("live --n 3 --initiators --check"));
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("missing --initiators count"), "{out}");
    }

    #[test]
    fn live_metrics_out_inline_streams_schema_stable_lines() {
        let (out, code) = cmd_live(&parse(
            "live --n 3 --requests 2 --monitor-interval 5 --metrics-out - \
             --budget-secs 40",
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("{\"type\":\"cut\",\"initiator\":"), "{out}");
        assert!(
            out.contains("{\"type\":\"summary\",\"interval_ms\":5"),
            "{out}"
        );
    }

    #[test]
    fn live_metrics_out_bare_flag_exits_2() {
        let (out, code) = cmd_live(&parse("live --n 3 --metrics-out --check"));
        assert_eq!(code, 2, "usage errors exit 2:\n{out}");
        assert!(out.contains("missing --metrics-out target"), "{out}");
        assert!(out.contains("USAGE"), "{out}");
    }

    #[test]
    fn live_metrics_out_writes_file() {
        let dir = std::env::temp_dir().join(format!("snapstab-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("metrics.jsonl");
        let (out, code) = cmd_live(&parse(&format!(
            "live --n 3 --requests 2 --monitor-interval 5 --metrics-out {} \
             --budget-secs 40",
            path.display()
        )));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("telemetry:"), "{out}");
        let body = std::fs::read_to_string(&path).expect("metrics file written");
        assert!(body.contains("{\"type\":\"cut\""), "{body}");
        assert!(body
            .lines()
            .last()
            .unwrap()
            .starts_with("{\"type\":\"summary\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_unknown_app_exits_2_and_lists_valid_set() {
        let (out, code) = cmd_live(&parse("live --n 3 --app carrier-pigeon"));
        assert_eq!(code, 2, "usage errors exit 2:\n{out}");
        assert!(out.contains("unknown --app `carrier-pigeon`"), "{out}");
        assert!(out.contains("valid values are mutex, forward"), "{out}");
        assert!(out.contains("USAGE"), "{out}");
    }

    #[test]
    fn live_forward_delivers_and_checks_spec4() {
        let (out, code) = cmd_live(&parse(
            "live --app forward --n 3 --requests 2 --stale --check --budget-secs 40",
        ));
        assert!(out.contains("Live forwarding service"), "{out}");
        assert!(out.contains("stale-pre-filled buffers"), "{out}");
        assert!(out.contains("delivered 6/6"), "{out}");
        assert!(out.contains("holds: true"), "{out}");
        assert_eq!(code, 0, "healthy forwarding run exits 0:\n{out}");
    }

    #[test]
    fn live_forward_zero_buffer_exits_2() {
        let (out, code) = cmd_live(&parse("live --app forward --n 3 --buffer 0"));
        assert_eq!(code, 2, "usage errors exit 2:\n{out}");
        assert!(out.contains("invalid --buffer 0"), "{out}");
        assert!(out.contains("USAGE"), "{out}");
    }

    #[test]
    fn live_forward_validates_transport_too() {
        let (out, code) = cmd_live(&parse("live --app forward --n 3 --transport tcp"));
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("valid values are inmem, udp"), "{out}");
    }

    #[test]
    fn live_forward_udp_transport_delivers() {
        if !snapstab_net::udp_available() {
            eprintln!("warning: UDP loopback unavailable in this sandbox; skipping");
            return;
        }
        let (out, code) = cmd_live(&parse(
            "live --app forward --n 3 --requests 1 --transport udp --check --budget-secs 40",
        ));
        assert!(out.contains("udp transport"), "{out}");
        assert!(out.contains("delivered 3/3"), "{out}");
        assert!(out.contains("holds: true"), "{out}");
        assert_eq!(code, 0, "healthy UDP forwarding run exits 0:\n{out}");
    }

    #[test]
    fn live_udp_transport_serves_and_checks() {
        if !snapstab_net::udp_available() {
            eprintln!("warning: UDP loopback unavailable in this sandbox; skipping");
            return;
        }
        let (out, code) = cmd_live(&parse(
            "live --n 3 --requests 2 --transport udp --check --budget-secs 40",
        ));
        assert!(out.contains("udp transport"), "{out}");
        assert!(out.contains("served 6/6"), "{out}");
        assert!(out.contains("exclusivity holds: true"), "{out}");
        assert_eq!(code, 0, "healthy UDP run exits 0:\n{out}");
    }

    #[test]
    fn live_queue_depth_sizes_the_sharded_workload() {
        let (out, code) = cmd_live(&parse(
            "live --n 3 --shards 2 --batch 2 --queue-depth 2 --key-space 64 --budget-secs 40",
        ));
        assert!(out.contains("queue depth 2 per shard"), "{out}");
        // 3 processes × (2 shards × depth 2) = 12 requests.
        assert!(out.contains("served 12/12"), "{out}");
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn live_queue_depth_alone_selects_sharded_path() {
        // Never silently ignored: without --shards/--batch the flag still
        // drives a (1-shard) sharded run sized by the depth.
        let (out, code) = cmd_live(&parse("live --n 3 --queue-depth 2 --budget-secs 40"));
        assert!(out.contains("1 shard(s)"), "{out}");
        assert!(out.contains("queue depth 2 per shard"), "{out}");
        assert!(out.contains("served 6/6"), "{out}");
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn live_unknown_chaos_exits_2_and_lists_valid_set() {
        let (out, code) = cmd_live(&parse("live --n 3 --chaos gremlins"));
        assert_eq!(code, 2, "usage errors exit 2:\n{out}");
        assert!(out.contains("unknown --chaos `gremlins`"), "{out}");
        assert!(
            out.contains("valid values are corrupt, crash, partition, storm, all"),
            "{out}"
        );
        assert!(out.contains("USAGE"), "{out}");
        // A bare `--chaos` switch (no profile) gets the same treatment.
        let (out, code) = cmd_live(&parse("live --n 3 --chaos"));
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("missing --chaos profile"), "{out}");
        // The forwarding app applies the same validation.
        let (out, code) = cmd_live(&parse("live --app forward --n 3 --chaos gremlins"));
        assert_eq!(code, 2, "{out}");
        assert!(out.contains("unknown --chaos `gremlins`"), "{out}");
    }

    #[test]
    fn live_chaos_with_sharded_flags_exits_2() {
        let (out, code) = cmd_live(&parse("live --n 3 --shards 2 --chaos all"));
        assert_eq!(code, 2, "usage errors exit 2:\n{out}");
        assert!(out.contains("--chaos is not supported"), "{out}");
    }

    #[test]
    fn live_reports_link_counters() {
        let (out, code) = cmd_live(&parse(
            "live --n 3 --requests 1 --loss 0.2 --budget-secs 40",
        ));
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("link counters:"), "{out}");
        assert!(out.contains("in transit"), "{out}");
        assert!(out.contains("reorder"), "{out}");
        // The per-link table is printed for every transport backend.
        assert!(out.contains("per-link counters"), "{out}");
        assert!(out.contains("0->1:"), "{out}");
    }

    #[test]
    fn live_monitored_serves_cuts_and_checks_spec5() {
        let (out, code) = cmd_live(&parse(
            "live --n 3 --requests 2 --monitor --monitor-interval 5 --check --budget-secs 40",
        ));
        assert!(out.contains("Live monitored mutex service"), "{out}");
        assert!(out.contains("served 6/6"), "{out}");
        assert!(out.contains("cut #0"), "{out}");
        assert!(out.contains("spec 5 on the merged trace"), "{out}");
        assert!(out.contains("holds: true"), "{out}");
        assert!(out.contains("exclusivity holds: true"), "{out}");
        assert!(
            out.contains("monitor metrics: {\"type\":\"summary\",\"interval_ms\":5"),
            "{out}"
        );
        assert!(out.contains("per-link counters"), "{out}");
        assert_eq!(code, 0, "healthy monitored run exits 0:\n{out}");
    }

    #[test]
    fn live_monitor_interval_alone_implies_monitor() {
        let (out, code) = cmd_live(&parse(
            "live --n 3 --requests 1 --monitor-interval 10 --budget-secs 40",
        ));
        assert!(out.contains("Live monitored mutex service"), "{out}");
        assert!(out.contains("cut interval 10ms"), "{out}");
        assert_eq!(code, 0, "{out}");
    }

    #[test]
    fn live_invalid_monitor_interval_exits_2_and_lists_valid_input() {
        for bad in ["0", "fast", "-5", "2.5"] {
            let (out, code) = cmd_live(&parse(&format!(
                "live --n 3 --monitor --monitor-interval {bad}"
            )));
            assert_eq!(code, 2, "usage errors exit 2 for `{bad}`:\n{out}");
            assert!(
                out.contains(&format!("invalid --monitor-interval `{bad}`")),
                "{out}"
            );
            assert!(out.contains("positive integers"), "{out}");
            assert!(out.contains("USAGE"), "{out}");
        }
    }

    #[test]
    fn live_monitor_with_sharded_flags_exits_2() {
        let (out, code) = cmd_live(&parse("live --n 3 --shards 2 --monitor"));
        assert_eq!(code, 2, "usage errors exit 2:\n{out}");
        assert!(out.contains("--monitor is not supported"), "{out}");
    }

    #[test]
    fn live_monitored_chaos_run_holds_spec5() {
        let (out, code) = cmd_live(&parse(
            "live --n 3 --requests 3 --monitor --monitor-interval 5 --chaos all \
             --seed 9 --budget-secs 60",
        ));
        assert!(out.contains("chaos (all profile):"), "{out}");
        assert!(out.contains("spec 5 on the merged trace"), "{out}");
        assert!(out.contains("spec 3 per epoch"), "{out}");
        assert!(!out.contains("holds: false"), "{out}");
        assert_eq!(code, 0, "healthy monitored chaos run exits 0:\n{out}");
    }

    #[test]
    fn live_monitored_forward_delivers_and_checks() {
        let (out, code) = cmd_live(&parse(
            "live --app forward --n 3 --requests 2 --monitor --monitor-interval 5 \
             --check --budget-secs 40",
        ));
        assert!(out.contains("Live monitored forwarding service"), "{out}");
        assert!(out.contains("delivered 6/6"), "{out}");
        assert!(out.contains("spec 5 on the merged trace"), "{out}");
        assert!(
            out.contains("spec 4 on the projected service trace"),
            "{out}"
        );
        assert!(!out.contains("holds: false"), "{out}");
        assert!(out.contains("monitor metrics:"), "{out}");
        assert_eq!(code, 0, "healthy monitored forwarding run exits 0:\n{out}");
    }

    #[test]
    fn live_monitored_udp_serves_and_checks() {
        if !snapstab_net::udp_available() {
            eprintln!("warning: UDP loopback unavailable in this sandbox; skipping");
            return;
        }
        let (out, code) = cmd_live(&parse(
            "live --n 3 --requests 2 --monitor --monitor-interval 5 --transport udp \
             --check --budget-secs 40",
        ));
        assert!(out.contains("udp transport"), "{out}");
        assert!(out.contains("served 6/6"), "{out}");
        assert!(out.contains("spec 5 on the merged trace"), "{out}");
        assert!(!out.contains("holds: false"), "{out}");
        assert!(out.contains("per-link counters"), "{out}");
        assert_eq!(code, 0, "healthy monitored UDP run exits 0:\n{out}");
    }

    #[test]
    fn live_chaos_run_serves_and_reports_epochs() {
        let (out, code) = cmd_live(&parse(
            "live --n 3 --requests 3 --chaos all --seed 9 --budget-secs 60",
        ));
        assert!(out.contains("chaos (all profile):"), "{out}");
        assert!(out.contains("served 9/9"), "{out}");
        // --chaos implies --check: the epoch verdict is always printed.
        assert!(out.contains("spec 3 per epoch:"), "{out}");
        assert!(out.contains("holds: true"), "{out}");
        assert_eq!(code, 0, "healthy chaos run exits 0:\n{out}");
    }

    #[test]
    fn live_forward_chaos_run_reports_epochs() {
        let (out, code) = cmd_live(&parse(
            "live --app forward --n 3 --requests 2 --chaos partition --seed 4 --budget-secs 60",
        ));
        assert!(out.contains("chaos (partition profile):"), "{out}");
        assert!(out.contains("spec 4 per epoch:"), "{out}");
        assert!(out.contains("holds: true"), "{out}");
        assert_eq!(code, 0, "healthy forwarding chaos run exits 0:\n{out}");
    }

    #[test]
    fn dispatch_routes() {
        let (out, code) = dispatch(&parse("help"));
        assert!(out.contains("USAGE") && code == 0);
        let (out, code) = dispatch(&parse(""));
        assert!(out.contains("USAGE") && code == 0);
        let (out, code) = dispatch(&parse("--help"));
        assert!(out.contains("USAGE") && code == 0);
        let (out, code) = dispatch(&parse("bogus"));
        assert!(out.contains("unknown command") && code != 0);
    }

    #[test]
    fn usage_enumerates_every_subcommand() {
        for cmd in ["idl", "me", "live", "impossibility", "help"] {
            assert!(USAGE.contains(cmd), "usage must mention `{cmd}`");
        }
    }
}
