//! The CLI subcommands: run a protocol from a (optionally corrupted)
//! start and report what happened.

use snapstab_core::idl::IdlProcess;
use snapstab_core::me::{MeConfig, MeProcess, ValueMode};
use snapstab_core::request::RequestState;
use snapstab_core::spec::{analyze_me_trace, check_idl_result};
use snapstab_impossibility::DoubleWinDemo;
use snapstab_sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

use crate::args::Args;

/// The usage text.
pub const USAGE: &str = "\
snapstab — explore the snap-stabilizing protocols of Delaet et al. (2008)

USAGE: snapstab <command> [options]

COMMANDS
  idl            one IDs-Learning computation (Algorithm 2)
  me             a mutual-exclusion workload (Algorithm 3)
  impossibility  the Theorem 1 construction and replay
  help           this text

COMMON OPTIONS
  --n <int>      number of processes        (default 4)
  --seed <int>   deterministic seed         (default 1)
  --loss <f64>   per-message loss rate      (default 0.0)
  --corrupt      start from an arbitrary (corrupted) configuration
  --trace        print the execution timeline / service log

COMMAND OPTIONS
  me:            --steps <int> (default 60000), --requests <int> (default 3),
                 --cs-duration <int> (default 0)
  impossibility: --cs-duration <int> (default 8)
";

/// Runs the `idl` subcommand; returns the report text.
pub fn cmd_idl(args: &Args) -> String {
    let n: usize = args.get_or("n", 4);
    let seed: u64 = args.get_or("seed", 1);
    let loss: f64 = args.get_or("loss", 0.0);
    let ids: Vec<u64> = (0..n)
        .map(|i| 1 + ((7919 * (i as u64 + seed)) % 9973))
        .collect();

    let processes: Vec<IdlProcess> = (0..n)
        .map(|i| IdlProcess::new(ProcessId::new(i), n, ids[i]))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    if loss > 0.0 {
        runner.set_loss(LossModel::probabilistic(loss));
    }
    let mut out = format!("IDs-Learning: n={n}, ids={ids:?}, loss={loss}, seed={seed}\n");
    if args.has("corrupt") {
        let mut rng = SimRng::seed_from(seed ^ 0xC0);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        out.push_str("corrupted every variable and channel\n");
    }
    let learner = ProcessId::new(0);
    let _ = runner.run_until(1_000_000, |r| {
        r.process(learner).request() == RequestState::Done
    });
    runner.process_mut(learner).request_learning();
    let before = runner.step_count();
    runner
        .run_until(5_000_000, |r| {
            r.process(learner).request() == RequestState::Done
        })
        .expect("computation decides");
    let verdict = check_idl_result(runner.process(learner).idl(), learner, &ids, true, true);
    out.push_str(&format!(
        "decided in {} steps; minID = {} (true {}); spec holds: {}\n",
        runner.step_count() - before,
        runner.process(learner).idl().min_id(),
        ids.iter().min().unwrap(),
        verdict.holds(),
    ));
    if args.has("trace") {
        out.push_str(&snapstab_sim::render_timeline(
            runner.trace(),
            n,
            &snapstab_sim::RenderOptions::default(),
        ));
    }
    out
}

/// Runs the `me` subcommand; returns the report text.
pub fn cmd_me(args: &Args) -> String {
    let n: usize = args.get_or("n", 4);
    let seed: u64 = args.get_or("seed", 1);
    let loss: f64 = args.get_or("loss", 0.0);
    let steps: u64 = args.get_or("steps", 60_000);
    let requests: u32 = args.get_or("requests", 3);
    let cs_duration: u64 = args.get_or("cs-duration", 0);

    let config = MeConfig {
        cs_duration,
        value_mode: ValueMode::Corrected,
        ..MeConfig::default()
    };
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| MeProcess::with_config(ProcessId::new(i), n, 100 + i as u64, config))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    if loss > 0.0 {
        runner.set_loss(LossModel::probabilistic(loss));
    }
    let mut out = format!(
        "Mutual exclusion: n={n}, loss={loss}, cs_duration={cs_duration}, \
         {requests} request(s) per process, budget {steps} steps\n"
    );
    let mut rng = SimRng::seed_from(seed ^ 0xE1);
    if args.has("corrupt") {
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        out.push_str("corrupted every variable and channel\n");
    }
    let mut pending = vec![requests; n];
    let mut executed = 0;
    while executed < steps {
        executed += runner.run_steps(300).expect("run").steps;
        for (i, left) in pending.iter_mut().enumerate() {
            let p = ProcessId::new(i);
            if *left > 0 && runner.process(p).request() == RequestState::Done {
                runner.mark(p, "request");
                runner.process_mut(p).request_cs();
                *left -= 1;
            }
        }
    }
    let report = analyze_me_trace(runner.trace(), n);
    out.push_str(&format!(
        "served {} request(s); genuine CS overlaps: {}; spurious overlaps: {}\n",
        report.served.len(),
        report.genuine_overlaps.len(),
        report.spurious_overlaps.len(),
    ));
    let lat = report.latencies();
    if !lat.is_empty() {
        out.push_str(&format!(
            "service latency: min {} / max {} steps\n",
            lat.iter().min().unwrap(),
            lat.iter().max().unwrap(),
        ));
    }
    if args.has("trace") {
        for (p, req, srv) in &report.served {
            out.push_str(&format!("  {p}: requested @{req}, served @{srv}\n"));
        }
    }
    out
}

/// Runs the `impossibility` subcommand; returns the report text.
pub fn cmd_impossibility(args: &Args) -> String {
    let n: usize = args.get_or("n", 3);
    let seed: u64 = args.get_or("seed", 0xD0);
    let cs_duration: u64 = args.get_or("cs-duration", 8);
    let demo = DoubleWinDemo {
        n,
        a: ProcessId::new(1),
        b: ProcessId::new(2),
        cs_duration,
        seed,
        max_steps: 4_000_000,
    };
    let outcome = demo.run(&[1, 2, 4, 8, 16]).expect("demo runs");
    let mut out = format!(
        "Theorem 1 construction: n={n}, cs_duration={cs_duration}, seed={seed}\n\
         gamma_0 needs up to {} messages per channel ({} total, sent by nobody)\n",
        outcome.max_channel_load, outcome.total_preloaded
    );
    for (cap, feasible) in &outcome.feasibility {
        match cap {
            Some(c) => out.push_str(&format!(
                "  capacity {c:>2}: gamma_0 {}\n",
                if *feasible {
                    "exists"
                } else {
                    "does NOT exist"
                }
            )),
            None => out.push_str(&format!(
                "  unbounded  : gamma_0 {}\n",
                if *feasible {
                    "exists"
                } else {
                    "does NOT exist"
                }
            )),
        }
    }
    out.push_str(&format!(
        "replay on unbounded channels: bad factor reached = {} (step {:?}), \
         genuine CS overlaps = {}\n",
        outcome.replay.violated(),
        outcome.replay.bad_factor_step,
        outcome.report.genuine_overlaps.len(),
    ));
    out
}

/// Dispatches a parsed command line; returns the report text.
pub fn dispatch(args: &Args) -> String {
    match args.command.as_deref() {
        Some("idl") => cmd_idl(args),
        Some("me") => cmd_me(args),
        Some("impossibility") => cmd_impossibility(args),
        Some("help") | None => USAGE.to_string(),
        Some(other) => format!("unknown command `{other}`\n\n{USAGE}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn idl_reports_success() {
        let out = cmd_idl(&parse("idl --n 3 --seed 5"));
        assert!(out.contains("spec holds: true"), "{out}");
    }

    #[test]
    fn idl_corrupted_still_succeeds() {
        let out = cmd_idl(&parse("idl --n 3 --seed 6 --corrupt --loss 0.2"));
        assert!(out.contains("spec holds: true"), "{out}");
    }

    #[test]
    fn me_serves_and_stays_exclusive() {
        let out = cmd_me(&parse("me --n 3 --steps 80000 --requests 1 --corrupt"));
        assert!(out.contains("genuine CS overlaps: 0"), "{out}");
    }

    #[test]
    fn impossibility_reports_dichotomy() {
        let out = cmd_impossibility(&parse("impossibility --n 3"));
        assert!(out.contains("bad factor reached = true"), "{out}");
        assert!(out.contains("does NOT exist"), "{out}");
    }

    #[test]
    fn dispatch_routes() {
        assert!(dispatch(&parse("help")).contains("USAGE"));
        assert!(dispatch(&parse("")).contains("USAGE"));
        assert!(dispatch(&parse("bogus")).contains("unknown command"));
    }
}
