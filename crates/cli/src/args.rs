//! A minimal `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--switch`
/// options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// Grammar: the first bare word is the subcommand; `--key value` sets
    /// an option; a `--key` followed by another flag or nothing is a
    /// boolean switch.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Args {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        args.options.insert(key.to_string(), value);
                    }
                    _ => args.switches.push(key.to_string()),
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            }
        }
        args
    }

    /// An option parsed as `T`, or `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics with a usage message if the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.options.get(key) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|e| panic!("invalid --{key} {raw}: {e:?}")),
        }
    }

    /// The raw (unparsed) value of an option, if present — for callers
    /// that validate with a usage error instead of a panic.
    pub fn get_raw(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// True if the boolean switch is present.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_switches() {
        let a = parse("pif --n 5 --loss 0.3 --corrupt --seed 42");
        assert_eq!(a.command.as_deref(), Some("pif"));
        assert_eq!(a.get_or("n", 0usize), 5);
        assert!((a.get_or("loss", 0.0f64) - 0.3).abs() < 1e-9);
        assert_eq!(a.get_or("seed", 0u64), 42);
        assert!(a.has("corrupt"));
        assert!(!a.has("trace"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("me");
        assert_eq!(a.get_or("n", 3usize), 3);
        assert_eq!(a.get_or("steps", 10_000u64), 10_000);
    }

    #[test]
    fn trailing_switch() {
        let a = parse("idl --corrupt");
        assert_eq!(a.command.as_deref(), Some("idl"));
        assert!(a.has("corrupt"));
    }

    #[test]
    fn empty_input() {
        let a = parse("");
        assert!(a.command.is_none());
    }

    #[test]
    #[should_panic(expected = "invalid --n")]
    fn bad_value_panics_with_message() {
        let a = parse("pif --n abc");
        let _ = a.get_or("n", 0usize);
    }
}
