//! Criterion bench: PIF wave latency (wall-clock) vs system size, from
//! clean and corrupted starts (experiment Q1's wall-clock companion).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use snapstab_core::pif::{PifApp, PifProcess};
use snapstab_core::request::RequestState;
use snapstab_sim::{
    Capacity, CorruptionPlan, NetworkBuilder, ProcessId, RoundRobin, Runner, SimRng,
};

#[derive(Clone, Debug)]
struct Zero;

impl PifApp<u32, u32> for Zero {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

type Proc = PifProcess<u32, u32, Zero>;

fn fresh(n: usize, corrupted: bool, seed: u64) -> Runner<Proc, RoundRobin> {
    let processes: Vec<Proc> = (0..n)
        .map(|i| PifProcess::with_initial_f(ProcessId::new(i), n, 0, 0, Zero))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RoundRobin::new(), seed);
    runner.set_record_trace(false);
    if corrupted {
        let mut rng = SimRng::seed_from(seed);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        let _ = runner.run_until(1_000_000, |r| {
            r.process(ProcessId::new(0)).request() == RequestState::Done
        });
    }
    runner
}

fn run_wave(mut runner: Runner<Proc, RoundRobin>) -> u64 {
    runner.process_mut(ProcessId::new(0)).request_broadcast(1);
    runner
        .run_until(10_000_000, |r| {
            r.process(ProcessId::new(0)).request() == RequestState::Done
        })
        .expect("wave decides");
    runner.step_count()
}

fn bench_pif_wave(c: &mut Criterion) {
    let mut group = c.benchmark_group("pif_wave");
    for n in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("clean", n), &n, |b, &n| {
            b.iter_batched(|| fresh(n, false, 1), run_wave, BatchSize::SmallInput);
        });
        group.bench_with_input(BenchmarkId::new("corrupted", n), &n, |b, &n| {
            b.iter_batched(|| fresh(n, true, 2), run_wave, BatchSize::SmallInput);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pif_wave);
criterion_main!(benches);
