//! Criterion bench: the X1 capacity generalization — PIF wave latency as
//! the known channel capacity grows, with the *matched* flag domain
//! (`2c + 3` values, `FlagDomain::for_capacity`). Larger capacity admits
//! more in-flight duplicates (fewer drop-on-full losses) but demands a
//! longer handshake (`2c + 2` increments per neighbor); this measures the
//! net effect of deploying the extension correctly.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use snapstab_core::pif::{PifApp, PifProcess};
use snapstab_core::request::RequestState;
use snapstab_sim::{Capacity, NetworkBuilder, ProcessId, RoundRobin, Runner};

#[derive(Clone, Debug)]
struct Zero;

impl PifApp<u32, u32> for Zero {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

type Proc = PifProcess<u32, u32, Zero>;

fn fresh(cap: usize) -> Runner<Proc, RoundRobin> {
    let n = 4;
    let processes: Vec<Proc> = (0..n)
        .map(|i| PifProcess::for_capacity(ProcessId::new(i), n, 0, 0, cap, Zero))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(cap))
        .build();
    let mut runner = Runner::new(processes, network, RoundRobin::new(), 5);
    runner.set_record_trace(false);
    runner
}

fn bench_capacity_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("pif_capacity");
    for cap in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter_batched(
                || fresh(cap),
                |mut runner| {
                    runner.process_mut(ProcessId::new(0)).request_broadcast(1);
                    runner
                        .run_until(10_000_000, |r| {
                            r.process(ProcessId::new(0)).request() == RequestState::Done
                        })
                        .expect("wave decides");
                    runner.step_count()
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_capacity_sweep);
criterion_main!(benches);
