//! Criterion bench: PIF wave latency under message loss (experiment Q2's
//! wall-clock companion).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use snapstab_core::pif::{PifApp, PifProcess};
use snapstab_core::request::RequestState;
use snapstab_sim::{Capacity, LossModel, NetworkBuilder, ProcessId, RoundRobin, Runner};

#[derive(Clone, Debug)]
struct Zero;

impl PifApp<u32, u32> for Zero {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

type Proc = PifProcess<u32, u32, Zero>;

fn fresh(loss: f64, seed: u64) -> Runner<Proc, RoundRobin> {
    let n = 3;
    let processes: Vec<Proc> = (0..n)
        .map(|i| PifProcess::with_initial_f(ProcessId::new(i), n, 0, 0, Zero))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RoundRobin::new(), seed);
    runner.set_record_trace(false);
    if loss > 0.0 {
        runner.set_loss(LossModel::probabilistic(loss));
    }
    runner
}

fn bench_pif_loss(c: &mut Criterion) {
    let mut group = c.benchmark_group("pif_loss");
    for loss in [0.0f64, 0.1, 0.3, 0.5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p={loss:.1}")),
            &loss,
            |b, &loss| {
                b.iter_batched(
                    || fresh(loss, 7),
                    |mut runner| {
                        runner.process_mut(ProcessId::new(0)).request_broadcast(1);
                        runner
                            .run_until(10_000_000, |r| {
                                r.process(ProcessId::new(0)).request() == RequestState::Done
                            })
                            .expect("wave decides");
                        runner.step_count()
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pif_loss);
criterion_main!(benches);
