//! Criterion bench: substrate micro-benchmarks (experiment Q4) — channel
//! operations, network send/deliver, corrupted-configuration sampling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use snapstab_core::idl::IdlProcess;
use snapstab_sim::{
    Capacity, Channel, CorruptionPlan, NetworkBuilder, ProcessId, RoundRobin, Runner, SimRng,
};

fn bench_channel_ops(c: &mut Criterion) {
    c.bench_function("channel_offer_pop", |b| {
        let mut ch: Channel<u64> = Channel::new(Capacity::Bounded(1));
        b.iter(|| {
            let _ = ch.offer(42);
            std::hint::black_box(ch.pop())
        });
    });
    c.bench_function("channel_offer_full", |b| {
        let mut ch: Channel<u64> = Channel::new(Capacity::Bounded(1));
        let _ = ch.offer(1);
        b.iter(|| std::hint::black_box(ch.offer(2)));
    });
}

fn bench_network_roundtrip(c: &mut Criterion) {
    c.bench_function("network_send_deliver_n8", |b| {
        let mut net = NetworkBuilder::<u64>::new(8)
            .capacity(Capacity::Bounded(1))
            .build();
        let (p, q) = (ProcessId::new(0), ProcessId::new(7));
        b.iter(|| {
            net.send(p, q, 9);
            std::hint::black_box(net.deliver(p, q).unwrap())
        });
    });
}

fn bench_corruption(c: &mut Criterion) {
    c.bench_function("corrupt_full_n8_idl", |b| {
        b.iter_batched(
            || {
                let n = 8;
                let processes: Vec<IdlProcess> = (0..n)
                    .map(|i| IdlProcess::new(ProcessId::new(i), n, i as u64))
                    .collect();
                let network = NetworkBuilder::new(n)
                    .capacity(Capacity::Bounded(1))
                    .build();
                Runner::new(processes, network, RoundRobin::new(), 0)
            },
            |mut runner| {
                let mut rng = SimRng::seed_from(1);
                CorruptionPlan::full().apply(&mut runner, &mut rng);
                runner
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_step_throughput(c: &mut Criterion) {
    c.bench_function("runner_steps_idl_wave_n8", |b| {
        b.iter_batched(
            || {
                let n = 8;
                let processes: Vec<IdlProcess> = (0..n)
                    .map(|i| IdlProcess::new(ProcessId::new(i), n, i as u64))
                    .collect();
                let network = NetworkBuilder::new(n)
                    .capacity(Capacity::Bounded(1))
                    .build();
                let mut runner = Runner::new(processes, network, RoundRobin::new(), 0);
                runner.set_record_trace(false);
                runner.process_mut(ProcessId::new(0)).request_learning();
                runner
            },
            |mut runner| {
                runner.run_steps(500).expect("steps run");
                runner.step_count()
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_step_loop_sizes(c: &mut Criterion) {
    // The headline step-loop number: sustained IDL workload, trace
    // recording off, fixed step budget per iteration — the incremental
    // scheduler view keeps this O(changed-state) per step instead of
    // O(n²).
    let mut group = c.benchmark_group("step_loop");
    for n in [8usize, 32, 128] {
        group.bench_with_input(
            criterion::BenchmarkId::new("idl_1k_steps", n),
            &n,
            |b, &n| {
                b.iter_batched(
                    || {
                        let processes: Vec<IdlProcess> = (0..n)
                            .map(|i| IdlProcess::new(ProcessId::new(i), n, i as u64))
                            .collect();
                        let network = NetworkBuilder::new(n)
                            .capacity(Capacity::Bounded(1))
                            .build();
                        let mut runner = Runner::new(processes, network, RoundRobin::new(), 0);
                        runner.set_record_trace(false);
                        runner.process_mut(ProcessId::new(0)).request_learning();
                        runner
                    },
                    |mut runner| {
                        runner.run_steps(1_000).expect("steps run");
                        runner.step_count()
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_channel_ops,
    bench_network_roundtrip,
    bench_corruption,
    bench_step_throughput,
    bench_step_loop_sizes
);
criterion_main!(benches);
