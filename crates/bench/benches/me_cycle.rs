//! Criterion bench: mutual-exclusion request-to-service latency
//! (wall-clock), clean and corrupted starts.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use snapstab_core::me::MeProcess;
use snapstab_core::request::RequestState;
use snapstab_sim::{
    Capacity, CorruptionPlan, NetworkBuilder, ProcessId, RoundRobin, Runner, SimRng,
};

fn fresh(n: usize, corrupted: bool, seed: u64) -> Runner<MeProcess, RoundRobin> {
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| MeProcess::new(ProcessId::new(i), n, 100 + i as u64))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RoundRobin::new(), seed);
    runner.set_record_trace(false);
    if corrupted {
        let mut rng = SimRng::seed_from(seed);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
    }
    runner
}

fn serve_one(mut runner: Runner<MeProcess, RoundRobin>) -> u64 {
    let requester = ProcessId::new(runner.n() - 1);
    // Respect the user discipline: wait for Done before requesting.
    let _ = runner.run_until(1_000_000, |r| {
        r.process(requester).request() == RequestState::Done
    });
    assert!(runner.process_mut(requester).request_cs());
    runner
        .run_until(20_000_000, |r| {
            r.process(requester).request() == RequestState::Done
        })
        .expect("request must be served");
    runner.step_count()
}

fn bench_me_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("me_cycle");
    group.sample_size(20);
    for n in [3usize, 5] {
        group.bench_with_input(BenchmarkId::new("clean", n), &n, |b, &n| {
            b.iter_batched(|| fresh(n, false, 3), serve_one, BatchSize::SmallInput);
        });
        group.bench_with_input(BenchmarkId::new("corrupted", n), &n, |b, &n| {
            b.iter_batched(|| fresh(n, true, 4), serve_one, BatchSize::SmallInput);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_me_cycle);
criterion_main!(benches);
