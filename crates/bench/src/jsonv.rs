//! A minimal JSON value model and recursive-descent parser.
//!
//! The workspace is offline (no serde), but the bench binaries emit JSON
//! documents (`BENCH_STEPLOOP.json`, `BENCH_RUNTIME.json`) that dashboards
//! and future PRs consume — so field drift in the hand-rolled emitters
//! must be caught *before* it lands in a committed artifact. This module
//! is the read side: enough JSON to parse the bench's own output back and
//! let each experiment validate its schema round-trips (see
//! `experiments::rtbench::from_json`).
//!
//! Supported: objects, arrays, strings (with `\"`/`\\`/`\n`/`\t`/`\r`
//! escapes), numbers (as `f64` — every integer the benches emit is below
//! 2⁵³, so the round-trip is exact), booleans and `null`.

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {} (found {:?})",
            ch as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                out.push(match esc {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => return Err(format!("unsupported escape \\{}", *other as char)),
                });
                *pos += 1;
            }
            Some(_) => {
                // Copy a run of plain bytes (UTF-8 passes through intact).
                let start = *pos;
                while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\\"\"").unwrap(),
            Value::Str("a\n\"b\"".into())
        );
    }

    #[test]
    fn parses_nested_structure() {
        let doc = r#"{ "a": [1, 2, {"b": "x"}], "c": {} }"#;
        let v = parse(doc).unwrap();
        let a = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[2].get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("c").unwrap().as_obj().unwrap().len(), 0);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("{\"k\" 1}").is_err());
    }

    #[test]
    fn integers_round_trip_exactly() {
        // The largest integers the benches emit (wall_ns ~ 10^11) are far
        // below 2^53, so f64 holds them exactly.
        let v = parse("75424258846").unwrap();
        assert_eq!(v.as_num().unwrap() as u128, 75_424_258_846u128);
    }

    #[test]
    fn parses_bench_shaped_document() {
        let doc = "{\n  \"experiment\": \"x\",\n  \"results\": [\n    {\"n\": 8, \"loss\": 0.1}\n  ],\n  \"total\": 10\n}\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("experiment").and_then(Value::as_str), Some("x"));
        let rows = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("loss").and_then(Value::as_num), Some(0.1));
    }
}
