//! # snapstab-bench — the experiment harness
//!
//! One module (and one binary) per paper artifact, as indexed in
//! DESIGN.md §5 and recorded in EXPERIMENTS.md:
//!
//! | id | artifact | module |
//! |----|----------|--------|
//! | F1 | Figure 1 worst case | [`experiments::fig1`] |
//! | T1 | Theorem 1 construction | [`experiments::impossibility`] |
//! | T2 + P1 | Theorem 2 / Spec 1 + Property 1 | [`experiments::pif_props`] |
//! | T3 | Theorem 3 / Spec 2 | [`experiments::idl_props`] |
//! | T4 + L1 | Theorem 4 / Spec 3 + Lemmas 10–11 | [`experiments::me_props`] |
//! | Q1 | message/step complexity | [`experiments::scaling`] |
//! | Q2 | loss resilience | [`experiments::loss`] |
//! | Q3 | naive-protocol failure modes | [`experiments::naive`] |
//! | C1 | snap- vs self-stabilization | [`experiments::baseline`] |
//! | A1 + A2 | ablations (flag domain, mod n+1) | [`experiments::ablation`] |
//! | Q5 | step-loop throughput trajectory | [`experiments::stepbench`] |
//! | Q6 | live-runtime mutex-service throughput | [`experiments::rtbench`] |
//!
//! Every experiment is deterministic given its seeds and prints an ASCII
//! table; `--bin all_experiments` runs the full suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod jsonv;
pub mod stats;
pub mod table;

pub use stats::Summary;
pub use table::Table;

/// Global "fast mode" knob: experiment binaries accept `--fast` to shrink
/// trial counts for smoke runs; the full runs back EXPERIMENTS.md.
pub fn is_fast(args: &[String]) -> bool {
    args.iter().any(|a| a == "--fast")
}
