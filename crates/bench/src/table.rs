//! Minimal ASCII table printer for experiment reports.

use std::fmt::Write as _;

/// A simple left-padded ASCII table.
///
/// ```
/// use snapstab_bench::Table;
/// let mut t = Table::new(&["n", "steps"]);
/// t.row(&["2".into(), "57".into()]);
/// let s = t.render();
/// assert!(s.contains("n"));
/// assert!(s.contains("57"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable values.
    pub fn row_of(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                let _ = write!(out, "+{}", "-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, "| {h:>w$} ", w = widths[i]);
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &self.rows {
            for i in 0..cols {
                let _ = write!(out, "| {c:>w$} ", c = row[i], w = widths[i]);
            }
            out.push_str("|\n");
        }
        sep(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "v"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("| longer |"));
        assert!(s.contains("|      a |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn row_of_display() {
        let mut t = Table::new(&["x", "y"]);
        t.row_of(&[&3, &"hi"]);
        assert!(t.render().contains("hi"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
