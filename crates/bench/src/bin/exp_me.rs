//! T4 + L1 — Specification 3 and Lemmas 10-11 sweep.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::me_props::run(snapstab_bench::is_fast(&args))
    );
}
