//! X2 — tree waves on general topologies.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::topology::run(snapstab_bench::is_fast(&args))
    );
}
