//! C1 — self-stabilizing baselines vs snap-stabilization.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::baseline::run(snapstab_bench::is_fast(&args))
    );
}
