//! T2 + P1 — Specification 1 and Property 1 sweep.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::pif_props::run(snapstab_bench::is_fast(&args))
    );
}
