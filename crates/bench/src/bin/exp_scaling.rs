//! Q1 — PIF wave complexity sweep.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::scaling::run(snapstab_bench::is_fast(&args))
    );
}
