//! Q2 — PIF loss-resilience sweep.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::loss::run(snapstab_bench::is_fast(&args))
    );
}
