//! T1 — Theorem 1 adversarial construction and replay.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::impossibility::run(snapstab_bench::is_fast(&args))
    );
}
