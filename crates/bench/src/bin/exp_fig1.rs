//! F1 — Figure 1 worst-case reproduction. `--fast` samples the sweep.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::fig1::run(snapstab_bench::is_fast(&args))
    );
}
