//! Q3 — naive-PIF failure modes vs Algorithm 1.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::naive::run(snapstab_bench::is_fast(&args))
    );
}
