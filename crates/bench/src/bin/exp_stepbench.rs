//! Q5 — step-loop throughput sweep; writes `BENCH_STEPLOOP.json` so future
//! PRs have a wall-time-per-step trajectory to compare against.
//!
//! Usage: `exp_stepbench [--fast] [--json PATH]` (default PATH:
//! `BENCH_STEPLOOP.json` in the current directory).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = snapstab_bench::is_fast(&args);
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_STEPLOOP.json".to_string());

    let results = snapstab_bench::experiments::stepbench::sweep(fast);

    print!(
        "{}",
        snapstab_bench::experiments::stepbench::render(&results)
    );
    let json = snapstab_bench::experiments::stepbench::to_json(&results);
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }
}
