//! MC1 — exhaustive model checking of the PIF handshake.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::modelcheck::run(snapstab_bench::is_fast(&args))
    );
}
