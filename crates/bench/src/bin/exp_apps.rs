//! S12 (supplementary) — PIF applications' first-request exactness.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::apps::run(snapstab_bench::is_fast(&args))
    );
}
