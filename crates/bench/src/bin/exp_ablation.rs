//! A1 + A2 — flag-domain minimality and the mod (n+1) erratum.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::ablation::run(snapstab_bench::is_fast(&args))
    );
}
