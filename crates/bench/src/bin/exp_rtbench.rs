//! Q6 — live-runtime service throughput sweeps (single-leader mutex
//! baseline + sharded/batched + in-memory-vs-UDP transport comparison +
//! the snap-stabilizing forwarding service + the chaos-engine recovery
//! sweep + the snapshot-monitor observability overhead pairs + the
//! thread-per-process-vs-mux runtime comparison); writes
//! `BENCH_RUNTIME.json` so future PRs have a live-path trajectory to
//! compare against.
//!
//! Before writing, the emitted JSON is parsed back through the bench's
//! own schema (`rtbench::validate_roundtrip`): a missing, renamed or
//! re-typed field fails the binary with exit code 1 instead of landing in
//! the committed artifact.
//!
//! Usage: `exp_rtbench [--fast|--quick] [--json PATH]` (default PATH:
//! `BENCH_RUNTIME.json` in the current directory).

use snapstab_bench::experiments::rtbench;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = snapstab_bench::is_fast(&args) || args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_RUNTIME.json".to_string());

    let baseline = rtbench::sweep(fast);
    let sharded = rtbench::sweep_sharded(fast);
    let udp = rtbench::sweep_udp(fast);
    let forwarding = rtbench::sweep_forwarding(fast);
    let chaos = rtbench::sweep_chaos(fast);
    let observability = rtbench::sweep_observability(fast);
    let mux = rtbench::sweep_mux(fast);
    if !fast && udp.is_empty() {
        // A sandbox without sockets cannot measure the udp sweep; writing
        // would silently erase the committed rows (the schema requires
        // the array, and an empty one round-trips). Refuse, like drift.
        eprintln!("\nudp sweep unavailable — not writing {json_path}: a full run must measure it");
        std::process::exit(1);
    }

    print!(
        "{}",
        rtbench::render(
            &baseline,
            &sharded,
            &udp,
            &forwarding,
            &chaos,
            &observability,
            &mux
        )
    );
    let json = rtbench::to_json(
        &baseline,
        &sharded,
        &udp,
        &forwarding,
        &chaos,
        &observability,
        &mux,
    );
    if let Err(e) = rtbench::validate_roundtrip(
        &json,
        &baseline,
        &sharded,
        &udp,
        &forwarding,
        &chaos,
        &observability,
        &mux,
    ) {
        eprintln!("\nschema validation FAILED — not writing {json_path}: {e}");
        std::process::exit(1);
    }
    println!("\nschema validation: JSON round-trips through the bench's own parser");
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => eprintln!("could not write {json_path}: {e}"),
    }
}
