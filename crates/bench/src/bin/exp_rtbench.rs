//! Q6 — live-runtime mutex-service throughput sweep; writes
//! `BENCH_RUNTIME.json` so future PRs have a live-path trajectory to
//! compare against.
//!
//! Usage: `exp_rtbench [--fast|--quick] [--json PATH]` (default PATH:
//! `BENCH_RUNTIME.json` in the current directory).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = snapstab_bench::is_fast(&args) || args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_RUNTIME.json".to_string());

    let results = snapstab_bench::experiments::rtbench::sweep(fast);

    print!("{}", snapstab_bench::experiments::rtbench::render(&results));
    let json = snapstab_bench::experiments::rtbench::to_json(&results);
    match std::fs::write(&json_path, &json) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => eprintln!("\ncould not write {json_path}: {e}"),
    }
}
