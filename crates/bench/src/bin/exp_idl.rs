//! T3 — Specification 2 sweep.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::idl_props::run(snapstab_bench::is_fast(&args))
    );
}
