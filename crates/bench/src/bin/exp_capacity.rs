//! A3 — the bounded-capacity dichotomy (2c+3 flag values).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    print!(
        "{}",
        snapstab_bench::experiments::capacity::run(snapstab_bench::is_fast(&args))
    );
}
