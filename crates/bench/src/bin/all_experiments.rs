//! Runs the entire experiment suite (DESIGN.md section 5) in order.
use snapstab_bench::experiments as ex;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = snapstab_bench::is_fast(&args);
    for (name, f) in [
        ("F1", ex::fig1::run as fn(bool) -> String),
        ("T1", ex::impossibility::run),
        ("T2+P1", ex::pif_props::run),
        ("T3", ex::idl_props::run),
        ("T4+L1", ex::me_props::run),
        ("Q1", ex::scaling::run),
        ("Q2", ex::loss::run),
        ("Q3", ex::naive::run),
        ("C1", ex::baseline::run),
        ("A1+A2", ex::ablation::run),
        ("A3", ex::capacity::run),
        ("MC1", ex::modelcheck::run),
        ("X2", ex::topology::run),
        ("S12", ex::apps::run),
    ] {
        eprintln!(">>> running {name} ...");
        println!("{}", f(fast));
    }
}
