//! **Q1 — message and step complexity of a PIF wave.**
//!
//! The handshake costs four echoes per neighbor, so one wave needs at
//! least `4(n−1)` messages from the initiator and `4(n−1)` replies —
//! `8(n−1)` total in the loss-free, perfectly scheduled case; fair
//! schedulers add retransmissions (action A2 re-sends whenever activated
//! mid-wave). The experiment measures messages and steps per wave against
//! the analytic minimum, from clean and corrupted starts.

use rayon::prelude::*;
use snapstab_core::pif::{PifApp, PifProcess};
use snapstab_core::request::RequestState;
use snapstab_sim::{
    Capacity, CorruptionPlan, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

use crate::stats::Summary;
use crate::table::Table;

#[derive(Clone, Debug)]
struct Zero;

impl PifApp<u32, u32> for Zero {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

/// Measured cost of one wave.
#[derive(Clone, Copy, Debug)]
pub struct WaveCost {
    /// Send attempts during the wave.
    pub messages: u64,
    /// Steps from request to decision.
    pub steps: u64,
}

/// Measures one wave at size `n`; `corrupted` draws an arbitrary initial
/// configuration first.
pub fn measure(n: usize, corrupted: bool, seed: u64) -> WaveCost {
    let processes: Vec<PifProcess<u32, u32, Zero>> = (0..n)
        .map(|i| PifProcess::with_initial_f(ProcessId::new(i), n, 0, 0, Zero))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    if corrupted {
        let mut rng = SimRng::seed_from(seed ^ 0xCAFE);
        CorruptionPlan::full().apply(&mut runner, &mut rng);
        let _ = runner.run_until(1_000_000, |r| {
            r.process(ProcessId::new(0)).request() == RequestState::Done
        });
    }
    let sends_before = runner.stats().sends_attempted;
    let steps_before = runner.step_count();
    runner.process_mut(ProcessId::new(0)).request_broadcast(1);
    runner
        .run_until(5_000_000, |r| {
            r.process(ProcessId::new(0)).request() == RequestState::Done
        })
        .expect("wave must decide");
    WaveCost {
        messages: runner.stats().sends_attempted - sends_before,
        steps: runner.step_count() - steps_before,
    }
}

/// Runs the Q1 sweep and renders the report.
pub fn run(fast: bool) -> String {
    let trials: u64 = if fast { 5 } else { 30 };
    let ns = if fast {
        vec![2, 4, 8]
    } else {
        vec![2, 4, 8, 16, 32]
    };

    let mut out = String::new();
    out.push_str("=== Q1: PIF wave complexity (messages and steps per wave) ===\n\n");
    let mut table = Table::new(&[
        "n",
        "analytic min msgs 8(n-1)",
        "clean msgs mean/p95",
        "clean steps mean/p95",
        "corrupted msgs mean/p95",
        "corrupted steps mean/p95",
    ]);
    for &n in &ns {
        // Trials are independent and own their seeds, so they run in
        // parallel; collect preserves trial order, keeping the report
        // byte-identical to the sequential driver.
        let clean: Vec<WaveCost> = (0..trials)
            .into_par_iter()
            .map(|t| measure(n, false, 1000 + t))
            .collect();
        let corr: Vec<WaveCost> = (0..trials)
            .into_par_iter()
            .map(|t| measure(n, true, 2000 + t))
            .collect();
        table.row(&[
            n.to_string(),
            (8 * (n - 1)).to_string(),
            Summary::of_u64(clean.iter().map(|c| c.messages)).mean_p95(),
            Summary::of_u64(clean.iter().map(|c| c.steps)).mean_p95(),
            Summary::of_u64(corr.iter().map(|c| c.messages)).mean_p95(),
            Summary::of_u64(corr.iter().map(|c| c.steps)).mean_p95(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nnote: the fair random scheduler retransmits (A2 fires whenever the initiator is \
         activated mid-wave), so measured messages sit a small constant factor above the \
         analytic minimum and scale linearly in n.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_cost_at_least_analytic_minimum() {
        let c = measure(3, false, 1);
        assert!(c.messages >= 8 * 2, "measured {c:?}");
        assert!(c.steps > 0);
    }

    #[test]
    fn corrupted_start_also_completes() {
        let c = measure(3, true, 2);
        assert!(c.messages >= 8 * 2);
    }
}
