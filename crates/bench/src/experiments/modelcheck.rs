//! **MC1 — exhaustive model checking of the handshake (Theorem 2 and the
//! A1/A3 dichotomies by complete enumeration).**
//!
//! The other experiments *sample* `I = C`; this one *enumerates* it for
//! the 2-process model: every initial configuration (every corrupted
//! variable value, every stale channel content) under every interleaving
//! of activations, deliveries and in-transit losses. Ghost provenance bits
//! certify that a wave's completion derives from a genuine post-start
//! round trip; any stale completion is a violation with a concrete
//! counterexample path.
//!
//! Rows:
//!
//! * the paper's protocol (`m = 5`, capacity 1) — safe, exhaustively;
//! * undersized domains (`m ∈ {2, 3, 4}`) — violated, with the shortest
//!   counterexample printed;
//! * the capacity mismatch (`m = 5`, capacity 2) — violated;
//! * the generalized domain (`m = 7`, capacity 2) — safe over sampled
//!   seeds (the full capacity-2 seed space is ≈ 10¹⁰);
//! * possible-termination over the paper's full reachable space.

use snapstab_mc::{
    explore, explore_collect, possible_termination, McMove, Params, SeedSet, Violation,
};

use crate::table::Table;

fn fmt_moves(moves: &[McMove]) -> String {
    moves
        .iter()
        .map(|m| match m {
            McMove::ActivateP => "act(p)",
            McMove::ActivateQ => "act(q)",
            McMove::DeliverPq => "dlv(p→q)",
            McMove::DeliverQp => "dlv(q→p)",
            McMove::LosePq => "lose(p→q)",
            McMove::LoseQp => "lose(q→p)",
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn fmt_violation(v: Violation) -> &'static str {
    match v {
        Violation::StaleEcho => "stale echo (no genuine round trip)",
        Violation::StaleFeedback => "stale feedback (decision counts garbage)",
    }
}

/// Runs the MC1 experiment.
pub fn run(fast: bool) -> String {
    let mut out = String::new();
    out.push_str("=== MC1: exhaustive model checking of the PIF handshake ===\n\n");

    let max_states = if fast { 3_000_000 } else { 80_000_000 };
    let mut table = Table::new(&[
        "domain m",
        "capacity",
        "seeds",
        "states explored",
        "exhaustive",
        "verdict",
    ]);
    let mut counterexamples = String::new();

    // Undersized domains at capacity 1: violations expected.
    for m in [2u8, 3, 4] {
        let params = Params::new(m, 1);
        let r = explore(params, &SeedSet::Exhaustive, max_states);
        let verdict = match &r.violation {
            Some(cex) => {
                counterexamples.push_str(&format!(
                    "m = {m}, cap 1 — {}:\n  seed: {:?}\n  path ({} moves): {}\n\n",
                    fmt_violation(cex.violation),
                    cex.seed,
                    cex.moves.len(),
                    fmt_moves(&cex.moves),
                ));
                "VIOLATED (expected)"
            }
            None => "safe (unexpected!)",
        };
        table.row(&[
            m.to_string(),
            "1".into(),
            r.seed_count.to_string(),
            r.states_explored.to_string(),
            r.exhausted.to_string(),
            verdict.into(),
        ]);
    }

    // The paper's protocol: exhaustive safety.
    {
        let params = Params::paper();
        let seeds = if fast {
            SeedSet::Sampled {
                count: 30_000,
                rng_seed: 5,
            }
        } else {
            SeedSet::Exhaustive
        };
        let r = explore(params, &seeds, max_states);
        let verdict = if r.violation.is_some() {
            "VIOLATED (unexpected!)"
        } else if r.exhausted {
            "SAFE (exhaustive)"
        } else {
            "safe within bound (partial)"
        };
        table.row(&[
            "5 (paper)".into(),
            "1".into(),
            r.seed_count.to_string(),
            r.states_explored.to_string(),
            r.exhausted.to_string(),
            verdict.into(),
        ]);
    }

    // Capacity 2 with the paper's domain: the mismatch breaks.
    {
        let params = Params::new(5, 2);
        let r = explore(
            params,
            &SeedSet::Sampled {
                count: if fast { 20_000 } else { 200_000 },
                rng_seed: 7,
            },
            max_states,
        );
        let verdict = match &r.violation {
            Some(cex) => {
                counterexamples.push_str(&format!(
                    "m = 5, cap 2 — {}:\n  seed: {:?}\n  path ({} moves): {}\n\n",
                    fmt_violation(cex.violation),
                    cex.seed,
                    cex.moves.len(),
                    fmt_moves(&cex.moves),
                ));
                "VIOLATED (expected)"
            }
            None => "no violation found (sampled)",
        };
        table.row(&[
            "5".into(),
            "2".into(),
            r.seed_count.to_string(),
            r.states_explored.to_string(),
            r.exhausted.to_string(),
            verdict.into(),
        ]);
    }

    // Capacity 2 with the generalized domain: safe over samples.
    {
        let params = Params::new(7, 2);
        let r = explore(
            params,
            &SeedSet::Sampled {
                count: if fast { 5_000 } else { 50_000 },
                rng_seed: 11,
            },
            max_states,
        );
        let verdict = if r.violation.is_some() {
            "VIOLATED (unexpected!)"
        } else {
            "safe (sampled seeds, full interleaving)"
        };
        table.row(&[
            "7 (2c+3)".into(),
            "2".into(),
            r.seed_count.to_string(),
            r.states_explored.to_string(),
            r.exhausted.to_string(),
            verdict.into(),
        ]);
    }

    out.push_str(&table.render());
    out.push_str("\ncounterexamples (shortest found by BFS):\n\n");
    out.push_str(&counterexamples);

    // Possible termination over the paper's model.
    {
        let params = Params::paper();
        let seeds = if fast {
            SeedSet::Sampled {
                count: 10_000,
                rng_seed: 13,
            }
        } else {
            SeedSet::Exhaustive
        };
        let (r, reachable) = explore_collect(params, &seeds, max_states);
        if r.exhausted && r.violation.is_none() {
            let term = possible_termination(params, &reachable);
            out.push_str(&format!(
                "possible termination (m = 5, cap 1): states = {}, decided = {}, \
                 can terminate = {}, stuck = {} ({} sweeps) → {}\n",
                term.states,
                term.decided,
                term.can_terminate,
                term.stuck,
                term.sweeps,
                if term.holds() {
                    "HOLDS"
                } else {
                    "FAILS (unexpected!)"
                },
            ));
        } else {
            out.push_str("possible termination skipped (exploration not exhausted)\n");
        }
    }

    out.push_str(
        "\nverdict: the paper's five-valued handshake is safe by complete enumeration \
         at capacity 1; every undersizing (domain or capacity) yields a concrete \
         counterexample; the 2c+3 domain restores safety at capacity 2.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_reports_the_dichotomy() {
        let s = run(true);
        assert!(s.contains("VIOLATED (expected)"));
        assert!(!s.contains("unexpected"), "{s}");
        assert!(s.contains("counterexamples"));
    }
}
