//! **F1 — Figure 1: the worst case of Protocol PIF in terms of
//! configurations.**
//!
//! The paper's only figure illustrates the tightness of the five-valued
//! flag: from an adversarial initial configuration, the initiator `p` can
//! be driven to `State_p[q] = 3` purely by *stale* data — the one message
//! hidden in each channel direction plus the corrupted `NeigState_q[p]` —
//! but the `3 → 4` increment requires a message of `q` sent **after** `q`
//! received a message that `p` sent after its start (a genuine causal
//! round trip).
//!
//! The experiment (a) replays the exact Figure 1 configuration and prints
//! its timeline, and (b) *exhaustively enumerates* all adversarial
//! 2-process initial configurations (both hidden messages' flag fields,
//! `q`'s `State`/`NeigState`/`Request`) and reports the maximum
//! stale-driven flag value over all of them: 3, never 4.

use snapstab_core::flag::Flag;
use snapstab_core::pif::{PifApp, PifEvent, PifMsg, PifProcess};
use snapstab_core::request::RequestState;
use snapstab_sim::{
    Capacity, Move, NetworkBuilder, ProcessId, Protocol, RoundRobin, Runner, SimRng, TraceEvent,
};

use crate::table::Table;

/// Trivial application: feeds back a constant.
#[derive(Clone, Debug)]
pub struct ConstApp(pub u32);

impl PifApp<u32, u32> for ConstApp {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

type Proc = PifProcess<u32, u32, ConstApp>;

fn p0() -> ProcessId {
    ProcessId::new(0)
}
fn p1() -> ProcessId {
    ProcessId::new(1)
}

/// One adversarial 2-process initial configuration: the flag fields of the
/// hidden messages and `q`'s corrupted variables.
#[derive(Clone, Copy, Debug)]
pub struct AdversaryConfig {
    /// Hidden message in the channel `q → p`: `(sender_state, echoed_state)`.
    pub msg_qp: Option<(u8, u8)>,
    /// Hidden message in the channel `p → q`.
    pub msg_pq: Option<(u8, u8)>,
    /// `q`'s corrupted `NeigState_q[p]`.
    pub ns_q: u8,
    /// `q`'s corrupted `State_q[p]`.
    pub state_q: u8,
    /// `q`'s corrupted request variable.
    pub req_q: RequestState,
}

/// The exact Figure 1 configuration described in §4.1.
pub fn figure1_config() -> AdversaryConfig {
    AdversaryConfig {
        // "p may increment State_p after receiving the initial message
        // with the flag value pState = 0": hidden q→p message echoing 0.
        msg_qp: Some((4, 0)),
        // "...until receiving (from p) the initial message with the value
        // pState = 2": hidden p→q message carrying sender flag 2.
        msg_pq: Some((2, 0)),
        // "if q starts a PIF-computation, q sends messages with the flag
        // value pState = 1": q's corrupted view of p's flag is 1.
        ns_q: 1,
        state_q: 0,
        // q is about to start its own wave.
        req_q: RequestState::Wait,
    }
}

/// Result of running one adversarial configuration.
#[derive(Clone, Copy, Debug)]
pub struct StaleDrive {
    /// Highest `State_p[q]` reached before any causally-genuine reply
    /// reached `p` (a reply `q` sent at or after first receiving a
    /// post-start message of `p`).
    pub max_stale_flag: u8,
    /// Whether the wave completed (it always must — Termination).
    pub completed: bool,
    /// Steps to the decision.
    pub steps: u64,
}

/// Builds the 2-process system in the given adversarial configuration with
/// `p` requesting a wave.
fn build(config: &AdversaryConfig) -> Runner<Proc, RoundRobin> {
    let mk = |i: usize| {
        PifProcess::with_initial_f(ProcessId::new(i), 2, 0u32, 0u32, ConstApp(100 + i as u32))
    };
    let network = NetworkBuilder::new(2)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(vec![mk(0), mk(1)], network, RoundRobin::new(), 0);

    // Install q's corrupted variables.
    {
        let q = runner.process_mut(p1());
        let mut s = q.core().snapshot();
        s.neig_state[0] = Flag::new(config.ns_q);
        s.state[0] = Flag::new(config.state_q);
        s.request = config.req_q;
        q.core_mut().restore(s);
    }
    // Hide the stale messages. Payload 666 marks them as "sent by nobody".
    if let Some((ss, es)) = config.msg_qp {
        runner
            .network_mut()
            .channel_mut(p1(), p0())
            .unwrap()
            .preload([PifMsg {
                broadcast: 666,
                feedback: 666,
                sender_state: Flag::new(ss),
                echoed_state: Flag::new(es),
            }]);
    }
    if let Some((ss, es)) = config.msg_pq {
        runner
            .network_mut()
            .channel_mut(p0(), p1())
            .unwrap()
            .preload([PifMsg {
                broadcast: 666,
                feedback: 666,
                sender_state: Flag::new(ss),
                echoed_state: Flag::new(es),
            }]);
    }
    // p requests its wave.
    runner.process_mut(p0()).request_broadcast(7);
    runner
}

/// The scripted adversarial schedule that realizes the paper's Figure 1
/// worst case: deliver the stale echo, let `q` start and echo its
/// corrupted `NeigState`, deliver the stale `p → q` message so `q` echoes
/// its flag value, and deliver that echo — three stale increments — all
/// before any post-start message of `p` reaches `q`.
pub fn crafted_schedule() -> Vec<Move> {
    let (d10, d01) = (
        Move::Deliver {
            from: p1(),
            to: p0(),
        },
        Move::Deliver {
            from: p0(),
            to: p1(),
        },
    );
    vec![
        Move::Activate(p0()), // p starts; its send is lost (channel full)
        d10,                  // stale echo 0: State_p 0 -> 1
        Move::Activate(p1()), // q starts; sends echo NeigState_q = 1
        d10,                  // State_p 1 -> 2
        d01,                  // q consumes the stale flag-2 message: NeigState_q <- 2
        d10,                  // q's reply echoes 2: State_p 2 -> 3
    ]
}

/// A seeded random adversarial schedule (delivery-heavy) for the sweep.
pub fn random_schedule(seed: u64, len: usize) -> Vec<Move> {
    let mut rng = SimRng::seed_from(seed);
    (0..len)
        .map(|_| match rng.gen_range(0..6) {
            0 => Move::Activate(p0()),
            1 => Move::Activate(p1()),
            2 | 3 => Move::Deliver {
                from: p1(),
                to: p0(),
            },
            _ => Move::Deliver {
                from: p0(),
                to: p1(),
            },
        })
        .collect()
}

/// Runs one adversarial configuration under an adversarial schedule prefix
/// (inapplicable moves skipped), then fair round-robin to completion, and
/// measures the stale drive.
pub fn run_config(config: &AdversaryConfig, script: &[Move]) -> StaleDrive {
    let mut runner = build(config);
    for &mv in script {
        let applicable = match mv {
            Move::Activate(p) => runner.process(p).has_enabled_action(),
            Move::Deliver { from, to } => !runner
                .network()
                .channel(from, to)
                .expect("valid link")
                .is_empty(),
        };
        if applicable {
            runner
                .execute_move(mv)
                .expect("applicable move cannot error");
        }
    }
    let out = runner
        .run_until(200_000, |r| r.process(p0()).request() == RequestState::Done)
        .expect("run cannot error under round-robin");
    let completed = runner.process(p0()).request() == RequestState::Done;

    // Reconstruct causality from the trace. The channel q→p initially
    // holds `preloaded` messages; the k-th delivery on it beyond those
    // corresponds to the k-th enqueued send of q. A reply of q is
    // *genuine* if q sent it at or after t_causal — the step at which q
    // first received a message p sent after its start.
    let trace = runner.trace();
    let start_step = trace
        .protocol_events_of(p0())
        .find(|(_, e)| matches!(e, PifEvent::Started))
        .map(|(s, _)| s)
        .expect("p started");

    // Post-start sends of p that entered the p→q channel.
    let p_send_steps: Vec<u64> = trace
        .iter()
        .filter_map(|te| match &te.event {
            TraceEvent::Sent { from, to, fate, .. }
                if *from == p0()
                    && *to == p1()
                    && te.step >= start_step
                    && *fate == snapstab_sim::trace::SendFate::Enqueued =>
            {
                Some(te.step)
            }
            _ => None,
        })
        .collect();

    // Deliveries on p→q, in order; the first `preload_pq` are stale.
    let preload_pq = config.msg_pq.is_some() as usize;
    let deliveries_pq: Vec<u64> = trace
        .iter()
        .filter_map(|te| match &te.event {
            TraceEvent::Delivered { from, to, .. } if *from == p0() && *to == p1() => Some(te.step),
            _ => None,
        })
        .collect();
    // t_causal: first delivery on p→q that maps to a post-start send.
    // FIFO: delivery index preload_pq + j carries p's j-th enqueued send
    // ever; post-start sends are a suffix of those.
    let pre_start_sends = trace
        .iter()
        .filter(|te| {
            matches!(&te.event,
                TraceEvent::Sent { from, to, fate, .. }
                    if *from == p0() && *to == p1()
                        && te.step < start_step
                        && *fate == snapstab_sim::trace::SendFate::Enqueued)
        })
        .count();
    let first_genuine_delivery_idx = preload_pq + pre_start_sends;
    let t_causal = deliveries_pq.get(first_genuine_delivery_idx).copied();
    let _ = &p_send_steps;

    // Genuine replies: q's enqueued sends on q→p at/after t_causal.
    let genuine_reply_send_steps: Vec<u64> = match t_causal {
        None => Vec::new(),
        Some(tc) => trace
            .iter()
            .filter_map(|te| match &te.event {
                TraceEvent::Sent { from, to, fate, .. }
                    if *from == p1()
                        && *to == p0()
                        && te.step >= tc
                        && *fate == snapstab_sim::trace::SendFate::Enqueued =>
                {
                    Some(te.step)
                }
                _ => None,
            })
            .collect(),
    };

    // Map q→p deliveries to send steps; find t_reply, the step of the
    // first delivered genuine reply.
    let preload_qp = config.msg_qp.is_some() as usize;
    let qp_send_steps: Vec<u64> = trace
        .iter()
        .filter_map(|te| match &te.event {
            TraceEvent::Sent { from, to, fate, .. }
                if *from == p1()
                    && *to == p0()
                    && *fate == snapstab_sim::trace::SendFate::Enqueued =>
            {
                Some(te.step)
            }
            _ => None,
        })
        .collect();
    let deliveries_qp: Vec<u64> = trace
        .iter()
        .filter_map(|te| match &te.event {
            TraceEvent::Delivered { from, to, .. } if *from == p1() && *to == p0() => Some(te.step),
            _ => None,
        })
        .collect();
    let t_reply = deliveries_qp.iter().enumerate().find_map(|(idx, &dstep)| {
        if idx < preload_qp {
            return None; // stale preloaded message
        }
        let send_step = qp_send_steps.get(idx - preload_qp)?;
        if genuine_reply_send_steps.contains(send_step) {
            Some(dstep)
        } else {
            None
        }
    });

    // Highest flag p reached strictly before the first genuine reply was
    // delivered: count increments, i.e. ReceiveFck marks 4; instead track
    // via the flag at each step using the event stream: increments happen
    // only on deliveries to p, and State starts at 0 on Started.
    let boundary = t_reply.unwrap_or(u64::MAX);
    let mut stale_flag = 0u8;
    let mut flag = 0u8;
    for te in trace.iter() {
        if te.step <= start_step {
            continue;
        }
        if let TraceEvent::Delivered { from, to, msg } = &te.event {
            if *from == p1() && *to == p0() && msg.echoed_state == Flag::new(flag) && flag < 4 {
                flag += 1;
                if te.step < boundary {
                    stale_flag = stale_flag.max(flag);
                }
            }
        }
    }

    StaleDrive {
        max_stale_flag: stale_flag,
        completed,
        steps: out.steps,
    }
}

/// The maximum stale drive over the schedule family: fair round-robin,
/// the crafted Figure 1 schedule, and `extra_random` seeded random
/// adversarial schedules.
pub fn max_stale_over_schedules(config: &AdversaryConfig, extra_random: u64) -> StaleDrive {
    let mut best = run_config(config, &[]);
    let mut consider = |r: StaleDrive| {
        if r.max_stale_flag > best.max_stale_flag || !r.completed {
            best = StaleDrive {
                completed: best.completed && r.completed,
                ..r
            };
        } else {
            best.completed &= r.completed;
        }
    };
    consider(run_config(config, &crafted_schedule()));
    for seed in 0..extra_random {
        consider(run_config(config, &random_schedule(seed, 24)));
    }
    best
}

/// Renders the step-by-step timeline of the exact Figure 1 configuration.
pub fn figure1_timeline() -> String {
    let config = figure1_config();
    let mut runner = build(&config);
    let mut table = Table::new(&["step", "event", "State_p[q]", "NeigState_q[p]"]);
    let mut last = (Flag::new(9), Flag::new(9));
    let record = |runner: &Runner<Proc, RoundRobin>,
                  mv: Move,
                  last: &mut (Flag, Flag),
                  table: &mut Table| {
        let sp = runner.process(p0()).core().state_of(p1());
        let nq = runner.process(p1()).core().neig_state_of(p0());
        if (sp, nq) != *last {
            table.row(&[
                runner.step_count().to_string(),
                format!("{mv:?}"),
                sp.to_string(),
                nq.to_string(),
            ]);
            *last = (sp, nq);
        }
    };
    for mv in crafted_schedule() {
        runner
            .execute_move(mv)
            .expect("crafted schedule is applicable");
        record(&runner, mv, &mut last, &mut table);
    }
    for _ in 0..200_000u64 {
        if runner.process(p0()).request() == RequestState::Done {
            break;
        }
        let Ok(Some(mv)) = runner.step() else { break };
        record(&runner, mv, &mut last, &mut table);
    }
    table.render()
}

/// Runs the full F1 experiment. `fast` samples the enumeration instead of
/// exhausting it.
pub fn run(fast: bool) -> String {
    let mut out = String::new();
    out.push_str("=== F1: Figure 1 — worst case of Protocol PIF ===\n\n");

    // (a) The exact Figure 1 configuration, under the crafted schedule.
    let fig = run_config(&figure1_config(), &crafted_schedule());
    out.push_str(&format!(
        "figure-1 configuration: stale-driven State_p[q] reaches {} (paper: 3), \
         wave completed = {}, steps = {}\n\n",
        fig.max_stale_flag, fig.completed, fig.steps
    ));
    out.push_str("timeline of flag changes (figure-1 configuration):\n");
    out.push_str(&figure1_timeline());
    out.push('\n');

    // (b) Exhaustive adversary enumeration.
    let reqs = [RequestState::Wait, RequestState::In, RequestState::Done];
    let mut table = Table::new(&[
        "adversary configs",
        "max stale flag",
        "completed",
        "stale=4",
    ]);
    let mut max_stale = 0u8;
    let mut all_completed = true;
    let mut stale_complete = 0usize;
    let mut count = 0usize;
    let stride = if fast { 7 } else { 1 };
    let mut idx = 0usize;
    for e1 in 0..5u8 {
        for s1 in 0..5u8 {
            for s2 in 0..5u8 {
                for e2 in 0..5u8 {
                    for ns in 0..5u8 {
                        for sq in [0u8, 2, 4] {
                            for rq in reqs {
                                idx += 1;
                                if !idx.is_multiple_of(stride) {
                                    continue;
                                }
                                let c = AdversaryConfig {
                                    msg_qp: Some((s1, e1)),
                                    msg_pq: Some((s2, e2)),
                                    ns_q: ns,
                                    state_q: sq,
                                    req_q: rq,
                                };
                                let r = max_stale_over_schedules(&c, 4);
                                count += 1;
                                max_stale = max_stale.max(r.max_stale_flag);
                                all_completed &= r.completed;
                                if r.max_stale_flag >= 4 {
                                    stale_complete += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    table.row(&[
        count.to_string(),
        max_stale.to_string(),
        all_completed.to_string(),
        stale_complete.to_string(),
    ]);
    out.push_str("\nexhaustive adversary sweep (both hidden messages x q's variables):\n");
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nverdict: stale data drives State_p[q] to at most {max_stale} (paper's Figure 1 \
         bound: 3); a wave NEVER completes without a genuine round trip (stale=4 count: \
         {stale_complete}).\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reaches_exactly_three_stale_increments() {
        let r = run_config(&figure1_config(), &crafted_schedule());
        assert_eq!(r.max_stale_flag, 3, "the Figure 1 tight case");
        assert!(r.completed, "Termination still holds");
    }

    #[test]
    fn fair_schedule_is_milder_than_the_adversary() {
        let rr = run_config(&figure1_config(), &[]);
        assert!(rr.completed);
        assert!(rr.max_stale_flag <= 3);
    }

    #[test]
    fn no_adversary_completes_on_stale_data() {
        // Spot-check a grid of adversaries: none drives the flag to 4
        // before a genuine round trip.
        for e1 in 0..5u8 {
            for ns in 0..5u8 {
                let c = AdversaryConfig {
                    msg_qp: Some((4, e1)),
                    msg_pq: Some((2, 0)),
                    ns_q: ns,
                    state_q: 0,
                    req_q: RequestState::Wait,
                };
                let r = max_stale_over_schedules(&c, 3);
                assert!(r.max_stale_flag <= 3, "{c:?} -> {r:?}");
                assert!(r.completed);
            }
        }
    }

    #[test]
    fn empty_adversary_is_benign() {
        let c = AdversaryConfig {
            msg_qp: None,
            msg_pq: None,
            ns_q: 4,
            state_q: 4,
            req_q: RequestState::Done,
        };
        let r = max_stale_over_schedules(&c, 3);
        assert!(r.completed);
        // With no hidden messages, at most one stale increment can come
        // from q's corrupted NeigState echo.
        assert!(r.max_stale_flag <= 1, "{r:?}");
    }

    #[test]
    fn timeline_renders() {
        let t = figure1_timeline();
        assert!(t.contains("State_p[q]"));
    }
}
