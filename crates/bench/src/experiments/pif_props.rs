//! **T2 + P1 — Theorem 2 (Specification 1) and Property 1.**
//!
//! Sweeps system size and loss rate; for each cell, draws R arbitrary
//! initial configurations (`I = C`), lets the corrupted (non-started)
//! computations drain, then issues a *genuine* request and checks every
//! property of Specification 1 on the resulting trace, plus Property 1
//! (the wave flushed every pre-loaded message from the initiator's
//! channels). A snap-stabilizing protocol must score 100 % in every
//! column.

use snapstab_core::pif::{PifApp, PifMsg, PifProcess};
use snapstab_core::request::RequestState;
use snapstab_core::spec::{channels_flushed, check_bare_pif_wave};
use snapstab_sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

use crate::stats::Summary;
use crate::table::Table;

/// Deterministic app: feeds back `base + my index`.
#[derive(Clone, Debug)]
struct IndexedApp {
    value: u32,
}

impl PifApp<u32, u32> for IndexedApp {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.value
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

type Proc = PifProcess<u32, u32, IndexedApp>;

/// Result of one corrupted-start trial.
#[derive(Clone, Copy, Debug)]
pub struct Trial {
    /// All five Specification 1 properties held.
    pub spec_ok: bool,
    /// Start property held.
    pub start_ok: bool,
    /// Termination held (decision within budget).
    pub term_ok: bool,
    /// Correctness (broadcasts + feedbacks) held.
    pub correct_ok: bool,
    /// Decision exactness held.
    pub decision_ok: bool,
    /// Property 1 held (no pre-loaded junk survived in the initiator's
    /// channels).
    pub flush_ok: bool,
    /// Steps from request to decision.
    pub steps: u64,
}

/// Runs one trial: corrupt, drain, request, decide, check.
pub fn trial(n: usize, loss: f64, seed: u64) -> Trial {
    const JUNK: u32 = 0xDEAD_BEEF;
    let expected_b: u32 = 0xC0FF_EE00;
    let make = |i: usize| {
        PifProcess::with_initial_f(
            ProcessId::new(i),
            n,
            0u32,
            0u32,
            IndexedApp {
                value: 1000 + i as u32,
            },
        )
    };
    let processes: Vec<Proc> = (0..n).map(make).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    if loss > 0.0 {
        runner.set_loss(LossModel::probabilistic(loss));
    }

    // Arbitrary initial configuration; forge junk with a recognizable
    // payload so Property 1 is checkable.
    let mut rng = SimRng::seed_from(seed ^ 0x5EED);
    CorruptionPlan::processes_only().apply(&mut runner, &mut rng);
    let links: Vec<_> = runner.network().links().collect();
    for (f, t) in links {
        if rng.gen_bool(0.5) {
            let msg = PifMsg {
                broadcast: JUNK,
                feedback: JUNK,
                sender_state: snapstab_core::flag::Flag::new(rng.gen_range(0..5) as u8),
                echoed_state: snapstab_core::flag::Flag::new(rng.gen_range(0..5) as u8),
            };
            runner
                .network_mut()
                .channel_mut(f, t)
                .unwrap()
                .set_contents([msg]);
        }
    }

    let initiator = ProcessId::new(0);
    // Drain: the user discipline only allows a request once Request=Done.
    let _ = runner.run_until(500_000, |r| {
        r.process(initiator).request() == RequestState::Done
    });
    let request_step = runner.step_count();
    runner.mark(initiator, "request");
    let requested = runner.process_mut(initiator).request_broadcast(expected_b);

    let run = runner.run_until(2_000_000, |r| {
        r.process(initiator).request() == RequestState::Done
    });
    let decided =
        run.is_ok() && runner.process(initiator).request() == RequestState::Done && requested;

    let verdict = check_bare_pif_wave(
        runner.trace(),
        initiator,
        n,
        request_step,
        &expected_b,
        |q| 1000 + q.index() as u32,
    );
    let flush_ok = channels_flushed(runner.network(), initiator, |m: &PifMsg<u32, u32>| {
        m.broadcast == JUNK && m.feedback == JUNK
    });

    Trial {
        spec_ok: verdict.holds() && flush_ok,
        start_ok: verdict.started,
        term_ok: decided && verdict.decided,
        correct_ok: verdict.broadcasts_received && verdict.feedbacks_received,
        decision_ok: verdict.decision_exact,
        flush_ok,
        steps: verdict.wave_steps().unwrap_or(u64::MAX),
    }
}

/// Runs the T2 + P1 sweep and renders the report table.
pub fn run(fast: bool) -> String {
    let trials = if fast { 20 } else { 200 };
    let ns = if fast {
        vec![2, 3, 5]
    } else {
        vec![2, 3, 5, 8, 12]
    };
    let losses = [0.0, 0.1, 0.3];

    let mut out = String::new();
    out.push_str("=== T2 + P1: Specification 1 (PIF) from arbitrary configurations ===\n\n");
    let mut table = Table::new(&[
        "n",
        "loss",
        "trials",
        "start",
        "term",
        "correct",
        "decision",
        "flush(P1)",
        "steps mean/p95",
    ]);
    let mut all_ok = true;
    for &n in &ns {
        for &loss in &losses {
            let results: Vec<Trial> = (0..trials)
                .map(|t| trial(n, loss, (n as u64) << 32 | (loss * 100.0) as u64 ^ t))
                .collect();
            let count = |f: fn(&Trial) -> bool| results.iter().filter(|t| f(t)).count();
            let steps = Summary::of_u64(results.iter().filter(|t| t.term_ok).map(|t| t.steps));
            all_ok &= results.iter().all(|t| t.spec_ok);
            table.row(&[
                n.to_string(),
                format!("{loss:.1}"),
                trials.to_string(),
                format!("{}/{trials}", count(|t| t.start_ok)),
                format!("{}/{trials}", count(|t| t.term_ok)),
                format!("{}/{trials}", count(|t| t.correct_ok)),
                format!("{}/{trials}", count(|t| t.decision_ok)),
                format!("{}/{trials}", count(|t| t.flush_ok)),
                steps.mean_p95(),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nverdict: every started wave satisfied Specification 1 and Property 1: {}\n",
        if all_ok {
            "YES (snap-stabilizing)"
        } else {
            "NO — VIOLATION FOUND"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_all_pass_small_grid() {
        for seed in 0..8 {
            let t = trial(3, 0.0, seed);
            assert!(t.spec_ok, "seed {seed}: {t:?}");
        }
    }

    #[test]
    fn trials_pass_under_loss() {
        for seed in 0..4 {
            let t = trial(3, 0.3, 100 + seed);
            assert!(t.spec_ok, "seed {seed}: {t:?}");
        }
    }

    #[test]
    fn trials_pass_for_two_processes() {
        for seed in 0..4 {
            let t = trial(2, 0.1, 200 + seed);
            assert!(t.spec_ok, "seed {seed}: {t:?}");
        }
    }
}
