//! **S12 (supplementary) — the PIF applications' first-request exactness.**
//!
//! Not a paper artifact (the paper only *names* these applications in
//! §4.1), but the same measurement discipline as T2/T3: from arbitrary
//! initial configurations, the first requested snapshot / election / reset
//! must already be exact, and the barrier must never be crossed ahead of a
//! genuinely-behind peer.

use snapstab_apps::{
    check_detection, BarrierProcess, LeaderProcess, ResetProcess, Resettable, SnapshotProcess,
    TerminationProcess,
};
use snapstab_core::request::RequestState;
use snapstab_sim::{
    Capacity, CorruptionPlan, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

use crate::table::Table;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Dirty(bool);

impl Resettable for Dirty {
    fn reset(&mut self) {
        self.0 = false;
    }
}

/// One corrupted-start snapshot trial: is the first requested snapshot
/// exact?
pub fn snapshot_trial(n: usize, seed: u64) -> bool {
    let processes = (0..n)
        .map(|i| SnapshotProcess::new(p(i), n, 3 * i as u32))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0xA1);
    CorruptionPlan::full().apply(&mut runner, &mut rng);
    for i in 0..n {
        runner.process_mut(p(i)).set_value(3 * i as u32);
    }
    let _ = runner.run_until(1_000_000, |r| {
        r.process(p(0)).request() == RequestState::Done
    });
    if !runner.process_mut(p(0)).request_snapshot() {
        return false;
    }
    if runner
        .run_until(3_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .is_err()
    {
        return false;
    }
    let expected: Vec<u32> = (0..n).map(|i| 3 * i as u32).collect();
    runner.process(p(0)).snapshot_vector() == Some(expected)
}

/// One corrupted-start election trial.
pub fn leader_trial(n: usize, seed: u64) -> bool {
    let ids: Vec<u64> = (0..n).map(|i| 900 - 11 * i as u64).collect();
    let processes = (0..n)
        .map(|i| LeaderProcess::new(p(i), n, ids[i]))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0xA2);
    CorruptionPlan::full().apply(&mut runner, &mut rng);
    let _ = runner.run_until(1_000_000, |r| {
        r.process(p(0)).request() == RequestState::Done
    });
    if !runner.process_mut(p(0)).request_election() {
        return false;
    }
    if runner
        .run_until(3_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .is_err()
    {
        return false;
    }
    runner.process(p(0)).elected() == Some((ids[n - 1], p(n - 1)))
}

/// One corrupted-start reset trial: did everyone pass through `reset`?
pub fn reset_trial(n: usize, seed: u64) -> bool {
    let processes = (0..n)
        .map(|i| ResetProcess::new(p(i), n, Dirty(true)))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0xA3);
    CorruptionPlan::full().apply(&mut runner, &mut rng);
    for i in 0..n {
        runner.process_mut(p(i)).app_mut().0 = true; // dirty again post-burst
    }
    let _ = runner.run_until(1_000_000, |r| {
        r.process(p(0)).request() == RequestState::Done
    });
    if !runner.process_mut(p(0)).request_reset() {
        return false;
    }
    if runner
        .run_until(3_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .is_err()
    {
        return false;
    }
    (0..n).all(|i| !runner.process(p(i)).app().0)
}

/// One corrupted-start barrier trial: under continuous work, do phases
/// re-synchronize to within one of each other?
pub fn barrier_trial(n: usize, seed: u64) -> bool {
    let processes = (0..n).map(|i| BarrierProcess::new(p(i), n)).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0xA4);
    CorruptionPlan::full().apply(&mut runner, &mut rng);
    let mut executed = 0;
    while executed < 60_000 {
        let Ok(out) = runner.run_steps(400) else {
            return false;
        };
        executed += out.steps;
        for i in 0..n {
            let proc = runner.process_mut(p(i));
            if !proc.is_syncing() {
                proc.finish_work();
            }
        }
    }
    let phases: Vec<u64> = (0..n).map(|i| runner.process(p(i)).phase()).collect();
    let min = *phases.iter().min().unwrap();
    let max = *phases.iter().max().unwrap();
    max - min <= 1 && (0..n).all(|i| runner.process(p(i)).passes() > 0)
}

/// One corrupted-start termination-detection trial: the first requested
/// detection decides, and a `terminated` claim is window-sound.
pub fn termination_trial(n: usize, seed: u64) -> bool {
    let processes = (0..n).map(|i| TerminationProcess::new(p(i), n)).collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0xA5);
    CorruptionPlan::full().apply(&mut runner, &mut rng);
    // Fresh workload on top of the corruption.
    runner.process_mut(p(n - 1)).seed_work(8);
    let _ = runner.run_until(2_000_000, |r| {
        r.process(p(0)).request() == RequestState::Done
    });
    if runner.process(p(0)).request() != RequestState::Done {
        return false;
    }
    let req_step = runner.step_count();
    if !runner.process_mut(p(0)).request_detection() {
        return false;
    }
    if runner
        .run_until(3_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .is_err()
    {
        return false;
    }
    check_detection(runner.trace(), p(0), n, req_step).holds()
}

/// Runs the supplementary apps sweep.
pub fn run(fast: bool) -> String {
    let trials = if fast { 15 } else { 100 };
    let ns = [3usize, 5];
    let mut out = String::new();
    out.push_str(
        "=== S12 (supplementary): PIF applications, first request after corruption ===\n\n",
    );
    let mut table = Table::new(&["app", "n", "trials", "exact"]);
    let mut all_ok = true;
    for &n in &ns {
        for (name, f) in [
            ("snapshot", snapshot_trial as fn(usize, u64) -> bool),
            ("leader election", leader_trial),
            ("reset", reset_trial),
            ("barrier (resync)", barrier_trial),
            ("termination detection", termination_trial),
        ] {
            let ok = (0..trials).filter(|&s| f(n, (n as u64) << 24 | s)).count();
            all_ok &= ok == trials as usize;
            table.row(&[
                name.to_string(),
                n.to_string(),
                trials.to_string(),
                format!("{ok}/{trials}"),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nverdict: every application inherits the first-request guarantee from Theorem 2: {}\n",
        if all_ok {
            "YES"
        } else {
            "NO — VIOLATION FOUND"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_app_trials_pass_spot_check() {
        for seed in 0..3 {
            assert!(snapshot_trial(3, seed), "snapshot seed {seed}");
            assert!(leader_trial(3, seed), "leader seed {seed}");
            assert!(reset_trial(3, seed), "reset seed {seed}");
            assert!(termination_trial(3, seed), "termination seed {seed}");
        }
        assert!(barrier_trial(3, 1));
    }
}
