//! **T1 — Theorem 1: the adversarial construction, end to end.**
//!
//! For each system size, records the two witness executions, composes the
//! adversarial configuration `γ₀`, reports how many "sent by nobody"
//! messages it needs per channel, probes feasibility across capacity
//! bounds, and replays on unbounded channels to exhibit two genuine
//! requesters simultaneously inside the critical section.
//!
//! The bounded-capacity control group (the §4 side of the dichotomy) is
//! experiment T4: the same protocol on capacity-1 channels never exhibits
//! a genuine overlap.

use snapstab_impossibility::DoubleWinDemo;
use snapstab_sim::ProcessId;

use crate::table::Table;

/// Runs the T1 experiment and renders the report.
pub fn run(fast: bool) -> String {
    let ns = if fast { vec![3] } else { vec![3, 4, 5] };
    let probe = [1usize, 2, 4, 8, 16, 32, 64];

    let mut out = String::new();
    out.push_str("=== T1: Theorem 1 — impossibility with unbounded channels ===\n\n");
    let mut table = Table::new(&[
        "n",
        "max |MesSeq| per channel",
        "total preloaded",
        "infeasible for c <",
        "violation on unbounded",
        "bad-factor step",
        "genuine CS overlaps",
    ]);
    let mut all_violated = true;
    for &n in &ns {
        let demo = DoubleWinDemo {
            n,
            a: ProcessId::new(1),
            b: ProcessId::new(2),
            cs_duration: 8,
            seed: 0xD0 + n as u64,
            max_steps: 4_000_000,
        };
        let outcome = demo.run(&probe).expect("demo must run");
        let infeasible_below = outcome.max_channel_load;
        all_violated &= outcome.violation_exhibited();
        table.row(&[
            n.to_string(),
            outcome.max_channel_load.to_string(),
            outcome.total_preloaded.to_string(),
            infeasible_below.to_string(),
            outcome.replay.violated().to_string(),
            outcome
                .replay
                .bad_factor_step
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            outcome.report.genuine_overlaps.len().to_string(),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nverdict: with unbounded channels the mutual-exclusion bad factor is exhibited \
         for every n: {}.\nWith capacity below the per-channel |MesSeq|, the construction's \
         initial configuration does not exist — the paper's escape hatch (§4).\n",
        if all_violated { "YES" } else { "NO" }
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_contains_verdict() {
        let r = super::run(true);
        assert!(r.contains("violation on unbounded"));
        assert!(r.contains("YES"));
    }
}
