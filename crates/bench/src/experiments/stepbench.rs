//! **Q5 — raw step-loop throughput of the simulator.**
//!
//! Drives a sustained IDs-Learning workload (the initiator re-requests a
//! wave whenever the previous one decides) with trace recording off, and
//! reports wall-clock nanoseconds per atomic step at several system sizes.
//! The numbers are the repo's performance trajectory: every PR that touches
//! the step loop reruns this and compares against the committed
//! `BENCH_STEPLOOP.json`.

use std::time::Instant;

use snapstab_core::idl::IdlProcess;
use snapstab_sim::{Capacity, NetworkBuilder, ProcessId, RoundRobin, Runner};

use crate::table::Table;

/// Wall-clock cost of the step loop at one system size.
#[derive(Clone, Copy, Debug)]
pub struct StepCost {
    /// System size.
    pub n: usize,
    /// Atomic steps executed.
    pub steps: u64,
    /// Total wall time in nanoseconds.
    pub wall_ns: u128,
}

impl StepCost {
    /// Nanoseconds per atomic step.
    pub fn ns_per_step(&self) -> f64 {
        if self.steps == 0 {
            return f64::NAN;
        }
        self.wall_ns as f64 / self.steps as f64
    }

    /// Steps per second.
    pub fn steps_per_sec(&self) -> f64 {
        1e9 / self.ns_per_step()
    }
}

/// Runs `target_steps` atomic steps of a sustained IDL workload at size
/// `n` (trace recording off) and measures the wall time.
pub fn measure(n: usize, target_steps: u64, seed: u64) -> StepCost {
    let processes: Vec<IdlProcess> = (0..n)
        .map(|i| IdlProcess::new(ProcessId::new(i), n, 10 + i as u64))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RoundRobin::new(), seed);
    runner.set_record_trace(false);
    let initiator = ProcessId::new(0);
    runner.process_mut(initiator).request_learning();

    let chunk = 4_096u64.min(target_steps.max(1));
    let mut executed = 0u64;
    let start = Instant::now();
    while executed < target_steps {
        let out = runner
            .run_steps(chunk.min(target_steps - executed))
            .expect("step loop runs");
        executed += out.steps;
        if out.steps == 0 {
            // Quiescent: the wave decided — start the next one to keep the
            // workload sustained. If re-arming fails the workload is stuck;
            // stop rather than spin.
            if !runner.process_mut(initiator).request_learning() {
                break;
            }
        }
    }
    StepCost {
        n,
        steps: executed,
        wall_ns: start.elapsed().as_nanos(),
    }
}

/// Runs the sweep at the standard sizes. The `n = 512` point exists to
/// watch the delta-based link resync: before it, every step that moved
/// the live-link version paid an O(live links) copy, which dominates at
/// this size.
pub fn sweep(fast: bool) -> Vec<StepCost> {
    let sizes: &[usize] = if fast { &[8, 32] } else { &[8, 32, 128, 512] };
    let steps = if fast { 50_000 } else { 400_000 };
    sizes.iter().map(|&n| measure(n, steps, 0xBEE5)).collect()
}

/// Renders already-measured results as the repo's standard ASCII table.
pub fn render(results: &[StepCost]) -> String {
    let mut out = String::new();
    out.push_str("=== Q5: step-loop throughput (trace recording off) ===\n\n");
    let mut table = Table::new(&["n", "steps", "wall ms", "ns/step", "steps/s"]);
    for r in results {
        table.row(&[
            r.n.to_string(),
            r.steps.to_string(),
            format!("{:.1}", r.wall_ns as f64 / 1e6),
            format!("{:.1}", r.ns_per_step()),
            format!("{:.0}", r.steps_per_sec()),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Measures the sweep and renders it.
pub fn run(fast: bool) -> String {
    render(&sweep(fast))
}

/// The sweep as a JSON document (hand-rolled: the workspace is offline and
/// carries no serde), shaped for trajectory comparison across PRs.
pub fn to_json(results: &[StepCost]) -> String {
    let mut out = String::from("{\n  \"experiment\": \"step_loop_throughput\",\n  \"unit\": \"ns_per_step\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"steps\": {}, \"wall_ns\": {}, \"ns_per_step\": {:.2}}}{}\n",
            r.n,
            r.steps,
            r.wall_ns,
            r.ns_per_step(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_executes_requested_steps() {
        let c = measure(4, 2_000, 1);
        assert_eq!(c.n, 4);
        assert!(
            c.steps >= 2_000,
            "sustained workload should fill the budget, got {}",
            c.steps
        );
        assert!(c.wall_ns > 0);
        assert!(c.ns_per_step() > 0.0);
    }

    #[test]
    fn json_shape() {
        let j = to_json(&[StepCost {
            n: 8,
            steps: 100,
            wall_ns: 1000,
        }]);
        assert!(j.contains("\"n\": 8"));
        assert!(j.contains("step_loop_throughput"));
        assert!(j.trim_end().ends_with('}'));
    }
}
