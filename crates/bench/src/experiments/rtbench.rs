//! **Q6 — live-runtime mutex-service throughput, single-leader and
//! sharded.**
//!
//! Drives the `snapstab-runtime` mutex services — Algorithm 3 on one OS
//! thread per process over the concurrent lossy transport — with a
//! saturating client request stream, and reports end-to-end requests/sec,
//! grants/sec and transport msgs/sec.
//!
//! Seven sweeps feed `BENCH_RUNTIME.json`:
//!
//! * the **baseline** `n × loss` sweep
//!   ([`run_mutex_service_on`]: one leader, one request
//!   per grant) — the protocol-bound curve PR 2 committed;
//! * the **sharded** `shards × batch` sweep
//!   ([`run_sharded_service`]: `S` leaders over
//!   hash-partitioned resource keys, up to `batch` non-conflicting
//!   requests per grant) — the curve that multiplies it — including a
//!   shallow-vs-deep client-queue pair at `n = 64` (the `queue_depth`
//!   lever);
//! * the **udp** transport sweep: the same single-leader service at
//!   `n ∈ {8, 16, 32}` over the in-memory transport and over real UDP
//!   loopback sockets (`snapstab-net`), side by side, so the cost of
//!   crossing the kernel's datagram stack is a committed number. Every
//!   row carries a `transport` tag;
//! * the **forwarding** `n × loss` sweep
//!   ([`run_forwarding_service_on`]: the snap-stabilizing message
//!   forwarding protocol, every run starting from adversarially
//!   stale-pre-filled buffers) — end-to-end payload delivery, the first
//!   non-mutex workload in the artifact — plus an in-memory-vs-UDP pair
//!   (rows tagged by `transport` like the udp sweep);
//! * the **chaos** sweep ([`run_mutex_service_chaos_on`]): the
//!   single-leader service under every seeded fault mix
//!   (`corrupt`, `crash`, `partition`, `storm`, `all`) with the
//!   supervised self-healing runtime, over the in-memory transport and
//!   over UDP loopback. Each row commits the *recovery time* — fault
//!   burst to next end-to-end completion — as p50/p99, plus the
//!   supervisor intervention count and the number of trace epochs the
//!   per-epoch Specification 3 checker judged (every row asserts the
//!   verdict holds before it can land in the artifact);
//! * the **observability** sweep
//!   ([`run_monitored_mutex_service_on`]): the single-leader service
//!   with the snap-stabilizing snapshot monitor riding the same
//!   transport, against an identically-configured unmonitored baseline
//!   (three interleaved samples per pair, median-by-wall halves
//!   committed). Each row commits the monitoring overhead (req/s and
//!   p99 latency, monitor off vs on), the cut rate and the mean cut
//!   staleness, and
//!   is gated by a trace-recorded audit run at the same configuration
//!   whose every decided cut must pass executable Specification 5
//!   (`analyze_snapshot_trace`) before the row can land in the artifact;
//! * the **mux** runtime sweep ([`run_mutex_service_mux`]): the
//!   single-leader service on the event-driven multiplexed backend —
//!   N protocol instances over a small worker pool — at
//!   `n ∈ {64, 256, 1024}`, paired with the thread backend at `n = 64`
//!   (its practical ceiling on this class of hardware; larger n are
//!   mux-only). Every row carries a `backend` tag (`threads`/`mux`) and
//!   the pool size, so the committed pair is the acceptance evidence
//!   that the mux backend beats thread-per-process where both exist and
//!   keeps scaling where threads cannot.
//!
//! Every row serializes the latency *distribution* (mean, p50, p99), not
//! just the mean, and the emitted JSON is parsed back through the bench's
//! own schema ([`from_json`]) before it can land in the committed
//! artifact — field drift fails the binary, not the next PR.

use std::time::Duration;

use snapstab_core::spec::{analyze_me_epochs, analyze_snapshot_trace};
use snapstab_net::UdpLoopback;
use snapstab_runtime::{
    run_forwarding_service_on, run_monitored_mutex_service_mux_on, run_monitored_mutex_service_on,
    run_mutex_service_chaos_on, run_mutex_service_mux, run_mutex_service_mux_on,
    run_mutex_service_on, run_sharded_service, ChaosMix, ChaosPlan, ForwardingServiceConfig,
    InMemory, LiveConfig, MonitorConfig, MutexServiceConfig, ShardedServiceConfig,
};

use crate::jsonv::{self, Value};
use crate::stats::Summary;
use crate::table::Table;

/// The transport backend a row was measured on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RtTransport {
    /// The in-process `LiveLink` transport (`snapstab_runtime::InMemory`).
    InMem,
    /// Real UDP loopback sockets (`snapstab_net::UdpLoopback`).
    Udp,
}

impl RtTransport {
    /// The JSON tag of this backend.
    pub fn as_str(self) -> &'static str {
        match self {
            RtTransport::InMem => "inmem",
            RtTransport::Udp => "udp",
        }
    }

    /// Parses a JSON tag.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "inmem" => Some(RtTransport::InMem),
            "udp" => Some(RtTransport::Udp),
            _ => None,
        }
    }
}

/// One measured configuration (baseline rows have `shards == batch == 1`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RtResult {
    /// System size (worker threads).
    pub n: usize,
    /// The transport backend the row was measured on.
    pub transport: RtTransport,
    /// In-transit loss probability.
    pub loss: f64,
    /// Independent protocol instances (leaders).
    pub shards: usize,
    /// Maximum client requests per critical-section grant.
    pub batch: usize,
    /// Requests injected into the service.
    pub injected: u64,
    /// Requests served end-to-end.
    pub served: u64,
    /// Critical-section grants performed.
    pub grants: u64,
    /// Critical-section entries summed over all processes and shards.
    pub cs_entries: u64,
    /// Transport messages enqueued.
    pub msgs: u64,
    /// Wall-clock nanoseconds.
    pub wall_ns: u128,
    /// Mean service latency in nanoseconds (0 if nothing served).
    pub mean_latency_ns: u128,
    /// Median service latency in nanoseconds.
    pub p50_latency_ns: u128,
    /// 99th-percentile service latency in nanoseconds.
    pub p99_latency_ns: u128,
}

impl RtResult {
    /// Served requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        self.served as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Critical-section grants per second.
    pub fn grants_per_sec(&self) -> f64 {
        self.grants as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Transport messages per second.
    pub fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Mean requests served per grant (the realized batch factor).
    pub fn mean_batch(&self) -> f64 {
        if self.grants == 0 {
            0.0
        } else {
            self.served as f64 / self.grants as f64
        }
    }
}

/// Summarizes a latency sample into `(mean, p50, p99)` nanoseconds.
fn latency_stats(latencies: &[Duration]) -> (u128, u128, u128) {
    if latencies.is_empty() {
        return (0, 0, 0);
    }
    let s = Summary::of(latencies.iter().map(|d| d.as_nanos() as f64));
    (s.mean as u128, s.p50 as u128, s.p99 as u128)
}

/// Measures one baseline (single-leader, unbatched) configuration:
/// `requests_per_process` client requests per process on the given
/// transport backend, stopping early at `budget`.
pub fn measure(
    n: usize,
    transport: RtTransport,
    loss: f64,
    requests_per_process: u64,
    budget: Duration,
    seed: u64,
) -> RtResult {
    let cfg = MutexServiceConfig {
        n,
        requests_per_process,
        cs_duration: 0,
        live: LiveConfig {
            loss,
            seed,
            record_trace: false,
            ..LiveConfig::default()
        },
        time_budget: budget,
    };
    let report = match transport {
        RtTransport::InMem => run_mutex_service_on(&cfg, &InMemory),
        RtTransport::Udp => run_mutex_service_on(&cfg, &UdpLoopback::new()),
    }
    .expect("transport setup (guard UDP rows with `udp_available`)");
    let (mean_latency_ns, p50_latency_ns, p99_latency_ns) = latency_stats(&report.latencies);
    RtResult {
        n,
        transport,
        loss,
        shards: 1,
        batch: 1,
        injected: report.injected,
        served: report.served,
        grants: report.served, // one grant per request in the baseline
        cs_entries: report.cs_entries,
        msgs: report.stats.links.enqueued,
        wall_ns: report.wall.as_nanos(),
        mean_latency_ns,
        p50_latency_ns,
        p99_latency_ns,
    }
}

/// Measures one sharded, batching configuration (in-memory transport).
/// A non-zero `queue_depth` replaces `requests_per_process` with
/// per-shard client queues starting `≈ queue_depth` deep.
#[allow(clippy::too_many_arguments)]
pub fn measure_sharded(
    n: usize,
    loss: f64,
    shards: usize,
    batch: usize,
    requests_per_process: u64,
    queue_depth: u64,
    budget: Duration,
    seed: u64,
) -> RtResult {
    let cfg = ShardedServiceConfig {
        n,
        shards,
        batch,
        requests_per_process,
        key_space: 1 << 16,
        cs_duration: 0,
        live: LiveConfig {
            loss,
            seed,
            record_trace: false,
            ..LiveConfig::default()
        },
        time_budget: budget,
    };
    let cfg = if queue_depth > 0 {
        cfg.with_queue_depth(queue_depth)
    } else {
        cfg
    };
    let report = run_sharded_service(&cfg);
    let cs_entries = report
        .processes
        .iter()
        .map(|m| {
            (0..m.shard_count())
                .map(|s| m.shard(s).counters().cs_entries)
                .sum::<u64>()
        })
        .sum();
    let (mean_latency_ns, p50_latency_ns, p99_latency_ns) = latency_stats(&report.latencies);
    RtResult {
        n,
        transport: RtTransport::InMem,
        loss,
        shards,
        batch,
        injected: report.injected.len() as u64,
        served: report.served,
        grants: report.grant_log.len() as u64,
        cs_entries,
        msgs: report.stats.links.enqueued,
        wall_ns: report.wall.as_nanos(),
        mean_latency_ns,
        p50_latency_ns,
        p99_latency_ns,
    }
}

/// Runs the baseline sweep: `n ∈ {8, 16, 32, 64}` × `loss ∈ {0, 0.1,
/// 0.3}` (`--fast`: a smoke-sized subset so CI can exercise the binary).
pub fn sweep(fast: bool) -> Vec<RtResult> {
    let (sizes, losses): (&[usize], &[f64]) = if fast {
        (&[4, 8], &[0.0, 0.1])
    } else {
        (&[8, 16, 32, 64], &[0.0, 0.1, 0.3])
    };
    let mut results = Vec::new();
    for &n in sizes {
        for &loss in losses {
            // Size the request queues so the full sweep comfortably
            // clears 10⁵ end-to-end requests in total: throughput is
            // bounded by the leader's Value rotation (one CS grant per
            // favoured-process cycle), so the per-process queue shrinks
            // as n and loss grow.
            let per_process: u64 = if fast {
                5
            } else {
                let base: u64 = match n {
                    8 => 6_000,
                    16 => 1_000,
                    32 => 150,
                    _ => 40,
                };
                let factor = if loss == 0.0 {
                    1.0
                } else if loss < 0.2 {
                    0.35
                } else {
                    0.2
                };
                ((base as f64 * factor) as u64).max(10)
            };
            let budget = if fast {
                Duration::from_secs(20)
            } else {
                Duration::from_secs(150)
            };
            results.push(measure(
                n,
                RtTransport::InMem,
                loss,
                per_process,
                budget,
                0xC0FFEE ^ n as u64,
            ));
        }
    }
    results
}

/// Runs the transport sweep: the single-leader service at
/// `n ∈ {8, 16, 32}`, loss 0, over the in-memory transport and over UDP
/// loopback, side by side (`--fast`: one `n = 4` pair). Returns an empty
/// sweep — with a warning — when the environment forbids UDP sockets, so
/// the binary still completes in restricted sandboxes.
pub fn sweep_udp(fast: bool) -> Vec<RtResult> {
    if !snapstab_net::udp_available() {
        eprintln!("warning: UDP loopback unavailable in this sandbox; skipping the udp sweep");
        return Vec::new();
    }
    let grid: &[(usize, u64)] = if fast {
        &[(4, 5)]
    } else {
        // Sized for ~15–60s per row at the PR 2 baseline rates.
        &[(8, 2_000), (16, 300), (32, 60)]
    };
    let budget = if fast {
        Duration::from_secs(20)
    } else {
        Duration::from_secs(120)
    };
    let mut results = Vec::new();
    for &(n, per_process) in grid {
        for transport in [RtTransport::InMem, RtTransport::Udp] {
            results.push(measure(
                n,
                transport,
                0.0,
                per_process,
                budget,
                0x0DD5 ^ n as u64,
            ));
        }
    }
    results
}

/// Measures one forwarding configuration: `payloads_per_process` client
/// payloads per process over the given transport backend, every run
/// starting from adversarially stale-pre-filled buffers. In the
/// [`struct@RtResult`] row, `served` (and `grants`) is the end-to-end
/// delivered-payload count and `cs_entries` is 0 — forwarding has no
/// critical sections.
pub fn measure_forwarding(
    n: usize,
    transport: RtTransport,
    loss: f64,
    payloads_per_process: u64,
    budget: Duration,
    seed: u64,
) -> RtResult {
    let cfg = ForwardingServiceConfig {
        n,
        payloads_per_process,
        buffer_cap: 4,
        prefill_stale: true,
        live: LiveConfig {
            loss,
            seed,
            record_trace: false,
            ..LiveConfig::default()
        },
        time_budget: budget,
    };
    let report = match transport {
        RtTransport::InMem => run_forwarding_service_on(&cfg, &InMemory),
        RtTransport::Udp => run_forwarding_service_on(&cfg, &UdpLoopback::new()),
    }
    .expect("transport setup (guard UDP rows with `udp_available`)");
    let (mean_latency_ns, p50_latency_ns, p99_latency_ns) = latency_stats(&report.latencies);
    RtResult {
        n,
        transport,
        loss,
        shards: 1,
        batch: 1,
        injected: report.injected,
        served: report.delivered,
        grants: report.delivered,
        cs_entries: 0,
        msgs: report.stats.links.enqueued,
        wall_ns: report.wall.as_nanos(),
        mean_latency_ns,
        p50_latency_ns,
        p99_latency_ns,
    }
}

/// Runs the forwarding sweep: `n ∈ {8, 16, 32}` × `loss ∈ {0, 0.1,
/// 0.3}` in-memory, plus an in-memory-vs-UDP pair at `n = 8` when the
/// sandbox allows sockets (`--fast`: one tiny in-memory pair). Every
/// run starts from stale-pre-filled buffers; the conformance tests
/// assert the same configurations pass Specification 4.
pub fn sweep_forwarding(fast: bool) -> Vec<RtResult> {
    let grid: &[(usize, f64)] = if fast {
        &[(4, 0.0), (4, 0.1)]
    } else {
        &[
            (8, 0.0),
            (8, 0.1),
            (8, 0.3),
            (16, 0.0),
            (16, 0.1),
            (16, 0.3),
            (32, 0.0),
            (32, 0.1),
            (32, 0.3),
        ]
    };
    let budget = if fast {
        Duration::from_secs(20)
    } else {
        Duration::from_secs(120)
    };
    let mut results = Vec::new();
    for &(n, loss) in grid {
        let per_process: u64 = if fast {
            4
        } else {
            // Hop-local transfers parallelize along the line, so the
            // delivered rate falls much more slowly with n than the
            // single-leader mutex service; sized for ~15–60s per row.
            let base: u64 = match n {
                8 => 3_000,
                16 => 1_500,
                _ => 700,
            };
            let factor = if loss == 0.0 {
                1.0
            } else if loss < 0.2 {
                0.5
            } else {
                0.25
            };
            ((base as f64 * factor) as u64).max(10)
        };
        results.push(measure_forwarding(
            n,
            RtTransport::InMem,
            loss,
            per_process,
            budget,
            0xF0D ^ n as u64,
        ));
    }
    if !fast {
        if snapstab_net::udp_available() {
            for transport in [RtTransport::InMem, RtTransport::Udp] {
                results.push(measure_forwarding(
                    8, transport, 0.0, 400, budget, 0xF0D_0DD5,
                ));
            }
        } else {
            eprintln!(
                "warning: UDP loopback unavailable in this sandbox; \
                 skipping the forwarding udp pair"
            );
        }
    }
    results
}

/// The expected single-leader req/s at `n` (the PR 2 baseline), used only
/// to size the sharded sweep's request queues.
fn baseline_reqs_per_sec(n: usize) -> f64 {
    match n {
        0..=8 => 950.0,
        9..=16 => 296.0,
        17..=32 => 106.0,
        _ => 34.0,
    }
}

/// Runs the sharded `shards × batch` sweep (loss 0). The full grid
/// focuses on `n = 32` — the point where the baseline collapses to ~106
/// req/s — plus `n ∈ {8, 64}` spot checks of the best configuration, and
/// a shallow-vs-deep client-queue pair at `n = 64` (the last grid entry
/// re-runs `(64, 4, 4)` with `queue_depth = 32`, attacking the
/// batch-efficiency collapse the ROADMAP recorded for shallow queues).
pub fn sweep_sharded(fast: bool) -> Vec<RtResult> {
    // `(n, shards, batch, queue_depth)`; depth 0 = default request sizing.
    let grid: &[(usize, usize, usize, u64)] = if fast {
        &[(4, 2, 2, 0)]
    } else {
        &[
            (32, 1, 1, 0), // in-sweep re-measure of the baseline point
            (32, 1, 8, 0), // batching alone
            (32, 4, 1, 0), // sharding alone
            (32, 2, 4, 0),
            (32, 4, 4, 0),
            (32, 4, 8, 0),
            (32, 8, 8, 0),
            (8, 4, 4, 0),
            (64, 4, 4, 0),  // shallow queues: ~4 requests per shard queue
            (64, 4, 4, 32), // deep queues: the before/after pair
        ]
    };
    let mut results = Vec::new();
    for &(n, shards, batch, queue_depth) in grid {
        let per_process: u64 = if fast {
            4
        } else {
            // Pessimistic sizing: assume sharding halves the per-grant
            // rate and batching multiplies it; target ~15s per row.
            let expected = baseline_reqs_per_sec(n) * batch as f64 * 0.5;
            (((expected * 15.0) / n as f64).ceil() as u64).max(10)
        };
        let budget = if fast {
            Duration::from_secs(20)
        } else {
            Duration::from_secs(90)
        };
        let seed = 0xBA7C4 ^ (n as u64) ^ ((shards as u64) << 8) ^ ((batch as u64) << 16);
        results.push(measure_sharded(
            n,
            0.0,
            shards,
            batch,
            per_process,
            queue_depth,
            budget,
            seed,
        ));
    }
    results
}

/// The runtime backend a mux-sweep row was measured on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RtBackend {
    /// One OS thread per process (`snapstab_runtime::LiveRunner`).
    Threads,
    /// The event-driven multiplexed runtime (`snapstab_runtime::MuxRunner`):
    /// N protocol instances over a small worker pool.
    Mux,
}

impl RtBackend {
    /// The JSON tag of this backend.
    pub fn as_str(self) -> &'static str {
        match self {
            RtBackend::Threads => "threads",
            RtBackend::Mux => "mux",
        }
    }

    /// Parses a JSON tag.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "threads" => Some(RtBackend::Threads),
            "mux" => Some(RtBackend::Mux),
            _ => None,
        }
    }
}

/// One measured mux-sweep configuration: the single-leader mutex service
/// on either runtime backend, in-memory transport. `workers` is the mux
/// pool size; thread-backend rows record `workers == n` (one OS thread
/// per process).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MuxResult {
    /// System size (protocol instances).
    pub n: usize,
    /// The runtime backend the row was measured on.
    pub backend: RtBackend,
    /// Worker threads actually running the instances.
    pub workers: usize,
    /// In-transit loss probability.
    pub loss: f64,
    /// Requests injected into the service.
    pub injected: u64,
    /// Requests served end-to-end.
    pub served: u64,
    /// Transport messages enqueued.
    pub msgs: u64,
    /// Wall-clock nanoseconds.
    pub wall_ns: u128,
    /// Mean service latency in nanoseconds (0 if nothing served).
    pub mean_latency_ns: u128,
    /// Median service latency in nanoseconds.
    pub p50_latency_ns: u128,
    /// 99th-percentile service latency in nanoseconds.
    pub p99_latency_ns: u128,
}

impl MuxResult {
    /// Served requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        self.served as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Transport messages per second.
    pub fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Measures one mux-sweep configuration: `requests_per_process` client
/// requests per process on the given runtime backend (in-memory
/// transport), stopping early at `budget`. Thread-backend rows ignore
/// `workers` and record `n` (one OS thread per process).
pub fn measure_mux(
    n: usize,
    backend: RtBackend,
    workers: usize,
    loss: f64,
    requests_per_process: u64,
    budget: Duration,
    seed: u64,
) -> MuxResult {
    let cfg = MutexServiceConfig {
        n,
        requests_per_process,
        cs_duration: 0,
        live: LiveConfig {
            loss,
            seed,
            record_trace: false,
            ..LiveConfig::default()
        },
        time_budget: budget,
    };
    let (report, workers) = match backend {
        RtBackend::Threads => (
            run_mutex_service_on(&cfg, &InMemory).expect("the in-memory transport is infallible"),
            n,
        ),
        RtBackend::Mux => (run_mutex_service_mux(&cfg, workers), workers),
    };
    let (mean_latency_ns, p50_latency_ns, p99_latency_ns) = latency_stats(&report.latencies);
    MuxResult {
        n,
        backend,
        workers,
        loss,
        injected: report.injected,
        served: report.served,
        msgs: report.stats.links.enqueued,
        wall_ns: report.wall.as_nanos(),
        mean_latency_ns,
        p50_latency_ns,
        p99_latency_ns,
    }
}

/// Runs the mux runtime sweep: the thread backend at `n = 64` — its
/// practical ceiling on this class of hardware, where one OS thread per
/// process collapses to tens of req/s — paired with the event-driven
/// mux backend at `n ∈ {64, 256, 1024}` on a 4-worker pool (`--fast`:
/// one tiny `n = 4` pair). Thread rows above `n = 64` are deliberately
/// absent: a 1024-thread run spends its budget context-switching
/// instead of finishing the workload.
pub fn sweep_mux(fast: bool) -> Vec<MuxResult> {
    let budget = if fast {
        Duration::from_secs(20)
    } else {
        Duration::from_secs(150)
    };
    if fast {
        return vec![
            measure_mux(4, RtBackend::Threads, 4, 0.0, 5, budget, 0x30C),
            measure_mux(4, RtBackend::Mux, 2, 0.0, 5, budget, 0x30C),
        ];
    }
    let mut rows = vec![measure_mux(
        64,
        RtBackend::Threads,
        64,
        0.0,
        12,
        budget,
        0x30C ^ 64,
    )];
    // The leader's Value rotation is O(n) messages per grant, so the
    // per-process queue shrinks as n grows. The n = 64 row completes
    // inside the budget; the larger rows deliberately overfill it and
    // saturate the service for the full 150s, so their `served`/`wall`
    // ratio is a *sustained* throughput measurement (`served` <
    // `injected` is expected there, not an error).
    for (n, per_process) in [(64usize, 50u64), (256, 6), (1024, 2)] {
        rows.push(measure_mux(
            n,
            RtBackend::Mux,
            4,
            0.0,
            per_process,
            budget,
            0x30C ^ n as u64,
        ));
    }
    rows
}

/// One measured chaos configuration: the single-leader mutex service
/// under a seeded [`ChaosPlan`] of fault bursts, with the supervised
/// self-healing runtime, judged per epoch by executable Specification 3.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ChaosRow {
    /// System size (worker threads).
    pub n: usize,
    /// The transport backend the row was measured on.
    pub transport: RtTransport,
    /// The fault mix the chaos plan drew bursts from.
    pub mix: ChaosMix,
    /// Background in-transit loss probability (chaos drops come on top).
    pub loss: f64,
    /// Fault bursts the engine fired mid-run.
    pub bursts: u64,
    /// Authoritative state-corruption fault marks (epoch boundaries).
    pub faults: u64,
    /// Supervisor interventions (crashed/wedged workers healed).
    pub interventions: u64,
    /// Trace epochs the per-epoch checker judged (`faults + 1`).
    pub epochs: u64,
    /// Requests served end-to-end despite the chaos.
    pub served: u64,
    /// Median fault-burst-to-next-completion recovery time (ns).
    pub recovery_p50_ns: u128,
    /// 99th-percentile recovery time (ns).
    pub recovery_p99_ns: u128,
    /// Wall-clock nanoseconds.
    pub wall_ns: u128,
}

impl ChaosRow {
    /// Served requests per second (under chaos).
    pub fn requests_per_sec(&self) -> f64 {
        self.served as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Measures one chaos configuration: `requests_per_process` client
/// requests per process while a seeded plan of `bursts` fault bursts
/// (profile of `mix`, reshaped to `quiet`/`disruption`) fires against
/// the live run, the supervisor healing crashed and wedged workers with
/// corrupted state. The merged trace is segmented at the authoritative
/// fault steps and judged per epoch; a failed verdict panics — a chaos
/// row that violates the paper's specification must never be committed.
#[allow(clippy::too_many_arguments)]
pub fn measure_chaos(
    n: usize,
    transport: RtTransport,
    mix: ChaosMix,
    loss: f64,
    requests_per_process: u64,
    quiet: Duration,
    disruption: Duration,
    budget: Duration,
    seed: u64,
) -> ChaosRow {
    let cfg = MutexServiceConfig {
        n,
        requests_per_process,
        cs_duration: 0,
        live: LiveConfig {
            loss,
            seed,
            record_trace: true,
            ..LiveConfig::default()
        },
        time_budget: budget,
    };
    let plan = ChaosPlan {
        quiet,
        disruption,
        ..ChaosPlan::profile(mix, seed)
    };
    let (report, chaos) = match transport {
        RtTransport::InMem => run_mutex_service_chaos_on(&cfg, &InMemory, &plan),
        RtTransport::Udp => run_mutex_service_chaos_on(&cfg, &UdpLoopback::new(), &plan),
    }
    .expect("transport setup (guard UDP rows with `udp_available`)");
    let trace = report.trace.as_ref().expect("chaos rows record the trace");
    let epochs = analyze_me_epochs(trace, n, &chaos.fault_steps);
    assert!(
        epochs.holds(),
        "per-epoch Specification 3 FAILED under `{}` chaos (n = {n}, {}, seed {seed})",
        mix.as_str(),
        transport.as_str(),
    );
    let recovery = |q: f64| {
        chaos
            .recovery_quantile(q)
            .expect("every burst must be followed by a completion")
            .as_nanos()
    };
    ChaosRow {
        n,
        transport,
        mix,
        loss,
        bursts: u64::from(chaos.bursts_fired),
        faults: chaos.fault_steps.len() as u64,
        interventions: chaos.interventions.len() as u64,
        epochs: epochs.epochs_checked() as u64,
        served: report.served,
        recovery_p50_ns: recovery(0.5),
        recovery_p99_ns: recovery(0.99),
        wall_ns: report.wall.as_nanos(),
    }
}

/// Runs the chaos sweep: every fault mix at `n = 8`, loss 0, over the
/// in-memory transport, plus the same five mixes over UDP loopback when
/// the sandbox allows sockets (`--fast`: one tiny in-memory `all`-mix
/// row). Workloads are sized so client requests outlast the fault
/// schedule — every burst lands mid-run and every row records a finite
/// recovery-time distribution.
pub fn sweep_chaos(fast: bool) -> Vec<ChaosRow> {
    const MIXES: [ChaosMix; 5] = [
        ChaosMix::Corrupt,
        ChaosMix::Crash,
        ChaosMix::Partition,
        ChaosMix::Storm,
        ChaosMix::All,
    ];
    if fast {
        return vec![measure_chaos(
            3,
            RtTransport::InMem,
            ChaosMix::All,
            0.0,
            40,
            Duration::from_millis(30),
            Duration::from_millis(20),
            Duration::from_secs(60),
            0xC405,
        )];
    }
    let mut rows = Vec::new();
    for (i, mix) in MIXES.into_iter().enumerate() {
        // ~950 req/s at n = 8; 3 bursts × 200ms quiet ≈ 0.8s of
        // schedule, so 400 × 8 = 3200 requests (~3.4s) comfortably
        // outlast it even when the chaos halves throughput.
        rows.push(measure_chaos(
            8,
            RtTransport::InMem,
            mix,
            0.0,
            400,
            Duration::from_millis(200),
            Duration::from_millis(100),
            Duration::from_secs(150),
            0xC405 ^ ((i as u64) << 4),
        ));
    }
    if snapstab_net::udp_available() {
        for (i, mix) in MIXES.into_iter().enumerate() {
            rows.push(measure_chaos(
                8,
                RtTransport::Udp,
                mix,
                0.0,
                150,
                Duration::from_millis(250),
                Duration::from_millis(120),
                Duration::from_secs(150),
                0xC405_0DD5 ^ ((i as u64) << 4),
            ));
        }
    } else {
        eprintln!(
            "warning: UDP loopback unavailable in this sandbox; \
             skipping the chaos udp rows"
        );
    }
    rows
}

/// One measured observability configuration: the single-leader mutex
/// service with the snapshot monitor on, against an
/// identically-configured unmonitored baseline (same transport, seed
/// and workload, trace recording off on both halves — the overhead
/// columns isolate the monitor's cost, nothing else's; each half is
/// the median of `OBS_SAMPLES` interleaved runs). A separate
/// trace-recorded audit run at the same configuration gates the row on
/// Specification 5.
#[derive(Clone, PartialEq, Debug)]
pub struct ObservabilityRow {
    /// System size (protocol instances).
    pub n: usize,
    /// The transport backend both halves of the pair ran on.
    pub transport: RtTransport,
    /// The runtime backend both halves ran on (thread-per-process or
    /// the event-driven mux pool).
    pub backend: RtBackend,
    /// Worker threads actually running the instances (thread-backend
    /// rows record `n`).
    pub workers: u64,
    /// Concurrent snapshot initiators, each on its own single-flight
    /// ledger and independent schedule.
    pub initiators: u64,
    /// Monitor cut interval in milliseconds.
    pub interval_ms: u64,
    /// Requests injected (identical in both halves).
    pub injected: u64,
    /// Requests served by the unmonitored baseline.
    pub base_served: u64,
    /// Requests served with the monitor on.
    pub mon_served: u64,
    /// Baseline wall-clock nanoseconds.
    pub base_wall_ns: u128,
    /// Monitored wall-clock nanoseconds.
    pub mon_wall_ns: u128,
    /// Baseline 99th-percentile service latency (ns).
    pub base_p99_latency_ns: u128,
    /// Monitored 99th-percentile service latency (ns).
    pub mon_p99_latency_ns: u128,
    /// Consistent cuts the monitor decided (every one judged by
    /// Specification 5 before this row can exist).
    pub cuts: u64,
    /// Snapshot waves refused (corrupted monitor state — never
    /// fabricated into a cut).
    pub refused: u64,
    /// Mean wall-clock lag from cut request to the decided cut
    /// surfacing at the harness (0 when no cut decided).
    pub mean_staleness_ns: u128,
    /// Decided cuts attributed to each initiator's ledger, in
    /// initiator order (sums to `cuts`).
    pub per_initiator_cuts: Vec<u64>,
}

impl ObservabilityRow {
    /// Baseline served requests per second (monitor off).
    pub fn base_requests_per_sec(&self) -> f64 {
        self.base_served as f64 / (self.base_wall_ns as f64 / 1e9)
    }

    /// Served requests per second with the monitor on.
    pub fn mon_requests_per_sec(&self) -> f64 {
        self.mon_served as f64 / (self.mon_wall_ns as f64 / 1e9)
    }

    /// Monitoring overhead as a percentage of baseline req/s (negative
    /// when scheduling noise makes the monitored half faster).
    pub fn overhead_pct(&self) -> f64 {
        let base = self.base_requests_per_sec();
        if base == 0.0 {
            0.0
        } else {
            (base - self.mon_requests_per_sec()) / base * 100.0
        }
    }

    /// Consistent cuts decided per second of monitored wall time.
    pub fn cuts_per_sec(&self) -> f64 {
        self.cuts as f64 / (self.mon_wall_ns as f64 / 1e9)
    }
}

/// Interleaved samples per observability pair: the committed halves are
/// the median-by-wall-clock runs. A single off/on shot on a one-core
/// box sees scheduler noise of ±20% — larger than the effect the row
/// measures — and can even come out negative; three alternating
/// samples with a median pick make the committed overhead a property of
/// the monitor, not of which half drew the unlucky time slice.
const OBS_SAMPLES: usize = 3;

/// Measures one observability pair: `requests_per_process` client
/// requests per process, once unmonitored and once with the snapshot
/// monitor cutting every `interval`, on the same transport backend and
/// seed — sampled `OBS_SAMPLES` times in alternation, committing the
/// median-by-wall run of each half. The pairs run with trace recording
/// *off*, like every other committed throughput row — at full size the
/// recorder (one event per message, ~700 k msgs/s at n = 8) dominates
/// the wall clock and its allocation pressure swamps the monitor's
/// cost, which is the number this row exists to isolate. The
/// Specification 5 gate runs separately: a shorter monitored run at
/// the *same* configuration with the trace on, every decided cut
/// judged; a failed verdict — or a cut count disagreeing with what the
/// harness collected — panics, so a configuration producing
/// inconsistent cuts can never land in the committed artifact.
#[allow(clippy::too_many_arguments)]
pub fn measure_observability(
    n: usize,
    transport: RtTransport,
    backend: RtBackend,
    workers: usize,
    initiators: usize,
    interval: Duration,
    requests_per_process: u64,
    budget: Duration,
    seed: u64,
) -> ObservabilityRow {
    let cfg = |record_trace: bool, rpp: u64| MutexServiceConfig {
        n,
        requests_per_process: rpp,
        cs_duration: 0,
        live: LiveConfig {
            loss: 0.0,
            seed,
            record_trace,
            ..LiveConfig::default()
        },
        time_budget: budget,
    };
    let mon_cfg = MonitorConfig {
        interval,
        initiators,
        ..MonitorConfig::default()
    };
    let run_base = |cfg: &MutexServiceConfig| {
        match (backend, transport) {
            (RtBackend::Threads, RtTransport::InMem) => run_mutex_service_on(cfg, &InMemory),
            (RtBackend::Threads, RtTransport::Udp) => {
                run_mutex_service_on(cfg, &UdpLoopback::new())
            }
            (RtBackend::Mux, RtTransport::InMem) => {
                run_mutex_service_mux_on(cfg, workers, &InMemory)
            }
            (RtBackend::Mux, RtTransport::Udp) => {
                run_mutex_service_mux_on(cfg, workers, &UdpLoopback::new())
            }
        }
        .expect("transport setup (guard UDP rows with `udp_available`)")
    };
    let run_mon = |cfg: &MutexServiceConfig| {
        match (backend, transport) {
            (RtBackend::Threads, RtTransport::InMem) => {
                run_monitored_mutex_service_on(cfg, &mon_cfg, &InMemory)
            }
            (RtBackend::Threads, RtTransport::Udp) => {
                run_monitored_mutex_service_on(cfg, &mon_cfg, &UdpLoopback::new())
            }
            (RtBackend::Mux, RtTransport::InMem) => {
                run_monitored_mutex_service_mux_on(cfg, &mon_cfg, workers, &InMemory)
            }
            (RtBackend::Mux, RtTransport::Udp) => {
                run_monitored_mutex_service_mux_on(cfg, &mon_cfg, workers, &UdpLoopback::new())
            }
        }
        .expect("transport setup (guard UDP rows with `udp_available`)")
    };
    let pair_cfg = cfg(false, requests_per_process);
    let mut bases = Vec::with_capacity(OBS_SAMPLES);
    let mut mons = Vec::with_capacity(OBS_SAMPLES);
    for _ in 0..OBS_SAMPLES {
        bases.push(run_base(&pair_cfg));
        mons.push(run_mon(&pair_cfg));
    }
    bases.sort_by_key(|r| r.wall);
    mons.sort_by_key(|r| r.wall);
    let base = &bases[OBS_SAMPLES / 2];
    let mon = &mons[OBS_SAMPLES / 2];
    // The audit run shrinks with n: recording one event per message at
    // mux scale would blow the budget, and the gate needs enough waves
    // to judge, not the full committed workload.
    let audit_rpp = (requests_per_process / 4)
        .clamp(10, 400)
        .min((800 / n as u64).max(3));
    let audit = run_mon(&cfg(true, audit_rpp));
    let trace = audit
        .trace
        .as_ref()
        .expect("the audit run records the trace");
    let spec = analyze_snapshot_trace(trace, n, &[]);
    assert!(
        spec.holds(),
        "Specification 5 FAILED for the monitored audit run (n = {n}, {}, {}, seed {seed}): {spec:?}",
        transport.as_str(),
        backend.as_str(),
    );
    assert_eq!(
        spec.cuts_decided(),
        audit.monitor.cuts.len(),
        "harness cut count disagrees with the trace's decided cuts"
    );
    assert!(
        !audit.monitor.cuts.is_empty(),
        "the audit run must decide at least one cut to judge"
    );
    // With concurrent initiators, the trace verdict must also agree on
    // who requested what: a cut credited to the wrong ledger would
    // surface as a fabrication at that process.
    for stats in audit.monitor.per_initiator() {
        assert_eq!(
            spec.cuts_of(stats.initiator),
            stats.cuts as usize,
            "ledger {:?}: harness attribution disagrees with the trace",
            stats.initiator,
        );
        assert_eq!(spec.refused_of(stats.initiator), stats.refused as usize);
    }
    let (_, _, base_p99) = latency_stats(&base.latencies);
    let (_, _, mon_p99) = latency_stats(&mon.latencies);
    ObservabilityRow {
        n,
        transport,
        backend,
        workers: match backend {
            RtBackend::Threads => n as u64,
            RtBackend::Mux => workers as u64,
        },
        initiators: initiators as u64,
        interval_ms: interval.as_millis() as u64,
        injected: base.injected,
        base_served: base.served,
        mon_served: mon.served,
        base_wall_ns: base.wall.as_nanos(),
        mon_wall_ns: mon.wall.as_nanos(),
        base_p99_latency_ns: base_p99,
        mon_p99_latency_ns: mon_p99,
        cuts: mon.monitor.cuts.len() as u64,
        refused: mon.monitor.refused,
        mean_staleness_ns: mon.monitor.mean_staleness().map_or(0, |d| d.as_nanos()),
        per_initiator_cuts: mon.monitor.per_initiator().iter().map(|s| s.cuts).collect(),
    }
}

/// Runs the observability sweep: monitor-off-vs-on pairs at
/// `n ∈ {8, 16}` on the thread backend — the `n = 8`, 100 ms-interval
/// row is the committed acceptance point (≥ 1 cut/s sustained, < 10%
/// req/s overhead), with a 4×-denser 25 ms row at the same workload
/// and an `n = 16` spot check — plus monitor-on-mux pairs at
/// `n ∈ {64, 256}` (the monitor composed with the event-driven
/// multiplexed backend through the same `RuntimeBackend` seam) and a
/// `K = 2` concurrent-initiator row at `n = 64` whose decided cuts are
/// attributed per requesting ledger (`--fast`: one tiny thread pair
/// and one tiny `K = 2` mux pair). Full-size thread rows assert the
/// ≥ 1 cut/s floor; mux rows assert at least one decided cut — at
/// `n = 256` the budget truncates the workload, so the pair measures
/// sustained rates, not completion.
pub fn sweep_observability(fast: bool) -> Vec<ObservabilityRow> {
    // `(n, backend, workers, initiators, interval_ms,
    // requests_per_process)`; thread rows sized for ~10–20s per half at
    // the PR 2 baseline rates, mux rows at the PR 7 mux-sweep rates
    // (n = 64: ~90 req/s; n = 256: single-digit).
    let grid: &[(usize, RtBackend, usize, usize, u64, u64)] = if fast {
        &[
            (4, RtBackend::Threads, 4, 1, 20, 5),
            (4, RtBackend::Mux, 2, 2, 20, 3),
        ]
    } else {
        &[
            (8, RtBackend::Threads, 8, 1, 100, 1_200),
            (8, RtBackend::Threads, 8, 1, 25, 1_200),
            (16, RtBackend::Threads, 16, 1, 100, 300),
            (64, RtBackend::Mux, 4, 1, 100, 12),
            (64, RtBackend::Mux, 4, 2, 100, 12),
            (256, RtBackend::Mux, 4, 1, 200, 1),
        ]
    };
    let budget = if fast {
        Duration::from_secs(20)
    } else {
        Duration::from_secs(60)
    };
    let mut rows = Vec::new();
    for &(n, backend, workers, initiators, interval_ms, per_process) in grid {
        let row = measure_observability(
            n,
            RtTransport::InMem,
            backend,
            workers,
            initiators,
            Duration::from_millis(interval_ms),
            per_process,
            budget,
            0x0B5E ^ n as u64 ^ ((initiators as u64) << 32),
        );
        if !fast {
            match backend {
                RtBackend::Threads => assert!(
                    row.cuts_per_sec() >= 1.0,
                    "monitored run at n = {n} decided only {:.2} cuts/s (< 1)",
                    row.cuts_per_sec(),
                ),
                RtBackend::Mux => assert!(
                    row.cuts >= 1,
                    "monitored mux run at n = {n} decided no cuts"
                ),
            }
        }
        rows.push(row);
    }
    rows
}

fn push_rows(table: &mut Table, results: &[RtResult]) {
    for r in results {
        table.row(&[
            r.n.to_string(),
            r.transport.as_str().to_string(),
            format!("{:.1}", r.loss),
            r.shards.to_string(),
            r.batch.to_string(),
            r.served.to_string(),
            format!("{:.0}", r.requests_per_sec()),
            format!("{:.0}", r.grants_per_sec()),
            format!("{:.2}", r.mean_batch()),
            format!("{:.0}", r.msgs_per_sec()),
            format!("{:.2}", r.mean_latency_ns as f64 / 1e6),
            format!("{:.2}", r.p50_latency_ns as f64 / 1e6),
            format!("{:.2}", r.p99_latency_ns as f64 / 1e6),
        ]);
    }
}

const COLUMNS: [&str; 13] = [
    "n",
    "transport",
    "loss",
    "shards",
    "batch",
    "served",
    "req/s",
    "grants/s",
    "batch eff",
    "msgs/s",
    "mean ms",
    "p50 ms",
    "p99 ms",
];

const CHAOS_COLUMNS: [&str; 11] = [
    "n",
    "transport",
    "mix",
    "served",
    "req/s",
    "bursts",
    "faults",
    "healed",
    "epochs",
    "rec p50 ms",
    "rec p99 ms",
];

const OBS_COLUMNS: [&str; 16] = [
    "n",
    "transport",
    "backend",
    "workers",
    "inits",
    "ival ms",
    "served",
    "base req/s",
    "mon req/s",
    "ovh %",
    "base p99 ms",
    "mon p99 ms",
    "cuts",
    "cuts/s",
    "stale ms",
    "refused",
];

fn push_obs_rows(table: &mut Table, rows: &[ObservabilityRow]) {
    for r in rows {
        table.row(&[
            r.n.to_string(),
            r.transport.as_str().to_string(),
            r.backend.as_str().to_string(),
            r.workers.to_string(),
            r.initiators.to_string(),
            r.interval_ms.to_string(),
            r.mon_served.to_string(),
            format!("{:.0}", r.base_requests_per_sec()),
            format!("{:.0}", r.mon_requests_per_sec()),
            format!("{:.1}", r.overhead_pct()),
            format!("{:.2}", r.base_p99_latency_ns as f64 / 1e6),
            format!("{:.2}", r.mon_p99_latency_ns as f64 / 1e6),
            r.cuts.to_string(),
            format!("{:.1}", r.cuts_per_sec()),
            format!("{:.2}", r.mean_staleness_ns as f64 / 1e6),
            r.refused.to_string(),
        ]);
    }
}

const MUX_COLUMNS: [&str; 10] = [
    "n", "backend", "workers", "loss", "served", "req/s", "msgs/s", "mean ms", "p50 ms", "p99 ms",
];

fn push_mux_rows(table: &mut Table, rows: &[MuxResult]) {
    for r in rows {
        table.row(&[
            r.n.to_string(),
            r.backend.as_str().to_string(),
            r.workers.to_string(),
            format!("{:.1}", r.loss),
            r.served.to_string(),
            format!("{:.0}", r.requests_per_sec()),
            format!("{:.0}", r.msgs_per_sec()),
            format!("{:.2}", r.mean_latency_ns as f64 / 1e6),
            format!("{:.2}", r.p50_latency_ns as f64 / 1e6),
            format!("{:.2}", r.p99_latency_ns as f64 / 1e6),
        ]);
    }
}

fn push_chaos_rows(table: &mut Table, rows: &[ChaosRow]) {
    for r in rows {
        table.row(&[
            r.n.to_string(),
            r.transport.as_str().to_string(),
            r.mix.as_str().to_string(),
            r.served.to_string(),
            format!("{:.0}", r.requests_per_sec()),
            r.bursts.to_string(),
            r.faults.to_string(),
            r.interventions.to_string(),
            r.epochs.to_string(),
            format!("{:.2}", r.recovery_p50_ns as f64 / 1e6),
            format!("{:.2}", r.recovery_p99_ns as f64 / 1e6),
        ]);
    }
}

/// Renders all seven sweeps as the repo's standard ASCII tables.
#[allow(clippy::too_many_arguments)]
pub fn render(
    baseline: &[RtResult],
    sharded: &[RtResult],
    udp: &[RtResult],
    forwarding: &[RtResult],
    chaos: &[ChaosRow],
    observability: &[ObservabilityRow],
    mux: &[MuxResult],
) -> String {
    let mut out = String::new();
    out.push_str("=== Q6: live-runtime services (1 OS thread per process) ===\n\n");
    out.push_str("baseline (single leader, one request per grant):\n");
    let mut table = Table::new(&COLUMNS);
    push_rows(&mut table, baseline);
    out.push_str(&table.render());
    if !sharded.is_empty() {
        out.push_str("\nsharded multi-leader service with request batching:\n");
        let mut table = Table::new(&COLUMNS);
        push_rows(&mut table, sharded);
        out.push_str(&table.render());
    }
    if !udp.is_empty() {
        out.push_str("\ntransport comparison (single leader, in-memory vs UDP loopback):\n");
        let mut table = Table::new(&COLUMNS);
        push_rows(&mut table, udp);
        out.push_str(&table.render());
    }
    if !forwarding.is_empty() {
        out.push_str(
            "\nforwarding service (stale-pre-filled buffers; served = \
             payloads delivered end-to-end):\n",
        );
        let mut table = Table::new(&COLUMNS);
        push_rows(&mut table, forwarding);
        out.push_str(&table.render());
    }
    if !chaos.is_empty() {
        out.push_str(
            "\nchaos engine + supervised self-healing (per-epoch spec \
             verdicts all hold; rec = fault burst to next completion):\n",
        );
        let mut table = Table::new(&CHAOS_COLUMNS);
        push_chaos_rows(&mut table, chaos);
        out.push_str(&table.render());
    }
    if !observability.is_empty() {
        out.push_str(
            "\nobservability (snapshot monitor off vs on, same transport and \
             workload; every cut judged by Specification 5):\n",
        );
        let mut table = Table::new(&OBS_COLUMNS);
        push_obs_rows(&mut table, observability);
        out.push_str(&table.render());
    }
    if !mux.is_empty() {
        out.push_str(
            "\nruntime comparison (thread-per-process vs event-driven mux \
             worker pool, single leader):\n",
        );
        let mut table = Table::new(&MUX_COLUMNS);
        push_mux_rows(&mut table, mux);
        out.push_str(&table.render());
    }
    let total: u64 = baseline
        .iter()
        .chain(sharded)
        .chain(udp)
        .chain(forwarding)
        .map(|r| r.served)
        .chain(chaos.iter().map(|r| r.served))
        .chain(observability.iter().map(|r| r.base_served + r.mon_served))
        .chain(mux.iter().map(|r| r.served))
        .sum();
    out.push_str(&format!("\ntotal requests served end-to-end: {total}\n"));
    out
}

/// Measures all seven sweeps and renders them.
pub fn run(fast: bool) -> String {
    render(
        &sweep(fast),
        &sweep_sharded(fast),
        &sweep_udp(fast),
        &sweep_forwarding(fast),
        &sweep_chaos(fast),
        &sweep_observability(fast),
        &sweep_mux(fast),
    )
}

fn row_json(r: &RtResult) -> String {
    format!(
        "{{\"n\": {}, \"transport\": \"{}\", \"loss\": {}, \"shards\": {}, \"batch\": {}, \"injected\": {}, \"served\": {}, \"grants\": {}, \"cs_entries\": {}, \"msgs\": {}, \"wall_ns\": {}, \"requests_per_sec\": {:.1}, \"grants_per_sec\": {:.1}, \"msgs_per_sec\": {:.1}, \"mean_latency_ns\": {}, \"p50_latency_ns\": {}, \"p99_latency_ns\": {}}}",
        r.n,
        r.transport.as_str(),
        r.loss,
        r.shards,
        r.batch,
        r.injected,
        r.served,
        r.grants,
        r.cs_entries,
        r.msgs,
        r.wall_ns,
        r.requests_per_sec(),
        r.grants_per_sec(),
        r.msgs_per_sec(),
        r.mean_latency_ns,
        r.p50_latency_ns,
        r.p99_latency_ns,
    )
}

fn chaos_row_json(r: &ChaosRow) -> String {
    format!(
        "{{\"n\": {}, \"transport\": \"{}\", \"mix\": \"{}\", \"loss\": {}, \"bursts\": {}, \"faults\": {}, \"interventions\": {}, \"epochs\": {}, \"served\": {}, \"requests_per_sec\": {:.1}, \"recovery_p50_ns\": {}, \"recovery_p99_ns\": {}, \"wall_ns\": {}}}",
        r.n,
        r.transport.as_str(),
        r.mix.as_str(),
        r.loss,
        r.bursts,
        r.faults,
        r.interventions,
        r.epochs,
        r.served,
        r.requests_per_sec(),
        r.recovery_p50_ns,
        r.recovery_p99_ns,
        r.wall_ns,
    )
}

fn obs_row_json(r: &ObservabilityRow) -> String {
    let per_initiator = r
        .per_initiator_cuts
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"n\": {}, \"transport\": \"{}\", \"backend\": \"{}\", \"workers\": {}, \"initiators\": {}, \"interval_ms\": {}, \"injected\": {}, \"base_served\": {}, \"mon_served\": {}, \"base_wall_ns\": {}, \"mon_wall_ns\": {}, \"base_requests_per_sec\": {:.1}, \"mon_requests_per_sec\": {:.1}, \"overhead_pct\": {:.2}, \"base_p99_latency_ns\": {}, \"mon_p99_latency_ns\": {}, \"cuts\": {}, \"cuts_per_sec\": {:.2}, \"refused\": {}, \"mean_staleness_ns\": {}, \"per_initiator_cuts\": [{per_initiator}]}}",
        r.n,
        r.transport.as_str(),
        r.backend.as_str(),
        r.workers,
        r.initiators,
        r.interval_ms,
        r.injected,
        r.base_served,
        r.mon_served,
        r.base_wall_ns,
        r.mon_wall_ns,
        r.base_requests_per_sec(),
        r.mon_requests_per_sec(),
        r.overhead_pct(),
        r.base_p99_latency_ns,
        r.mon_p99_latency_ns,
        r.cuts,
        r.cuts_per_sec(),
        r.refused,
        r.mean_staleness_ns,
    )
}

fn mux_row_json(r: &MuxResult) -> String {
    format!(
        "{{\"n\": {}, \"backend\": \"{}\", \"workers\": {}, \"loss\": {}, \"injected\": {}, \"served\": {}, \"msgs\": {}, \"wall_ns\": {}, \"requests_per_sec\": {:.1}, \"msgs_per_sec\": {:.1}, \"mean_latency_ns\": {}, \"p50_latency_ns\": {}, \"p99_latency_ns\": {}}}",
        r.n,
        r.backend.as_str(),
        r.workers,
        r.loss,
        r.injected,
        r.served,
        r.msgs,
        r.wall_ns,
        r.requests_per_sec(),
        r.msgs_per_sec(),
        r.mean_latency_ns,
        r.p50_latency_ns,
        r.p99_latency_ns,
    )
}

/// All seven sweeps as a JSON document (hand-rolled: the workspace is
/// offline and carries no serde), shaped like `BENCH_STEPLOOP.json`.
/// Validate with [`from_json`] before committing.
#[allow(clippy::too_many_arguments)]
pub fn to_json(
    baseline: &[RtResult],
    sharded: &[RtResult],
    udp: &[RtResult],
    forwarding: &[RtResult],
    chaos: &[ChaosRow],
    observability: &[ObservabilityRow],
    mux: &[MuxResult],
) -> String {
    let mut out = String::from(
        "{\n  \"experiment\": \"live_runtime_mutex_service\",\n  \"unit\": \"requests_per_sec\",\n  \"results\": [\n",
    );
    let push_array = |out: &mut String, rows: &[RtResult]| {
        for (i, r) in rows.iter().enumerate() {
            let sep = if i + 1 < rows.len() { "," } else { "" };
            out.push_str(&format!("    {}{}\n", row_json(r), sep));
        }
    };
    push_array(&mut out, baseline);
    out.push_str("  ],\n  \"sharded\": [\n");
    push_array(&mut out, sharded);
    out.push_str("  ],\n  \"udp\": [\n");
    push_array(&mut out, udp);
    out.push_str("  ],\n  \"forwarding\": [\n");
    push_array(&mut out, forwarding);
    out.push_str("  ],\n  \"chaos\": [\n");
    for (i, r) in chaos.iter().enumerate() {
        let sep = if i + 1 < chaos.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", chaos_row_json(r), sep));
    }
    out.push_str("  ],\n  \"observability\": [\n");
    for (i, r) in observability.iter().enumerate() {
        let sep = if i + 1 < observability.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", obs_row_json(r), sep));
    }
    out.push_str("  ],\n  \"mux\": [\n");
    for (i, r) in mux.iter().enumerate() {
        let sep = if i + 1 < mux.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", mux_row_json(r), sep));
    }
    let total: u64 = baseline
        .iter()
        .chain(sharded)
        .chain(udp)
        .chain(forwarding)
        .map(|r| r.served)
        .chain(chaos.iter().map(|r| r.served))
        .chain(observability.iter().map(|r| r.base_served + r.mon_served))
        .chain(mux.iter().map(|r| r.served))
        .sum();
    out.push_str(&format!("  ],\n  \"total_served\": {total}\n}}\n"));
    out
}

/// The source (non-derived) numeric fields of one JSON row, in emission
/// order — the schema the round-trip check enforces.
const ROW_FIELDS: [&str; 16] = [
    "n",
    "loss",
    "shards",
    "batch",
    "injected",
    "served",
    "grants",
    "cs_entries",
    "msgs",
    "wall_ns",
    "requests_per_sec",
    "grants_per_sec",
    "msgs_per_sec",
    "mean_latency_ns",
    "p50_latency_ns",
    "p99_latency_ns",
];

fn row_from_value(row: &Value) -> Result<RtResult, String> {
    for field in ROW_FIELDS {
        match row.get(field) {
            Some(Value::Num(_)) => {}
            Some(_) => return Err(format!("field `{field}` is not a number")),
            None => return Err(format!("missing field `{field}`")),
        }
    }
    let transport = match row.get("transport") {
        Some(Value::Str(s)) => {
            RtTransport::parse(s).ok_or_else(|| format!("unknown `transport` tag `{s}`"))?
        }
        Some(_) => return Err("field `transport` is not a string".into()),
        None => return Err("missing field `transport`".into()),
    };
    let num = |field: &str| row.get(field).and_then(Value::as_num).expect("checked");
    Ok(RtResult {
        n: num("n") as usize,
        transport,
        loss: num("loss"),
        shards: num("shards") as usize,
        batch: num("batch") as usize,
        injected: num("injected") as u64,
        served: num("served") as u64,
        grants: num("grants") as u64,
        cs_entries: num("cs_entries") as u64,
        msgs: num("msgs") as u64,
        wall_ns: num("wall_ns") as u128,
        mean_latency_ns: num("mean_latency_ns") as u128,
        p50_latency_ns: num("p50_latency_ns") as u128,
        p99_latency_ns: num("p99_latency_ns") as u128,
    })
}

/// The source (non-derived) numeric fields of one chaos JSON row, in
/// emission order — the schema the round-trip check enforces. `transport`
/// and `mix` ride alongside as string tags.
const CHAOS_ROW_FIELDS: [&str; 10] = [
    "n",
    "loss",
    "bursts",
    "faults",
    "interventions",
    "epochs",
    "served",
    "recovery_p50_ns",
    "recovery_p99_ns",
    "wall_ns",
];

fn chaos_row_from_value(row: &Value) -> Result<ChaosRow, String> {
    for field in CHAOS_ROW_FIELDS {
        match row.get(field) {
            Some(Value::Num(_)) => {}
            Some(_) => return Err(format!("field `{field}` is not a number")),
            None => return Err(format!("missing field `{field}`")),
        }
    }
    let transport = match row.get("transport") {
        Some(Value::Str(s)) => {
            RtTransport::parse(s).ok_or_else(|| format!("unknown `transport` tag `{s}`"))?
        }
        Some(_) => return Err("field `transport` is not a string".into()),
        None => return Err("missing field `transport`".into()),
    };
    let mix = match row.get("mix") {
        Some(Value::Str(s)) => ChaosMix::parse(s).ok_or_else(|| {
            format!(
                "unknown `mix` tag `{s}` (valid: {})",
                ChaosMix::NAMES.join(", ")
            )
        })?,
        Some(_) => return Err("field `mix` is not a string".into()),
        None => return Err("missing field `mix`".into()),
    };
    let num = |field: &str| row.get(field).and_then(Value::as_num).expect("checked");
    Ok(ChaosRow {
        n: num("n") as usize,
        transport,
        mix,
        loss: num("loss"),
        bursts: num("bursts") as u64,
        faults: num("faults") as u64,
        interventions: num("interventions") as u64,
        epochs: num("epochs") as u64,
        served: num("served") as u64,
        recovery_p50_ns: num("recovery_p50_ns") as u128,
        recovery_p99_ns: num("recovery_p99_ns") as u128,
        wall_ns: num("wall_ns") as u128,
    })
}

/// The source (non-derived) numeric fields of one observability JSON
/// row, in emission order — the schema the round-trip check enforces.
/// `transport` and `backend` ride alongside as string tags,
/// `per_initiator_cuts` as an array of numbers.
const OBS_ROW_FIELDS: [&str; 18] = [
    "n",
    "workers",
    "initiators",
    "interval_ms",
    "injected",
    "base_served",
    "mon_served",
    "base_wall_ns",
    "mon_wall_ns",
    "base_requests_per_sec",
    "mon_requests_per_sec",
    "overhead_pct",
    "base_p99_latency_ns",
    "mon_p99_latency_ns",
    "cuts",
    "cuts_per_sec",
    "refused",
    "mean_staleness_ns",
];

fn obs_row_from_value(row: &Value) -> Result<ObservabilityRow, String> {
    for field in OBS_ROW_FIELDS {
        match row.get(field) {
            Some(Value::Num(_)) => {}
            Some(_) => return Err(format!("field `{field}` is not a number")),
            None => return Err(format!("missing field `{field}`")),
        }
    }
    let transport = match row.get("transport") {
        Some(Value::Str(s)) => {
            RtTransport::parse(s).ok_or_else(|| format!("unknown `transport` tag `{s}`"))?
        }
        Some(_) => return Err("field `transport` is not a string".into()),
        None => return Err("missing field `transport`".into()),
    };
    let backend = match row.get("backend") {
        Some(Value::Str(s)) => {
            RtBackend::parse(s).ok_or_else(|| format!("unknown `backend` tag `{s}`"))?
        }
        Some(_) => return Err("field `backend` is not a string".into()),
        None => return Err("missing field `backend`".into()),
    };
    let per_initiator_cuts = match row.get("per_initiator_cuts") {
        Some(Value::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_num()
                    .map(|x| x as u64)
                    .ok_or_else(|| "`per_initiator_cuts` entry is not a number".to_string())
            })
            .collect::<Result<Vec<u64>, String>>()?,
        Some(_) => return Err("field `per_initiator_cuts` is not an array".into()),
        None => return Err("missing field `per_initiator_cuts`".into()),
    };
    let num = |field: &str| row.get(field).and_then(Value::as_num).expect("checked");
    Ok(ObservabilityRow {
        n: num("n") as usize,
        transport,
        backend,
        workers: num("workers") as u64,
        initiators: num("initiators") as u64,
        interval_ms: num("interval_ms") as u64,
        injected: num("injected") as u64,
        base_served: num("base_served") as u64,
        mon_served: num("mon_served") as u64,
        base_wall_ns: num("base_wall_ns") as u128,
        mon_wall_ns: num("mon_wall_ns") as u128,
        base_p99_latency_ns: num("base_p99_latency_ns") as u128,
        mon_p99_latency_ns: num("mon_p99_latency_ns") as u128,
        cuts: num("cuts") as u64,
        refused: num("refused") as u64,
        mean_staleness_ns: num("mean_staleness_ns") as u128,
        per_initiator_cuts,
    })
}

/// The source (non-derived) numeric fields of one mux JSON row, in
/// emission order — the schema the round-trip check enforces. `backend`
/// rides alongside as a string tag.
const MUX_ROW_FIELDS: [&str; 12] = [
    "n",
    "workers",
    "loss",
    "injected",
    "served",
    "msgs",
    "wall_ns",
    "requests_per_sec",
    "msgs_per_sec",
    "mean_latency_ns",
    "p50_latency_ns",
    "p99_latency_ns",
];

fn mux_row_from_value(row: &Value) -> Result<MuxResult, String> {
    for field in MUX_ROW_FIELDS {
        match row.get(field) {
            Some(Value::Num(_)) => {}
            Some(_) => return Err(format!("field `{field}` is not a number")),
            None => return Err(format!("missing field `{field}`")),
        }
    }
    let backend = match row.get("backend") {
        Some(Value::Str(s)) => {
            RtBackend::parse(s).ok_or_else(|| format!("unknown `backend` tag `{s}`"))?
        }
        Some(_) => return Err("field `backend` is not a string".into()),
        None => return Err("missing field `backend`".into()),
    };
    let num = |field: &str| row.get(field).and_then(Value::as_num).expect("checked");
    Ok(MuxResult {
        n: num("n") as usize,
        backend,
        workers: num("workers") as usize,
        loss: num("loss"),
        injected: num("injected") as u64,
        served: num("served") as u64,
        msgs: num("msgs") as u64,
        wall_ns: num("wall_ns") as u128,
        mean_latency_ns: num("mean_latency_ns") as u128,
        p50_latency_ns: num("p50_latency_ns") as u128,
        p99_latency_ns: num("p99_latency_ns") as u128,
    })
}

/// Parses a `BENCH_RUNTIME.json` document back through the bench's own
/// schema: `(baseline rows, sharded rows, udp rows, forwarding rows,
/// chaos rows, observability rows, mux rows, total_served)`.
/// Every row must carry every field of [`struct@RtResult`] (chaos rows:
/// every field of [`struct@ChaosRow`]; observability rows: every field
/// of [`struct@ObservabilityRow`]): the numeric source fields (plus
/// the derived rates) as numbers and the `transport`/`mix` tags as known
/// strings; anything missing, extra-typed or structurally off is an
/// error — including a pre-chaos-era document without the `chaos` array,
/// a pre-monitor-era document without the `observability` array, or a
/// pre-mux-era document without the `mux` array.
/// `from_json(to_json(b, s, u, f, c, o, m))` reproduces
/// `b`/`s`/`u`/`f`/`c`/`o`/`m` exactly (derived rates are recomputed
/// from the source fields).
#[allow(clippy::type_complexity)]
pub fn from_json(
    doc: &str,
) -> Result<
    (
        Vec<RtResult>,
        Vec<RtResult>,
        Vec<RtResult>,
        Vec<RtResult>,
        Vec<ChaosRow>,
        Vec<ObservabilityRow>,
        Vec<MuxResult>,
        u64,
    ),
    String,
> {
    let value = jsonv::parse(doc)?;
    if value.get("experiment").and_then(Value::as_str) != Some("live_runtime_mutex_service") {
        return Err("wrong or missing `experiment` tag".into());
    }
    if value.get("unit").and_then(Value::as_str).is_none() {
        return Err("missing `unit`".into());
    }
    let rows = |key: &str| -> Result<Vec<RtResult>, String> {
        value
            .get(key)
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("missing `{key}` array"))?
            .iter()
            .enumerate()
            .map(|(i, row)| row_from_value(row).map_err(|e| format!("{key}[{i}]: {e}")))
            .collect()
    };
    let baseline = rows("results")?;
    let sharded = rows("sharded")?;
    let udp = rows("udp")?;
    let forwarding = rows("forwarding")?;
    let chaos: Vec<ChaosRow> = value
        .get("chaos")
        .and_then(Value::as_arr)
        .ok_or("missing `chaos` array")?
        .iter()
        .enumerate()
        .map(|(i, row)| chaos_row_from_value(row).map_err(|e| format!("chaos[{i}]: {e}")))
        .collect::<Result<_, _>>()?;
    let observability: Vec<ObservabilityRow> = value
        .get("observability")
        .and_then(Value::as_arr)
        .ok_or("missing `observability` array")?
        .iter()
        .enumerate()
        .map(|(i, row)| obs_row_from_value(row).map_err(|e| format!("observability[{i}]: {e}")))
        .collect::<Result<_, _>>()?;
    let mux: Vec<MuxResult> = value
        .get("mux")
        .and_then(Value::as_arr)
        .ok_or("missing `mux` array")?
        .iter()
        .enumerate()
        .map(|(i, row)| mux_row_from_value(row).map_err(|e| format!("mux[{i}]: {e}")))
        .collect::<Result<_, _>>()?;
    let total = value
        .get("total_served")
        .and_then(Value::as_num)
        .ok_or("missing `total_served`")? as u64;
    let served: u64 = baseline
        .iter()
        .chain(&sharded)
        .chain(&udp)
        .chain(&forwarding)
        .map(|r| r.served)
        .chain(chaos.iter().map(|r| r.served))
        .chain(observability.iter().map(|r| r.base_served + r.mon_served))
        .chain(mux.iter().map(|r| r.served))
        .sum();
    if total != served {
        return Err(format!(
            "total_served {total} disagrees with the rows' sum {served}"
        ));
    }
    Ok((
        baseline,
        sharded,
        udp,
        forwarding,
        chaos,
        observability,
        mux,
        total,
    ))
}

/// Validates that a document emitted by [`to_json`] round-trips through
/// [`from_json`] to exactly the in-memory results. This is what
/// `exp_rtbench` runs before writing `BENCH_RUNTIME.json`, so schema
/// drift fails the binary instead of landing in the committed artifact.
#[allow(clippy::too_many_arguments)]
pub fn validate_roundtrip(
    doc: &str,
    baseline: &[RtResult],
    sharded: &[RtResult],
    udp: &[RtResult],
    forwarding: &[RtResult],
    chaos: &[ChaosRow],
    observability: &[ObservabilityRow],
    mux: &[MuxResult],
) -> Result<(), String> {
    let (b, s, u, f, c, o, m, _) = from_json(doc)?;
    if b != baseline {
        return Err("baseline rows did not round-trip".into());
    }
    if s != sharded {
        return Err("sharded rows did not round-trip".into());
    }
    if u != udp {
        return Err("udp rows did not round-trip".into());
    }
    if f != forwarding {
        return Err("forwarding rows did not round-trip".into());
    }
    if c != chaos {
        return Err("chaos rows did not round-trip".into());
    }
    if o != observability {
        return Err("observability rows did not round-trip".into());
    }
    if m != mux {
        return Err("mux rows did not round-trip".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_serves_requests() {
        let r = measure(3, RtTransport::InMem, 0.0, 2, Duration::from_secs(30), 1);
        assert_eq!(r.n, 3);
        assert_eq!(r.served, 6);
        assert_eq!((r.shards, r.batch), (1, 1));
        assert_eq!(r.transport, RtTransport::InMem);
        assert!(r.requests_per_sec() > 0.0);
        assert!(r.msgs_per_sec() > 0.0);
        assert!(r.p50_latency_ns <= r.p99_latency_ns);
    }

    #[test]
    fn measure_udp_serves_requests() {
        if !snapstab_net::udp_available() {
            eprintln!("warning: UDP loopback unavailable in this sandbox; skipping");
            return;
        }
        let r = measure(3, RtTransport::Udp, 0.0, 2, Duration::from_secs(30), 1);
        assert_eq!(r.served, 6);
        assert_eq!(r.transport, RtTransport::Udp);
        assert!(r.requests_per_sec() > 0.0);
    }

    #[test]
    fn measure_sharded_serves_and_batches() {
        let r = measure_sharded(3, 0.0, 2, 2, 4, 0, Duration::from_secs(40), 2);
        assert_eq!(r.served, 12, "all requests served");
        assert!(r.grants >= 6, "at most 2 requests per grant");
        assert!(r.grants <= 12);
        assert!(r.mean_batch() >= 1.0 && r.mean_batch() <= 2.0);
        assert!(r.p50_latency_ns <= r.p99_latency_ns);
    }

    #[test]
    fn measure_sharded_queue_depth_sizes_the_workload() {
        // queue_depth 3 × 2 shards × 3 processes = 18 requests, not 4×3.
        let r = measure_sharded(3, 0.0, 2, 2, 4, 3, Duration::from_secs(40), 2);
        assert_eq!(r.injected, 18);
        assert_eq!(r.served, 18);
    }

    fn sample_row(n: usize, shards: usize, batch: usize) -> RtResult {
        RtResult {
            n,
            transport: RtTransport::InMem,
            loss: 0.1,
            shards,
            batch,
            injected: 10,
            served: 10,
            grants: 5,
            cs_entries: 10,
            msgs: 1000,
            wall_ns: 1_000_000,
            mean_latency_ns: 5_000,
            p50_latency_ns: 4_000,
            p99_latency_ns: 9_000,
        }
    }

    fn sample_udp_row(n: usize) -> RtResult {
        RtResult {
            transport: RtTransport::Udp,
            ..sample_row(n, 1, 1)
        }
    }

    fn sample_forwarding_row(n: usize) -> RtResult {
        RtResult {
            cs_entries: 0,
            ..sample_row(n, 1, 1)
        }
    }

    fn sample_chaos_row(n: usize, mix: ChaosMix) -> ChaosRow {
        ChaosRow {
            n,
            transport: RtTransport::InMem,
            mix,
            loss: 0.0,
            bursts: 3,
            faults: 5,
            interventions: 2,
            epochs: 6,
            served: 10,
            recovery_p50_ns: 2_000_000,
            recovery_p99_ns: 7_000_000,
            wall_ns: 1_000_000,
        }
    }

    fn sample_mux_row(n: usize, backend: RtBackend) -> MuxResult {
        MuxResult {
            n,
            backend,
            workers: if backend == RtBackend::Mux { 4 } else { n },
            loss: 0.0,
            injected: 10,
            served: 10,
            msgs: 1000,
            wall_ns: 1_000_000,
            mean_latency_ns: 5_000,
            p50_latency_ns: 4_000,
            p99_latency_ns: 9_000,
        }
    }

    fn sample_obs_row(n: usize, interval_ms: u64) -> ObservabilityRow {
        ObservabilityRow {
            n,
            transport: RtTransport::InMem,
            backend: RtBackend::Threads,
            workers: n as u64,
            initiators: 1,
            interval_ms,
            injected: 10,
            base_served: 10,
            mon_served: 10,
            base_wall_ns: 1_000_000,
            mon_wall_ns: 1_100_000,
            base_p99_latency_ns: 9_000,
            mon_p99_latency_ns: 11_000,
            cuts: 4,
            refused: 1,
            mean_staleness_ns: 450_000,
            per_initiator_cuts: vec![4],
        }
    }

    fn sample_obs_mux_row(n: usize, initiators: usize) -> ObservabilityRow {
        ObservabilityRow {
            backend: RtBackend::Mux,
            workers: 4,
            initiators: initiators as u64,
            cuts: 4,
            per_initiator_cuts: match initiators {
                2 => vec![3, 1],
                _ => vec![4],
            },
            ..sample_obs_row(n, 100)
        }
    }

    #[test]
    fn measure_forwarding_delivers_payloads() {
        let r = measure_forwarding(3, RtTransport::InMem, 0.0, 2, Duration::from_secs(30), 1);
        assert_eq!(r.n, 3);
        assert_eq!(r.served, 6, "all payloads delivered");
        assert_eq!(r.cs_entries, 0, "forwarding has no critical sections");
        assert_eq!((r.shards, r.batch), (1, 1));
        assert!(r.requests_per_sec() > 0.0);
        assert!(r.msgs_per_sec() > 0.0);
        assert!(r.p50_latency_ns <= r.p99_latency_ns);
    }

    #[test]
    fn measure_forwarding_udp_delivers_payloads() {
        if !snapstab_net::udp_available() {
            eprintln!("warning: UDP loopback unavailable in this sandbox; skipping");
            return;
        }
        let r = measure_forwarding(3, RtTransport::Udp, 0.0, 2, Duration::from_secs(30), 1);
        assert_eq!(r.served, 6);
        assert_eq!(r.transport, RtTransport::Udp);
    }

    #[test]
    fn json_shape_and_roundtrip() {
        let baseline = vec![sample_row(8, 1, 1)];
        let sharded = vec![sample_row(32, 4, 4), sample_row(32, 8, 8)];
        let udp = vec![sample_row(8, 1, 1), sample_udp_row(8)];
        let forwarding = vec![sample_forwarding_row(8), sample_forwarding_row(16)];
        let chaos = vec![
            sample_chaos_row(8, ChaosMix::Corrupt),
            ChaosRow {
                transport: RtTransport::Udp,
                ..sample_chaos_row(8, ChaosMix::All)
            },
        ];
        let obs = vec![
            sample_obs_row(8, 100),
            sample_obs_row(16, 25),
            sample_obs_mux_row(64, 2),
        ];
        let mux = vec![
            sample_mux_row(64, RtBackend::Threads),
            sample_mux_row(64, RtBackend::Mux),
            sample_mux_row(1024, RtBackend::Mux),
        ];
        let j = to_json(&baseline, &sharded, &udp, &forwarding, &chaos, &obs, &mux);
        assert!(j.contains("live_runtime_mutex_service"));
        assert!(j.contains("\"p99_latency_ns\": 9000"));
        assert!(j.contains("\"transport\": \"inmem\""));
        assert!(j.contains("\"transport\": \"udp\""));
        assert!(j.contains("\"forwarding\": ["));
        assert!(j.contains("\"chaos\": ["));
        assert!(j.contains("\"mix\": \"corrupt\""));
        assert!(j.contains("\"recovery_p99_ns\": 7000000"));
        assert!(j.contains("\"observability\": ["));
        assert!(j.contains("\"interval_ms\": 100"));
        assert!(j.contains("\"mean_staleness_ns\": 450000"));
        assert!(j.contains("\"mux\": ["));
        assert!(j.contains("\"backend\": \"threads\""));
        assert!(j.contains("\"backend\": \"mux\""));
        assert!(j.contains("\"workers\": 4"));
        assert!(j.contains("\"initiators\": 2"));
        assert!(j.contains("\"per_initiator_cuts\": [3, 1]"));
        assert!(j.contains("\"total_served\": 180"));
        assert!(j.trim_end().ends_with('}'));
        let (b, s, u, f, c, o, m, total) = from_json(&j).expect("parses");
        assert_eq!(b, baseline);
        assert_eq!(s, sharded);
        assert_eq!(u, udp);
        assert_eq!(f, forwarding);
        assert_eq!(c, chaos);
        assert_eq!(o, obs);
        assert_eq!(m, mux);
        assert_eq!(total, 180);
        validate_roundtrip(
            &j,
            &baseline,
            &sharded,
            &udp,
            &forwarding,
            &chaos,
            &obs,
            &mux,
        )
        .expect("round-trips");
    }

    #[test]
    fn from_json_rejects_field_drift() {
        let baseline = vec![sample_row(8, 1, 1)];
        let good = to_json(&baseline, &[], &[], &[], &[], &[], &[]);
        // Rename a field: the schema check must notice.
        let renamed = good.replace("\"p99_latency_ns\"", "\"p99\"");
        let err = from_json(&renamed).unwrap_err();
        assert!(err.contains("p99_latency_ns"), "{err}");
        // Corrupt the total: the cross-check must notice.
        let wrong_total = good.replace("\"total_served\": 10", "\"total_served\": 11");
        assert!(from_json(&wrong_total)
            .unwrap_err()
            .contains("total_served"));
        // A stringly-typed number is drift too.
        let stringly = good.replace("\"served\": 10", "\"served\": \"10\"");
        assert!(from_json(&stringly).unwrap_err().contains("not a number"));
        // So are a missing, mistyped or unknown transport tag.
        let missing_transport = good.replace("\"transport\": \"inmem\", ", "");
        assert!(from_json(&missing_transport)
            .unwrap_err()
            .contains("transport"));
        let bad_tag = good.replace("\"transport\": \"inmem\"", "\"transport\": \"tcp\"");
        assert!(from_json(&bad_tag).unwrap_err().contains("tcp"));
        let numeric_tag = good.replace("\"transport\": \"inmem\"", "\"transport\": 3");
        assert!(from_json(&numeric_tag)
            .unwrap_err()
            .contains("not a string"));
        // A document missing the udp array entirely is drift.
        let (head, tail) = good.split_once("  \"udp\"").expect("udp array present");
        let udp_tail = tail.split_once("  ],\n").expect("udp array closes").1;
        let no_udp = format!("{head}{udp_tail}");
        assert!(from_json(&no_udp).unwrap_err().contains("udp"));
        // So is a document missing the forwarding array (a PR-4-era file
        // must be regenerated, not silently accepted).
        let (head, _) = good
            .split_once("  \"forwarding\"")
            .expect("forwarding array present");
        let no_forwarding = format!("{head}  \"total_served\": 10\n}}\n");
        assert!(from_json(&no_forwarding)
            .unwrap_err()
            .contains("forwarding"));
        // And the round-trip validator catches value changes.
        let off_by_one = good.replace("\"msgs\": 1000", "\"msgs\": 1001");
        assert!(validate_roundtrip(&off_by_one, &baseline, &[], &[], &[], &[], &[], &[]).is_err());
    }

    #[test]
    fn from_json_rejects_mux_drift() {
        let baseline = vec![sample_row(8, 1, 1)];
        let mux = vec![
            sample_mux_row(64, RtBackend::Threads),
            sample_mux_row(256, RtBackend::Mux),
        ];
        let good = to_json(&baseline, &[], &[], &[], &[], &[], &mux);
        // A pre-mux-era document without the mux array is drift: it must
        // be regenerated, not silently accepted.
        let (head, tail) = good.split_once("  \"mux\"").expect("mux array present");
        let mux_tail = tail.split_once("  ],\n").expect("mux array closes").1;
        let no_mux = format!("{head}{mux_tail}");
        let err = from_json(&no_mux).unwrap_err();
        assert!(err.contains("mux"), "{err}");
        // A renamed workers field is drift.
        let renamed = good.replace("\"workers\"", "\"pool\"");
        assert!(from_json(&renamed).unwrap_err().contains("workers"));
        // An unknown, mistyped or missing backend tag is drift.
        let bad_tag = good.replace("\"backend\": \"mux\"", "\"backend\": \"fibers\"");
        assert!(from_json(&bad_tag).unwrap_err().contains("fibers"));
        let numeric_tag = good.replace("\"backend\": \"mux\"", "\"backend\": 1");
        assert!(from_json(&numeric_tag)
            .unwrap_err()
            .contains("not a string"));
        let missing_tag = good.replace("\"backend\": \"mux\", ", "");
        assert!(from_json(&missing_tag).unwrap_err().contains("backend"));
        // Mux served counts toward the total cross-check.
        let wrong_total = good.replace("\"total_served\": 30", "\"total_served\": 10");
        assert!(from_json(&wrong_total)
            .unwrap_err()
            .contains("total_served"));
        // The round-trip validator catches mux value changes too.
        let off = good.replace("\"workers\": 4", "\"workers\": 8");
        assert!(
            validate_roundtrip(&off, &baseline, &[], &[], &[], &[], &[], &mux)
                .unwrap_err()
                .contains("mux")
        );
    }

    #[test]
    fn from_json_rejects_chaos_drift() {
        let baseline = vec![sample_row(8, 1, 1)];
        let chaos = vec![sample_chaos_row(8, ChaosMix::All)];
        let good = to_json(&baseline, &[], &[], &[], &chaos, &[], &[]);
        // A pre-chaos-era document without the chaos array is drift: it
        // must be regenerated, not silently accepted.
        let (head, tail) = good.split_once("  \"chaos\"").expect("chaos array present");
        let chaos_tail = tail.split_once("  ],\n").expect("chaos array closes").1;
        let no_chaos = format!("{head}{chaos_tail}");
        let err = from_json(&no_chaos).unwrap_err();
        assert!(err.contains("chaos"), "{err}");
        // A renamed recovery field is drift.
        let renamed = good.replace("\"recovery_p99_ns\"", "\"rec_p99\"");
        assert!(from_json(&renamed).unwrap_err().contains("recovery_p99_ns"));
        // An unknown, mistyped or missing fault-mix tag is drift.
        let bad_mix = good.replace("\"mix\": \"all\"", "\"mix\": \"meteor\"");
        let err = from_json(&bad_mix).unwrap_err();
        assert!(err.contains("meteor") && err.contains("corrupt"), "{err}");
        let numeric_mix = good.replace("\"mix\": \"all\"", "\"mix\": 4");
        assert!(from_json(&numeric_mix)
            .unwrap_err()
            .contains("not a string"));
        let missing_mix = good.replace("\"mix\": \"all\", ", "");
        assert!(from_json(&missing_mix).unwrap_err().contains("mix"));
        // Chaos served counts toward the total cross-check.
        let wrong_total = good.replace("\"total_served\": 20", "\"total_served\": 10");
        assert!(from_json(&wrong_total)
            .unwrap_err()
            .contains("total_served"));
        // The round-trip validator catches chaos value changes too.
        let off = good.replace("\"interventions\": 2", "\"interventions\": 3");
        assert!(
            validate_roundtrip(&off, &baseline, &[], &[], &[], &chaos, &[], &[])
                .unwrap_err()
                .contains("chaos")
        );
    }

    #[test]
    fn from_json_rejects_observability_drift() {
        let baseline = vec![sample_row(8, 1, 1)];
        let obs = vec![sample_obs_row(8, 100)];
        let good = to_json(&baseline, &[], &[], &[], &[], &obs, &[]);
        // A pre-monitor-era document without the observability array is
        // drift: it must be regenerated, not silently accepted.
        let (head, tail) = good
            .split_once("  \"observability\"")
            .expect("observability array present");
        let obs_tail = tail
            .split_once("  ],\n")
            .expect("observability array closes")
            .1;
        let no_obs = format!("{head}{obs_tail}");
        let err = from_json(&no_obs).unwrap_err();
        assert!(err.contains("observability"), "{err}");
        // A renamed staleness field is drift.
        let renamed = good.replace("\"mean_staleness_ns\"", "\"staleness\"");
        assert!(from_json(&renamed)
            .unwrap_err()
            .contains("mean_staleness_ns"));
        // A stringly-typed cut count is drift too.
        let stringly = good.replace("\"cuts\": 4", "\"cuts\": \"4\"");
        assert!(from_json(&stringly).unwrap_err().contains("not a number"));
        // So are a missing, mistyped or unknown transport tag.
        let missing_transport =
            good.replace("\"transport\": \"inmem\", \"backend\"", "\"backend\"");
        assert!(from_json(&missing_transport)
            .unwrap_err()
            .contains("transport"));
        let bad_tag = good.replace(
            "\"transport\": \"inmem\", \"backend\"",
            "\"transport\": \"tcp\", \"backend\"",
        );
        assert!(from_json(&bad_tag).unwrap_err().contains("tcp"));
        // A pre-telemetry-era row without the runtime-backend tag or
        // the per-initiator attribution is drift.
        let missing_backend = good.replace("\"backend\": \"threads\", ", "");
        assert!(from_json(&missing_backend).unwrap_err().contains("backend"));
        let bad_backend = good.replace("\"backend\": \"threads\"", "\"backend\": \"fibers\"");
        assert!(from_json(&bad_backend).unwrap_err().contains("fibers"));
        let missing_attr = good.replace(", \"per_initiator_cuts\": [4]", "");
        assert!(from_json(&missing_attr)
            .unwrap_err()
            .contains("per_initiator_cuts"));
        let stringly_attr = good.replace(
            "\"per_initiator_cuts\": [4]",
            "\"per_initiator_cuts\": [\"4\"]",
        );
        assert!(from_json(&stringly_attr)
            .unwrap_err()
            .contains("not a number"));
        // Both halves of the pair count toward the total cross-check.
        let wrong_total = good.replace("\"total_served\": 30", "\"total_served\": 20");
        assert!(from_json(&wrong_total)
            .unwrap_err()
            .contains("total_served"));
        // The round-trip validator catches observability value changes.
        let off = good.replace("\"refused\": 1", "\"refused\": 2");
        assert!(
            validate_roundtrip(&off, &baseline, &[], &[], &[], &[], &obs, &[])
                .unwrap_err()
                .contains("observability")
        );
    }

    #[test]
    fn measure_observability_pairs_and_judges_cuts() {
        // A tiny live pair: both halves must serve everything, the
        // phase-zero schedule must land at least one cut, and
        // `measure_observability` asserts the Specification 5 verdict
        // before returning.
        let r = measure_observability(
            3,
            RtTransport::InMem,
            RtBackend::Threads,
            3,
            1,
            Duration::from_millis(5),
            3,
            Duration::from_secs(30),
            0x0B5E,
        );
        assert_eq!(r.injected, 9);
        assert_eq!(r.base_served, 9);
        assert_eq!(r.mon_served, 9, "monitoring must not drop requests");
        assert!(r.cuts >= 1, "a 5ms interval must land at least one cut");
        assert!(r.cuts_per_sec() > 0.0);
        assert!(r.base_requests_per_sec() > 0.0);
        assert!(r.mon_requests_per_sec() > 0.0);
        assert_eq!(r.per_initiator_cuts.len(), 1);
        assert_eq!(r.per_initiator_cuts[0], r.cuts);
    }

    /// The CLI's `--metrics-out` stream and its final `monitor metrics:`
    /// block share one schema (`SeriesPoint::json_line`,
    /// `Alert::json_line`, `summary_json_line`). Every line must parse
    /// back through the bench's own JSON reader with the stable tags and
    /// numeric fields intact — schema drift fails here, not in a
    /// downstream dashboard.
    #[test]
    fn telemetry_stream_lines_roundtrip_through_jsonv() {
        use snapstab_runtime::{summary_json_line, Alert, AlertKind, Series};
        let cfg = MutexServiceConfig {
            n: 3,
            requests_per_process: 2,
            cs_duration: 0,
            live: LiveConfig {
                seed: 7,
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(30),
        };
        let mon = MonitorConfig {
            interval: Duration::from_millis(5),
            ..MonitorConfig::default()
        };
        let report = run_monitored_mutex_service_on(&cfg, &mon, &InMemory).expect("inmem spawns");
        assert!(!report.monitor.cuts.is_empty(), "need cuts to serialize");
        let mut series = Series::default();
        for cut in &report.monitor.cuts {
            let v = jsonv::parse(&series.observe(cut).json_line()).expect("cut line parses");
            assert_eq!(v.get("type").and_then(Value::as_str), Some("cut"));
            for field in [
                "initiator",
                "cut",
                "step",
                "at_ms",
                "staleness_ms",
                "served_total",
                "queue_total",
                "in_flight_total",
                "in_transit_total",
                "served_per_sec",
                "queue_delta",
                "in_flight_delta",
                "loss_rate",
            ] {
                assert!(
                    matches!(v.get(field), Some(Value::Num(_))),
                    "cut line field `{field}` missing or not a number"
                );
            }
            assert_eq!(
                v.get("cut").and_then(Value::as_num),
                Some(cut.cut as f64),
                "cut id survives the round trip"
            );
        }
        let summary = summary_json_line(mon.interval, &report.monitor, 123.4);
        let v = jsonv::parse(&summary).expect("summary line parses");
        assert_eq!(v.get("type").and_then(Value::as_str), Some("summary"));
        assert_eq!(v.get("interval_ms").and_then(Value::as_num), Some(5.0));
        assert_eq!(
            v.get("cuts").and_then(Value::as_num),
            Some(report.monitor.cuts.len() as f64)
        );
        for field in [
            "initiators",
            "cuts_per_sec",
            "refused",
            "mean_staleness_ms",
            "work_per_sec",
            "alerts",
        ] {
            assert!(
                matches!(v.get(field), Some(Value::Num(_))),
                "summary field `{field}` missing or not a number"
            );
        }
        let alert = Alert {
            kind: AlertKind::RefusalStreak,
            initiator: snapstab_sim::ProcessId::new(0),
            cut: 9,
            streak: 3,
            value: 3,
        };
        let v = jsonv::parse(&alert.json_line()).expect("alert line parses");
        assert_eq!(v.get("type").and_then(Value::as_str), Some("alert"));
        assert_eq!(
            v.get("kind").and_then(Value::as_str),
            Some("refusal-streak")
        );
        assert_eq!(v.get("streak").and_then(Value::as_num), Some(3.0));
    }

    #[test]
    fn measure_observability_mux_multi_initiator_attributes_cuts() {
        // The monitor composed with the mux backend, two concurrent
        // initiators: the audit inside `measure_observability` gates on
        // Specification 5 *and* per-ledger attribution before the row
        // can exist.
        let r = measure_observability(
            4,
            RtTransport::InMem,
            RtBackend::Mux,
            2,
            2,
            Duration::from_millis(5),
            3,
            Duration::from_secs(30),
            0x0B5E ^ 4,
        );
        assert_eq!((r.backend, r.workers, r.initiators), (RtBackend::Mux, 2, 2));
        assert_eq!(r.base_served, 12);
        assert_eq!(r.mon_served, 12, "monitoring must not drop requests");
        assert!(r.cuts >= 1);
        assert_eq!(r.per_initiator_cuts.len(), 2);
        assert_eq!(r.per_initiator_cuts.iter().sum::<u64>(), r.cuts);
    }

    #[test]
    fn render_includes_every_table() {
        let out = render(
            &[sample_row(8, 1, 1)],
            &[sample_row(32, 4, 4)],
            &[sample_row(8, 1, 1), sample_udp_row(8)],
            &[sample_forwarding_row(8)],
            &[sample_chaos_row(8, ChaosMix::Partition)],
            &[sample_obs_row(8, 100), sample_obs_mux_row(64, 2)],
            &[
                sample_mux_row(64, RtBackend::Threads),
                sample_mux_row(256, RtBackend::Mux),
            ],
        );
        assert!(out.contains("baseline"));
        assert!(out.contains("sharded multi-leader"));
        assert!(out.contains("transport comparison"));
        assert!(out.contains("udp"));
        assert!(out.contains("forwarding service"));
        assert!(out.contains("p99 ms"));
        assert!(out.contains("chaos engine"));
        assert!(out.contains("partition"));
        assert!(out.contains("rec p99 ms"));
        assert!(out.contains("observability"));
        assert!(out.contains("cuts/s"));
        assert!(out.contains("stale ms"));
        assert!(out.contains("inits"));
        assert!(out.contains("runtime comparison"));
        assert!(out.contains("threads"));
        assert!(out.contains("mux"));
        assert!(out.contains("total requests served end-to-end: 120"));
    }

    #[test]
    fn measure_mux_serves_on_both_backends() {
        let t = measure_mux(3, RtBackend::Threads, 3, 0.0, 2, Duration::from_secs(30), 1);
        assert_eq!(t.served, 6);
        assert_eq!((t.backend, t.workers), (RtBackend::Threads, 3));
        let m = measure_mux(3, RtBackend::Mux, 2, 0.0, 2, Duration::from_secs(30), 1);
        assert_eq!(m.served, 6, "the mux backend serves the same workload");
        assert_eq!((m.backend, m.workers), (RtBackend::Mux, 2));
        assert!(m.requests_per_sec() > 0.0);
        assert!(m.p50_latency_ns <= m.p99_latency_ns);
    }

    #[test]
    fn measure_chaos_recovers_and_reports_finite_quantiles() {
        // A tiny live chaos row: every burst must land mid-run, the
        // per-epoch verdict must hold (measure_chaos asserts it), and
        // the recovery distribution must be finite and non-empty.
        let r = measure_chaos(
            3,
            RtTransport::InMem,
            ChaosMix::All,
            0.0,
            30,
            Duration::from_millis(25),
            Duration::from_millis(15),
            Duration::from_secs(60),
            0xC405,
        );
        assert_eq!(r.served, 90, "all requests served despite the chaos");
        assert_eq!(r.bursts, 3, "every planned burst fired mid-run");
        assert_eq!(r.epochs, r.faults + 1);
        assert!(r.recovery_p50_ns > 0);
        assert!(r.recovery_p50_ns <= r.recovery_p99_ns);
    }
}
