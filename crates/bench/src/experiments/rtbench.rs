//! **Q6 — live-runtime mutex-service throughput, single-leader and
//! sharded.**
//!
//! Drives the `snapstab-runtime` mutex services — Algorithm 3 on one OS
//! thread per process over the concurrent lossy transport — with a
//! saturating client request stream, and reports end-to-end requests/sec,
//! grants/sec and transport msgs/sec.
//!
//! Two sweeps feed `BENCH_RUNTIME.json`:
//!
//! * the **baseline** `n × loss` sweep
//!   ([`run_mutex_service`]: one leader, one request
//!   per grant) — the protocol-bound curve PR 2 committed;
//! * the **sharded** `shards × batch` sweep
//!   ([`run_sharded_service`]: `S` leaders over
//!   hash-partitioned resource keys, up to `batch` non-conflicting
//!   requests per grant) — the curve that multiplies it.
//!
//! Every row serializes the latency *distribution* (mean, p50, p99), not
//! just the mean, and the emitted JSON is parsed back through the bench's
//! own schema ([`from_json`]) before it can land in the committed
//! artifact — field drift fails the binary, not the next PR.

use std::time::Duration;

use snapstab_runtime::{
    run_mutex_service, run_sharded_service, LiveConfig, MutexServiceConfig, ShardedServiceConfig,
};

use crate::jsonv::{self, Value};
use crate::stats::Summary;
use crate::table::Table;

/// One measured configuration (baseline rows have `shards == batch == 1`).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct RtResult {
    /// System size (worker threads).
    pub n: usize,
    /// In-transit loss probability.
    pub loss: f64,
    /// Independent protocol instances (leaders).
    pub shards: usize,
    /// Maximum client requests per critical-section grant.
    pub batch: usize,
    /// Requests injected into the service.
    pub injected: u64,
    /// Requests served end-to-end.
    pub served: u64,
    /// Critical-section grants performed.
    pub grants: u64,
    /// Critical-section entries summed over all processes and shards.
    pub cs_entries: u64,
    /// Transport messages enqueued.
    pub msgs: u64,
    /// Wall-clock nanoseconds.
    pub wall_ns: u128,
    /// Mean service latency in nanoseconds (0 if nothing served).
    pub mean_latency_ns: u128,
    /// Median service latency in nanoseconds.
    pub p50_latency_ns: u128,
    /// 99th-percentile service latency in nanoseconds.
    pub p99_latency_ns: u128,
}

impl RtResult {
    /// Served requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        self.served as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Critical-section grants per second.
    pub fn grants_per_sec(&self) -> f64 {
        self.grants as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Transport messages per second.
    pub fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Mean requests served per grant (the realized batch factor).
    pub fn mean_batch(&self) -> f64 {
        if self.grants == 0 {
            0.0
        } else {
            self.served as f64 / self.grants as f64
        }
    }
}

/// Summarizes a latency sample into `(mean, p50, p99)` nanoseconds.
fn latency_stats(latencies: &[Duration]) -> (u128, u128, u128) {
    if latencies.is_empty() {
        return (0, 0, 0);
    }
    let s = Summary::of(latencies.iter().map(|d| d.as_nanos() as f64));
    (s.mean as u128, s.p50 as u128, s.p99 as u128)
}

/// Measures one baseline (single-leader, unbatched) configuration:
/// `requests_per_process` client requests per process, stopping early at
/// `budget`.
pub fn measure(
    n: usize,
    loss: f64,
    requests_per_process: u64,
    budget: Duration,
    seed: u64,
) -> RtResult {
    let cfg = MutexServiceConfig {
        n,
        requests_per_process,
        cs_duration: 0,
        live: LiveConfig {
            loss,
            seed,
            record_trace: false,
            ..LiveConfig::default()
        },
        time_budget: budget,
    };
    let report = run_mutex_service(&cfg);
    let (mean_latency_ns, p50_latency_ns, p99_latency_ns) = latency_stats(&report.latencies);
    RtResult {
        n,
        loss,
        shards: 1,
        batch: 1,
        injected: report.injected,
        served: report.served,
        grants: report.served, // one grant per request in the baseline
        cs_entries: report.cs_entries,
        msgs: report.stats.links.enqueued,
        wall_ns: report.wall.as_nanos(),
        mean_latency_ns,
        p50_latency_ns,
        p99_latency_ns,
    }
}

/// Measures one sharded, batching configuration.
pub fn measure_sharded(
    n: usize,
    loss: f64,
    shards: usize,
    batch: usize,
    requests_per_process: u64,
    budget: Duration,
    seed: u64,
) -> RtResult {
    let cfg = ShardedServiceConfig {
        n,
        shards,
        batch,
        requests_per_process,
        key_space: 1 << 16,
        cs_duration: 0,
        live: LiveConfig {
            loss,
            seed,
            record_trace: false,
            ..LiveConfig::default()
        },
        time_budget: budget,
    };
    let report = run_sharded_service(&cfg);
    let cs_entries = report
        .processes
        .iter()
        .map(|m| {
            (0..m.shard_count())
                .map(|s| m.shard(s).counters().cs_entries)
                .sum::<u64>()
        })
        .sum();
    let (mean_latency_ns, p50_latency_ns, p99_latency_ns) = latency_stats(&report.latencies);
    RtResult {
        n,
        loss,
        shards,
        batch,
        injected: report.injected.len() as u64,
        served: report.served,
        grants: report.grant_log.len() as u64,
        cs_entries,
        msgs: report.stats.links.enqueued,
        wall_ns: report.wall.as_nanos(),
        mean_latency_ns,
        p50_latency_ns,
        p99_latency_ns,
    }
}

/// Runs the baseline sweep: `n ∈ {8, 16, 32, 64}` × `loss ∈ {0, 0.1,
/// 0.3}` (`--fast`: a smoke-sized subset so CI can exercise the binary).
pub fn sweep(fast: bool) -> Vec<RtResult> {
    let (sizes, losses): (&[usize], &[f64]) = if fast {
        (&[4, 8], &[0.0, 0.1])
    } else {
        (&[8, 16, 32, 64], &[0.0, 0.1, 0.3])
    };
    let mut results = Vec::new();
    for &n in sizes {
        for &loss in losses {
            // Size the request queues so the full sweep comfortably
            // clears 10⁵ end-to-end requests in total: throughput is
            // bounded by the leader's Value rotation (one CS grant per
            // favoured-process cycle), so the per-process queue shrinks
            // as n and loss grow.
            let per_process: u64 = if fast {
                5
            } else {
                let base: u64 = match n {
                    8 => 6_000,
                    16 => 1_000,
                    32 => 150,
                    _ => 40,
                };
                let factor = if loss == 0.0 {
                    1.0
                } else if loss < 0.2 {
                    0.35
                } else {
                    0.2
                };
                ((base as f64 * factor) as u64).max(10)
            };
            let budget = if fast {
                Duration::from_secs(20)
            } else {
                Duration::from_secs(150)
            };
            results.push(measure(n, loss, per_process, budget, 0xC0FFEE ^ n as u64));
        }
    }
    results
}

/// The expected single-leader req/s at `n` (the PR 2 baseline), used only
/// to size the sharded sweep's request queues.
fn baseline_reqs_per_sec(n: usize) -> f64 {
    match n {
        0..=8 => 950.0,
        9..=16 => 296.0,
        17..=32 => 106.0,
        _ => 34.0,
    }
}

/// Runs the sharded `shards × batch` sweep (loss 0). The full grid
/// focuses on `n = 32` — the point where the baseline collapses to ~106
/// req/s — plus `n ∈ {8, 64}` spot checks of the best configuration.
pub fn sweep_sharded(fast: bool) -> Vec<RtResult> {
    let grid: &[(usize, usize, usize)] = if fast {
        &[(4, 2, 2)]
    } else {
        &[
            (32, 1, 1), // in-sweep re-measure of the baseline point
            (32, 1, 8), // batching alone
            (32, 4, 1), // sharding alone
            (32, 2, 4),
            (32, 4, 4),
            (32, 4, 8),
            (32, 8, 8),
            (8, 4, 4),
            (64, 4, 4),
        ]
    };
    let mut results = Vec::new();
    for &(n, shards, batch) in grid {
        let per_process: u64 = if fast {
            4
        } else {
            // Pessimistic sizing: assume sharding halves the per-grant
            // rate and batching multiplies it; target ~15s per row.
            let expected = baseline_reqs_per_sec(n) * batch as f64 * 0.5;
            (((expected * 15.0) / n as f64).ceil() as u64).max(10)
        };
        let budget = if fast {
            Duration::from_secs(20)
        } else {
            Duration::from_secs(90)
        };
        let seed = 0xBA7C4 ^ (n as u64) ^ ((shards as u64) << 8) ^ ((batch as u64) << 16);
        results.push(measure_sharded(
            n,
            0.0,
            shards,
            batch,
            per_process,
            budget,
            seed,
        ));
    }
    results
}

fn push_rows(table: &mut Table, results: &[RtResult]) {
    for r in results {
        table.row(&[
            r.n.to_string(),
            format!("{:.1}", r.loss),
            r.shards.to_string(),
            r.batch.to_string(),
            r.served.to_string(),
            format!("{:.0}", r.requests_per_sec()),
            format!("{:.0}", r.grants_per_sec()),
            format!("{:.2}", r.mean_batch()),
            format!("{:.0}", r.msgs_per_sec()),
            format!("{:.2}", r.mean_latency_ns as f64 / 1e6),
            format!("{:.2}", r.p50_latency_ns as f64 / 1e6),
            format!("{:.2}", r.p99_latency_ns as f64 / 1e6),
        ]);
    }
}

const COLUMNS: [&str; 12] = [
    "n",
    "loss",
    "shards",
    "batch",
    "served",
    "req/s",
    "grants/s",
    "batch eff",
    "msgs/s",
    "mean ms",
    "p50 ms",
    "p99 ms",
];

/// Renders both sweeps as the repo's standard ASCII tables.
pub fn render(baseline: &[RtResult], sharded: &[RtResult]) -> String {
    let mut out = String::new();
    out.push_str("=== Q6: live-runtime mutex service (1 OS thread per process) ===\n\n");
    out.push_str("baseline (single leader, one request per grant):\n");
    let mut table = Table::new(&COLUMNS);
    push_rows(&mut table, baseline);
    out.push_str(&table.render());
    if !sharded.is_empty() {
        out.push_str("\nsharded multi-leader service with request batching:\n");
        let mut table = Table::new(&COLUMNS);
        push_rows(&mut table, sharded);
        out.push_str(&table.render());
    }
    let total: u64 = baseline.iter().chain(sharded).map(|r| r.served).sum();
    out.push_str(&format!("\ntotal requests served end-to-end: {total}\n"));
    out
}

/// Measures both sweeps and renders them.
pub fn run(fast: bool) -> String {
    render(&sweep(fast), &sweep_sharded(fast))
}

fn row_json(r: &RtResult) -> String {
    format!(
        "{{\"n\": {}, \"loss\": {}, \"shards\": {}, \"batch\": {}, \"injected\": {}, \"served\": {}, \"grants\": {}, \"cs_entries\": {}, \"msgs\": {}, \"wall_ns\": {}, \"requests_per_sec\": {:.1}, \"grants_per_sec\": {:.1}, \"msgs_per_sec\": {:.1}, \"mean_latency_ns\": {}, \"p50_latency_ns\": {}, \"p99_latency_ns\": {}}}",
        r.n,
        r.loss,
        r.shards,
        r.batch,
        r.injected,
        r.served,
        r.grants,
        r.cs_entries,
        r.msgs,
        r.wall_ns,
        r.requests_per_sec(),
        r.grants_per_sec(),
        r.msgs_per_sec(),
        r.mean_latency_ns,
        r.p50_latency_ns,
        r.p99_latency_ns,
    )
}

/// Both sweeps as a JSON document (hand-rolled: the workspace is offline
/// and carries no serde), shaped like `BENCH_STEPLOOP.json`. Validate
/// with [`from_json`] before committing.
pub fn to_json(baseline: &[RtResult], sharded: &[RtResult]) -> String {
    let mut out = String::from(
        "{\n  \"experiment\": \"live_runtime_mutex_service\",\n  \"unit\": \"requests_per_sec\",\n  \"results\": [\n",
    );
    for (i, r) in baseline.iter().enumerate() {
        let sep = if i + 1 < baseline.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", row_json(r), sep));
    }
    out.push_str("  ],\n  \"sharded\": [\n");
    for (i, r) in sharded.iter().enumerate() {
        let sep = if i + 1 < sharded.len() { "," } else { "" };
        out.push_str(&format!("    {}{}\n", row_json(r), sep));
    }
    let total: u64 = baseline.iter().chain(sharded).map(|r| r.served).sum();
    out.push_str(&format!("  ],\n  \"total_served\": {total}\n}}\n"));
    out
}

/// The source (non-derived) numeric fields of one JSON row, in emission
/// order — the schema the round-trip check enforces.
const ROW_FIELDS: [&str; 16] = [
    "n",
    "loss",
    "shards",
    "batch",
    "injected",
    "served",
    "grants",
    "cs_entries",
    "msgs",
    "wall_ns",
    "requests_per_sec",
    "grants_per_sec",
    "msgs_per_sec",
    "mean_latency_ns",
    "p50_latency_ns",
    "p99_latency_ns",
];

fn row_from_value(row: &Value) -> Result<RtResult, String> {
    for field in ROW_FIELDS {
        match row.get(field) {
            Some(Value::Num(_)) => {}
            Some(_) => return Err(format!("field `{field}` is not a number")),
            None => return Err(format!("missing field `{field}`")),
        }
    }
    let num = |field: &str| row.get(field).and_then(Value::as_num).expect("checked");
    Ok(RtResult {
        n: num("n") as usize,
        loss: num("loss"),
        shards: num("shards") as usize,
        batch: num("batch") as usize,
        injected: num("injected") as u64,
        served: num("served") as u64,
        grants: num("grants") as u64,
        cs_entries: num("cs_entries") as u64,
        msgs: num("msgs") as u64,
        wall_ns: num("wall_ns") as u128,
        mean_latency_ns: num("mean_latency_ns") as u128,
        p50_latency_ns: num("p50_latency_ns") as u128,
        p99_latency_ns: num("p99_latency_ns") as u128,
    })
}

/// Parses a `BENCH_RUNTIME.json` document back through the bench's own
/// schema: `(baseline rows, sharded rows, total_served)`. Every row must
/// carry every field of [`struct@RtResult`] (plus the derived rates) as a
/// number; anything missing, extra-typed or structurally off is an error.
/// `from_json(to_json(b, s))` reproduces `b`/`s` exactly (derived rates
/// are recomputed from the source fields).
pub fn from_json(doc: &str) -> Result<(Vec<RtResult>, Vec<RtResult>, u64), String> {
    let value = jsonv::parse(doc)?;
    if value.get("experiment").and_then(Value::as_str) != Some("live_runtime_mutex_service") {
        return Err("wrong or missing `experiment` tag".into());
    }
    if value.get("unit").and_then(Value::as_str).is_none() {
        return Err("missing `unit`".into());
    }
    let rows = |key: &str| -> Result<Vec<RtResult>, String> {
        value
            .get(key)
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("missing `{key}` array"))?
            .iter()
            .enumerate()
            .map(|(i, row)| row_from_value(row).map_err(|e| format!("{key}[{i}]: {e}")))
            .collect()
    };
    let baseline = rows("results")?;
    let sharded = rows("sharded")?;
    let total = value
        .get("total_served")
        .and_then(Value::as_num)
        .ok_or("missing `total_served`")? as u64;
    let served: u64 = baseline.iter().chain(&sharded).map(|r| r.served).sum();
    if total != served {
        return Err(format!(
            "total_served {total} disagrees with the rows' sum {served}"
        ));
    }
    Ok((baseline, sharded, total))
}

/// Validates that a document emitted by [`to_json`] round-trips through
/// [`from_json`] to exactly the in-memory results. This is what
/// `exp_rtbench` runs before writing `BENCH_RUNTIME.json`, so schema
/// drift fails the binary instead of landing in the committed artifact.
pub fn validate_roundtrip(
    doc: &str,
    baseline: &[RtResult],
    sharded: &[RtResult],
) -> Result<(), String> {
    let (b, s, _) = from_json(doc)?;
    if b != baseline {
        return Err("baseline rows did not round-trip".into());
    }
    if s != sharded {
        return Err("sharded rows did not round-trip".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_serves_requests() {
        let r = measure(3, 0.0, 2, Duration::from_secs(30), 1);
        assert_eq!(r.n, 3);
        assert_eq!(r.served, 6);
        assert_eq!((r.shards, r.batch), (1, 1));
        assert!(r.requests_per_sec() > 0.0);
        assert!(r.msgs_per_sec() > 0.0);
        assert!(r.p50_latency_ns <= r.p99_latency_ns);
    }

    #[test]
    fn measure_sharded_serves_and_batches() {
        let r = measure_sharded(3, 0.0, 2, 2, 4, Duration::from_secs(40), 2);
        assert_eq!(r.served, 12, "all requests served");
        assert!(r.grants >= 6, "at most 2 requests per grant");
        assert!(r.grants <= 12);
        assert!(r.mean_batch() >= 1.0 && r.mean_batch() <= 2.0);
        assert!(r.p50_latency_ns <= r.p99_latency_ns);
    }

    fn sample_row(n: usize, shards: usize, batch: usize) -> RtResult {
        RtResult {
            n,
            loss: 0.1,
            shards,
            batch,
            injected: 10,
            served: 10,
            grants: 5,
            cs_entries: 10,
            msgs: 1000,
            wall_ns: 1_000_000,
            mean_latency_ns: 5_000,
            p50_latency_ns: 4_000,
            p99_latency_ns: 9_000,
        }
    }

    #[test]
    fn json_shape_and_roundtrip() {
        let baseline = vec![sample_row(8, 1, 1)];
        let sharded = vec![sample_row(32, 4, 4), sample_row(32, 8, 8)];
        let j = to_json(&baseline, &sharded);
        assert!(j.contains("live_runtime_mutex_service"));
        assert!(j.contains("\"p99_latency_ns\": 9000"));
        assert!(j.contains("\"total_served\": 30"));
        assert!(j.trim_end().ends_with('}'));
        let (b, s, total) = from_json(&j).expect("parses");
        assert_eq!(b, baseline);
        assert_eq!(s, sharded);
        assert_eq!(total, 30);
        validate_roundtrip(&j, &baseline, &sharded).expect("round-trips");
    }

    #[test]
    fn from_json_rejects_field_drift() {
        let baseline = vec![sample_row(8, 1, 1)];
        let good = to_json(&baseline, &[]);
        // Rename a field: the schema check must notice.
        let renamed = good.replace("\"p99_latency_ns\"", "\"p99\"");
        let err = from_json(&renamed).unwrap_err();
        assert!(err.contains("p99_latency_ns"), "{err}");
        // Corrupt the total: the cross-check must notice.
        let wrong_total = good.replace("\"total_served\": 10", "\"total_served\": 11");
        assert!(from_json(&wrong_total)
            .unwrap_err()
            .contains("total_served"));
        // A stringly-typed number is drift too.
        let stringly = good.replace("\"served\": 10", "\"served\": \"10\"");
        assert!(from_json(&stringly).unwrap_err().contains("not a number"));
        // And the round-trip validator catches value changes.
        let off_by_one = good.replace("\"msgs\": 1000", "\"msgs\": 1001");
        assert!(validate_roundtrip(&off_by_one, &baseline, &[]).is_err());
    }

    #[test]
    fn render_includes_both_tables() {
        let out = render(&[sample_row(8, 1, 1)], &[sample_row(32, 4, 4)]);
        assert!(out.contains("baseline"));
        assert!(out.contains("sharded multi-leader"));
        assert!(out.contains("p99 ms"));
        assert!(out.contains("total requests served end-to-end: 20"));
    }
}
