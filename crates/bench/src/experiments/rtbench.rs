//! **Q6 — live-runtime mutex-service throughput.**
//!
//! Drives the `snapstab-runtime` [`MutexService`] — Algorithm 3 on one OS
//! thread per process over the concurrent lossy transport — with a
//! saturating client request stream, and reports end-to-end requests/sec,
//! CS entries/sec and transport msgs/sec versus system size and loss
//! rate. The committed numbers live in `BENCH_RUNTIME.json`; the full
//! sweep pushes ≥10⁵ client requests through the service in total.

use std::time::Duration;

use snapstab_runtime::{run_mutex_service, LiveConfig, MutexServiceConfig};

use crate::table::Table;

/// One measured configuration.
#[derive(Clone, Copy, Debug)]
pub struct RtResult {
    /// System size (worker threads).
    pub n: usize,
    /// In-transit loss probability.
    pub loss: f64,
    /// Requests injected into the protocol.
    pub injected: u64,
    /// Requests served end-to-end.
    pub served: u64,
    /// Critical-section entries.
    pub cs_entries: u64,
    /// Transport messages enqueued.
    pub msgs: u64,
    /// Wall-clock nanoseconds.
    pub wall_ns: u128,
    /// Mean service latency in nanoseconds (0 if nothing served).
    pub mean_latency_ns: u128,
}

impl RtResult {
    /// Served requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        self.served as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Critical-section entries per second.
    pub fn cs_per_sec(&self) -> f64 {
        self.cs_entries as f64 / (self.wall_ns as f64 / 1e9)
    }

    /// Transport messages per second.
    pub fn msgs_per_sec(&self) -> f64 {
        self.msgs as f64 / (self.wall_ns as f64 / 1e9)
    }
}

/// Measures one configuration: `requests_per_process` client requests per
/// process, stopping early at `budget`.
pub fn measure(
    n: usize,
    loss: f64,
    requests_per_process: u64,
    budget: Duration,
    seed: u64,
) -> RtResult {
    let cfg = MutexServiceConfig {
        n,
        requests_per_process,
        cs_duration: 0,
        live: LiveConfig {
            loss,
            seed,
            record_trace: false,
            ..LiveConfig::default()
        },
        time_budget: budget,
    };
    let report = run_mutex_service(&cfg);
    let mean_latency_ns = if report.latencies.is_empty() {
        0
    } else {
        report
            .latencies
            .iter()
            .map(Duration::as_nanos)
            .sum::<u128>()
            / report.latencies.len() as u128
    };
    RtResult {
        n,
        loss,
        injected: report.injected,
        served: report.served,
        cs_entries: report.cs_entries,
        msgs: report.stats.links.enqueued,
        wall_ns: report.wall.as_nanos(),
        mean_latency_ns,
    }
}

/// Runs the sweep: `n ∈ {8, 16, 32, 64}` × `loss ∈ {0, 0.1, 0.3}`
/// (`--fast`: a smoke-sized subset so CI can exercise the binary).
pub fn sweep(fast: bool) -> Vec<RtResult> {
    let (sizes, losses): (&[usize], &[f64]) = if fast {
        (&[4, 8], &[0.0, 0.1])
    } else {
        (&[8, 16, 32, 64], &[0.0, 0.1, 0.3])
    };
    let mut results = Vec::new();
    for &n in sizes {
        for &loss in losses {
            // Size the request queues so the full sweep comfortably
            // clears 10⁵ end-to-end requests in total: throughput is
            // bounded by the leader's Value rotation (one CS grant per
            // favoured-process cycle), so the per-process queue shrinks
            // as n and loss grow.
            let per_process: u64 = if fast {
                5
            } else {
                let base: u64 = match n {
                    8 => 6_000,
                    16 => 1_000,
                    32 => 150,
                    _ => 40,
                };
                let factor = if loss == 0.0 {
                    1.0
                } else if loss < 0.2 {
                    0.35
                } else {
                    0.2
                };
                ((base as f64 * factor) as u64).max(10)
            };
            let budget = if fast {
                Duration::from_secs(20)
            } else {
                Duration::from_secs(150)
            };
            results.push(measure(n, loss, per_process, budget, 0xC0FFEE ^ n as u64));
        }
    }
    results
}

/// Renders measured results as the repo's standard ASCII table.
pub fn render(results: &[RtResult]) -> String {
    let mut out = String::new();
    out.push_str("=== Q6: live-runtime mutex service (1 OS thread per process) ===\n\n");
    let mut table = Table::new(&[
        "n",
        "loss",
        "injected",
        "served",
        "req/s",
        "cs/s",
        "msgs/s",
        "mean lat ms",
    ]);
    for r in results {
        table.row(&[
            r.n.to_string(),
            format!("{:.1}", r.loss),
            r.injected.to_string(),
            r.served.to_string(),
            format!("{:.0}", r.requests_per_sec()),
            format!("{:.0}", r.cs_per_sec()),
            format!("{:.0}", r.msgs_per_sec()),
            format!("{:.2}", r.mean_latency_ns as f64 / 1e6),
        ]);
    }
    out.push_str(&table.render());
    let total: u64 = results.iter().map(|r| r.served).sum();
    out.push_str(&format!("\ntotal requests served end-to-end: {total}\n"));
    out
}

/// Measures the sweep and renders it.
pub fn run(fast: bool) -> String {
    render(&sweep(fast))
}

/// The sweep as a JSON document (hand-rolled: the workspace is offline
/// and carries no serde), shaped like `BENCH_STEPLOOP.json`.
pub fn to_json(results: &[RtResult]) -> String {
    let mut out = String::from(
        "{\n  \"experiment\": \"live_runtime_mutex_service\",\n  \"unit\": \"requests_per_sec\",\n  \"results\": [\n",
    );
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"n\": {}, \"loss\": {}, \"injected\": {}, \"served\": {}, \"cs_entries\": {}, \"msgs\": {}, \"wall_ns\": {}, \"requests_per_sec\": {:.1}, \"cs_per_sec\": {:.1}, \"msgs_per_sec\": {:.1}, \"mean_latency_ns\": {}}}{}\n",
            r.n,
            r.loss,
            r.injected,
            r.served,
            r.cs_entries,
            r.msgs,
            r.wall_ns,
            r.requests_per_sec(),
            r.cs_per_sec(),
            r.msgs_per_sec(),
            r.mean_latency_ns,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    let total: u64 = results.iter().map(|r| r.served).sum();
    out.push_str(&format!("  ],\n  \"total_served\": {total}\n}}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_serves_requests() {
        let r = measure(3, 0.0, 2, Duration::from_secs(30), 1);
        assert_eq!(r.n, 3);
        assert_eq!(r.served, 6);
        assert!(r.requests_per_sec() > 0.0);
        assert!(r.msgs_per_sec() > 0.0);
    }

    #[test]
    fn json_shape() {
        let j = to_json(&[RtResult {
            n: 8,
            loss: 0.1,
            injected: 10,
            served: 10,
            cs_entries: 10,
            msgs: 1000,
            wall_ns: 1_000_000,
            mean_latency_ns: 5_000,
        }]);
        assert!(j.contains("\"n\": 8"));
        assert!(j.contains("live_runtime_mutex_service"));
        assert!(j.contains("\"total_served\": 10"));
        assert!(j.trim_end().ends_with('}'));
    }
}
