//! **Q3 — the §4.1 naive protocol's failure modes, quantified.**
//!
//! The naive PIF (broadcast once, accept any feedback) against Algorithm 1
//! on the two §4.1 failure axes:
//!
//! * **deadlock under loss** — fraction of waves that never decide within
//!   a generous budget, as the loss probability grows;
//! * **garbage acceptance from corrupted channels** — fraction of decided
//!   waves whose decision took a forged feedback value into account.

use snapstab_baselines::naive_pif::{NaiveMsg, NaivePifProcess};
use snapstab_core::pif::{PifApp, PifProcess};
use snapstab_core::request::RequestState;
use snapstab_sim::{
    Capacity, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

use crate::table::Table;

#[derive(Clone, Debug)]
struct Answer(u32);

impl PifApp<u32, u32> for Answer {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

/// Outcome of one naive-vs-snap comparison trial.
#[derive(Clone, Copy, Debug)]
pub struct Comparison {
    /// The naive wave decided within budget.
    pub naive_decided: bool,
    /// The naive decision used only genuine feedback values.
    pub naive_clean: bool,
    /// The snap wave decided within budget (must always hold).
    pub snap_decided: bool,
    /// The snap decision used only genuine feedback values (must always
    /// hold).
    pub snap_clean: bool,
}

/// One trial: `loss` probability and optionally a forged feedback hidden
/// in a channel toward the initiator.
pub fn compare(n: usize, loss: f64, forge: bool, seed: u64, budget: u64) -> Comparison {
    const FORGED: u32 = 666;
    let expected = |i: usize| 100 + i as u32;

    // Naive run.
    let naive_procs: Vec<NaivePifProcess> = (0..n)
        .map(|i| NaivePifProcess::new(ProcessId::new(i), n, expected(i)))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut naive = Runner::new(naive_procs, network, RandomScheduler::new(), seed);
    if loss > 0.0 {
        naive.set_loss(LossModel::probabilistic(loss));
    }
    if forge {
        naive
            .network_mut()
            .channel_mut(ProcessId::new(1), ProcessId::new(0))
            .unwrap()
            .preload([NaiveMsg::Fck(FORGED)]);
    }
    naive.process_mut(ProcessId::new(0)).request_broadcast(7);
    let _ = naive.run_until(budget, |r| {
        r.process(ProcessId::new(0)).request() == RequestState::Done
    });
    let naive_decided = naive.process(ProcessId::new(0)).request() == RequestState::Done;
    let naive_clean = naive_decided
        && (1..n).all(|i| {
            naive
                .process(ProcessId::new(0))
                .collected_from(ProcessId::new(i))
                == Some(expected(i))
        });

    // Snap run under identical conditions.
    let snap_procs: Vec<PifProcess<u32, u32, Answer>> = (0..n)
        .map(|i| PifProcess::with_initial_f(ProcessId::new(i), n, 0, 0, Answer(expected(i))))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut snap = Runner::new(snap_procs, network, RandomScheduler::new(), seed);
    if loss > 0.0 {
        snap.set_loss(LossModel::probabilistic(loss));
    }
    if forge {
        let mut rng = SimRng::seed_from(seed);
        let junk = snapstab_core::pif::PifMsg {
            broadcast: FORGED,
            feedback: FORGED,
            sender_state: snapstab_core::flag::Flag::new(rng.gen_range(0..5) as u8),
            echoed_state: snapstab_core::flag::Flag::new(rng.gen_range(0..5) as u8),
        };
        snap.network_mut()
            .channel_mut(ProcessId::new(1), ProcessId::new(0))
            .unwrap()
            .preload([junk]);
    }
    snap.mark(ProcessId::new(0), "request");
    let req_step = snap.step_count();
    snap.process_mut(ProcessId::new(0)).request_broadcast(7);
    let _ = snap.run_until(budget, |r| {
        r.process(ProcessId::new(0)).request() == RequestState::Done
    });
    let snap_decided = snap.process(ProcessId::new(0)).request() == RequestState::Done;
    let verdict = snapstab_core::spec::check_bare_pif_wave(
        snap.trace(),
        ProcessId::new(0),
        n,
        req_step,
        &7,
        |q| expected(q.index()),
    );
    Comparison {
        naive_decided,
        naive_clean,
        snap_decided,
        snap_clean: verdict.holds(),
    }
}

/// Runs the Q3 sweep and renders the report.
pub fn run(fast: bool) -> String {
    let trials = if fast { 20 } else { 200 };
    let n = 3;
    let budget = 300_000;

    let mut out = String::new();
    out.push_str("=== Q3: naive PIF (\u{a7}4.1) vs Algorithm 1 ===\n\n");

    out.push_str("(a) deadlock under loss (no forged messages):\n");
    let mut t = Table::new(&["loss p", "naive deadlocked", "snap deadlocked"]);
    for p in [0.05, 0.1, 0.3, 0.5] {
        let mut naive_dead = 0;
        let mut snap_dead = 0;
        for s in 0..trials {
            let c = compare(n, p, false, (p * 100.0) as u64 * 7919 + s, budget);
            naive_dead += usize::from(!c.naive_decided);
            snap_dead += usize::from(!c.snap_decided);
        }
        t.row(&[
            format!("{p:.2}"),
            format!("{naive_dead}/{trials}"),
            format!("{snap_dead}/{trials}"),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n(b) forged feedback hidden in a channel (no loss):\n");
    let mut t = Table::new(&["protocol", "decided", "decisions on garbage"]);
    let mut naive_garbage = 0;
    let mut naive_decided = 0;
    let mut snap_garbage = 0;
    let mut snap_decided = 0;
    for s in 0..trials {
        let c = compare(n, 0.0, true, 31 + s, budget);
        naive_decided += usize::from(c.naive_decided);
        naive_garbage += usize::from(c.naive_decided && !c.naive_clean);
        snap_decided += usize::from(c.snap_decided);
        snap_garbage += usize::from(c.snap_decided && !c.snap_clean);
    }
    t.row(&[
        "naive".into(),
        format!("{naive_decided}/{trials}"),
        format!("{naive_garbage}/{trials}"),
    ]);
    t.row(&[
        "snap (Alg. 1)".into(),
        format!("{snap_decided}/{trials}"),
        format!("{snap_garbage}/{trials}"),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\nverdict: the naive protocol deadlocks under loss and decides on forged data; \
         Algorithm 1 always decides and never accepts garbage.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_accepts_garbage_snap_does_not() {
        let mut naive_bad = 0;
        for s in 0..5 {
            let c = compare(3, 0.0, true, s, 300_000);
            assert!(
                c.snap_decided && c.snap_clean,
                "snap must stay clean: {c:?}"
            );
            if c.naive_decided && !c.naive_clean {
                naive_bad += 1;
            }
        }
        assert!(
            naive_bad > 0,
            "the forged feedback must poison some naive decision"
        );
    }

    #[test]
    fn naive_deadlocks_under_loss_sometimes() {
        let mut dead = 0;
        for s in 0..10 {
            let c = compare(3, 0.5, false, 1000 + s, 100_000);
            assert!(c.snap_decided, "snap never deadlocks: {c:?}");
            if !c.naive_decided {
                dead += 1;
            }
        }
        assert!(
            dead > 0,
            "the naive protocol must deadlock sometimes at 50% loss"
        );
    }
}
