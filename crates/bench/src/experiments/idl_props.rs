//! **T3 — Theorem 3 (Specification 2): IDs-Learning.**
//!
//! From arbitrary initial configurations (variables *and* channels), a
//! genuinely requested IDs-Learning computation must decide knowing the
//! exact minimum ID and every neighbor's exact ID.

use snapstab_core::idl::{Id, IdlEvent, IdlProcess};
use snapstab_core::request::RequestState;
use snapstab_core::spec::check_idl_result;
use snapstab_sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

use crate::stats::Summary;
use crate::table::Table;

/// Result of one corrupted-start IDs-Learning trial.
#[derive(Clone, Copy, Debug)]
pub struct Trial {
    /// All of Specification 2 held.
    pub spec_ok: bool,
    /// Steps from request to decision.
    pub steps: u64,
}

/// Distinct, unsorted identities for `n` processes.
pub fn ids(n: usize) -> Vec<Id> {
    (0..n).map(|i| 10_000 - 137 * i as Id).collect()
}

/// Runs one trial at the given system size and loss rate.
pub fn trial(n: usize, loss: f64, seed: u64) -> Trial {
    let idv = ids(n);
    let processes: Vec<IdlProcess> = (0..n)
        .map(|i| IdlProcess::new(ProcessId::new(i), n, idv[i]))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    if loss > 0.0 {
        runner.set_loss(LossModel::probabilistic(loss));
    }
    let mut rng = SimRng::seed_from(seed ^ 0x1D1);
    CorruptionPlan::full().apply(&mut runner, &mut rng);

    let learner = ProcessId::new(0);
    let _ = runner.run_until(500_000, |r| {
        r.process(learner).request() == RequestState::Done
    });
    let request_step = runner.step_count();
    let requested = runner.process_mut(learner).request_learning();
    let run = runner.run_until(2_000_000, |r| {
        r.process(learner).request() == RequestState::Done
    });
    let decided =
        run.is_ok() && requested && runner.process(learner).request() == RequestState::Done;

    let started = runner
        .trace()
        .protocol_events_of(learner)
        .any(|(s, e)| s >= request_step && matches!(e, IdlEvent::Started));

    let verdict = check_idl_result(
        runner.process(learner).idl(),
        learner,
        &idv,
        started,
        decided,
    );
    let steps = runner.step_count() - request_step;
    Trial {
        spec_ok: verdict.holds(),
        steps,
    }
}

/// Runs the T3 sweep and renders the report.
pub fn run(fast: bool) -> String {
    let trials = if fast { 20 } else { 200 };
    let ns = if fast {
        vec![2, 3, 5]
    } else {
        vec![2, 3, 5, 8]
    };
    let losses = [0.0, 0.2];

    let mut out = String::new();
    out.push_str("=== T3: Specification 2 (IDs-Learning) from arbitrary configurations ===\n\n");
    let mut table = Table::new(&["n", "loss", "trials", "spec holds", "steps mean/p95"]);
    let mut all_ok = true;
    for &n in &ns {
        for &loss in &losses {
            let results: Vec<Trial> = (0..trials)
                .map(|t| trial(n, loss, (n as u64) << 40 | (loss * 10.0) as u64 ^ t))
                .collect();
            let ok = results.iter().filter(|t| t.spec_ok).count();
            all_ok &= ok == results.len();
            let steps = Summary::of_u64(results.iter().map(|t| t.steps));
            table.row(&[
                n.to_string(),
                format!("{loss:.1}"),
                trials.to_string(),
                format!("{ok}/{trials}"),
                steps.mean_p95(),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nverdict: every started IDs-Learning computation decided with exact IDs: {}\n",
        if all_ok {
            "YES (snap-stabilizing)"
        } else {
            "NO — VIOLATION FOUND"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_pass_small_grid() {
        for seed in 0..6 {
            let t = trial(3, 0.0, seed);
            assert!(t.spec_ok, "seed {seed}: {t:?}");
        }
    }

    #[test]
    fn trials_pass_under_loss() {
        for seed in 0..3 {
            let t = trial(4, 0.2, 50 + seed);
            assert!(t.spec_ok, "seed {seed}: {t:?}");
        }
    }
}
