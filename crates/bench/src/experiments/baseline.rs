//! **C1 — snap-stabilization vs self-stabilization on the first request.**
//!
//! Three self-stabilizing baselines, each with a tunable "stabilization
//! knob", against the corresponding snap-stabilizing protocol:
//!
//! * **ABP (label space L)** vs a PIF transfer — first-transfer violation
//!   rate ≈ 1/L for the baseline, exactly 0 for Algorithm 1 (T2 measures
//!   the 0 side on the same corrupted-start regime);
//! * **counter flushing (counter domain K)** vs Algorithm 1 — first-wave
//!   pollution rate ≈ 1 − (1 − 1/K)^(n−1), second wave clean (converged);
//! * **token ring (Dijkstra K-state)** vs Algorithm 3 — CS overlaps during
//!   convergence vs zero genuine overlaps, ever.

use rayon::prelude::*;
use snapstab_baselines::abp::{AbpMsg, AbpProcess};
use snapstab_baselines::counter_flush::{CfMsg, CfProcess};
use snapstab_baselines::token_ring::{TokenRingProcess, TrEvent};
use snapstab_baselines::util::{count_overlaps, extract_cs_intervals};
use snapstab_core::request::RequestState;
use snapstab_sim::{
    Capacity, NetworkBuilder, ProcessId, Protocol, RandomScheduler, Runner, SimRng,
};

use crate::table::Table;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// One ABP trial: corrupted labels and forged channel contents; returns
/// `true` if the delivered sequence differs from the sent queue.
pub fn abp_trial(label_space: u64, seed: u64) -> bool {
    let queue = vec![11, 22, 33];
    let processes = vec![
        AbpProcess::sender(queue.clone(), label_space),
        AbpProcess::receiver(label_space),
    ];
    let network = NetworkBuilder::new(2)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0xAB);
    // Corrupt the link state: endpoint labels and one forged message per
    // direction, labels uniform over the space.
    for i in 0..2 {
        runner.process_mut(p(i)).corrupt(&mut rng);
    }
    // A forged acknowledgment hides in the channel toward the sender. (A
    // forged *data* message would be delivered by any ABP variant — random
    // labels defend the control state, not payload authenticity — so the
    // label-space sweep forges control messages only.)
    runner
        .network_mut()
        .channel_mut(p(1), p(0))
        .unwrap()
        .set_contents([AbpMsg::Ack {
            label: rng.gen_u64() % label_space,
        }]);
    let _ = runner.run_until(500_000, |r| r.process(p(0)).progress() == Some(3));
    // Let the last in-flight item land.
    let _ = runner.run_steps(200);
    runner.process(p(1)).delivered() != queue.as_slice()
}

/// One counter-flushing trial: returns `(first_wave_polluted,
/// second_wave_polluted)`.
pub fn cf_trial(n: usize, k: u64, seed: u64) -> (bool, bool) {
    let processes: Vec<CfProcess> = (0..n)
        .map(|i| CfProcess::new(p(i), n, k, 100 + i as u32))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0xCF);
    // Corrupt the initiator's counter and forge one stale reply per
    // inbound channel, stamps uniform over the domain.
    let mut state = runner.process(p(0)).snapshot();
    state.counter = rng.gen_u64() % k;
    runner.process_mut(p(0)).restore(state);
    for i in 1..n {
        runner
            .network_mut()
            .channel_mut(p(i), p(0))
            .unwrap()
            .set_contents([CfMsg::Reply {
                c: rng.gen_u64() % k,
                data: 666,
            }]);
    }
    let polluted = |r: &Runner<CfProcess, RandomScheduler>| {
        (1..n).any(|i| r.process(p(0)).collected_from(p(i)) == Some(666))
    };
    runner.process_mut(p(0)).request_wave();
    runner
        .run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done)
        .expect("wave must decide");
    let first = polluted(&runner);
    runner.process_mut(p(0)).request_wave();
    runner
        .run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done)
        .expect("wave must decide");
    let second = polluted(&runner);
    (first, second)
}

/// One token-ring trial: `(overlapping CS pairs, CS executions)` over the
/// budget, from a corrupted configuration.
pub fn ring_trial(n: usize, k: u64, budget: u64, seed: u64) -> (usize, usize) {
    let processes: Vec<TokenRingProcess> = (0..n)
        .map(|i| TokenRingProcess::new(p(i), n, k, 2))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0x41);
    for i in 0..n {
        runner.process_mut(p(i)).corrupt(&mut rng);
    }
    runner.run_steps(budget).expect("ring run cannot error");
    let intervals = extract_cs_intervals(
        runner.trace(),
        n,
        |e| matches!(e, TrEvent::CsEnter),
        |e| matches!(e, TrEvent::CsExit),
    );
    (count_overlaps(&intervals), intervals.len())
}

/// Runs the C1 comparison suite and renders the report.
pub fn run(fast: bool) -> String {
    let trials: u64 = if fast { 30 } else { 300 };
    let mut out = String::new();
    out.push_str("=== C1: self-stabilizing baselines vs snap-stabilization ===\n\n");

    out.push_str("(a) ABP first-transfer violations vs label space L (snap PIF: 0, see T2):\n");
    let mut t = Table::new(&["L", "violated", "rate", "~1-(1-1/L)^2"]);
    for l in [2u64, 4, 16, 256, 65_536] {
        // Independent seeded trials run in parallel; the counts they fold
        // into are order-independent, so reports are unchanged.
        let violations: Vec<bool> = (0..trials)
            .into_par_iter()
            .map(|s| abp_trial(l, l * 1_000 + s))
            .collect();
        let bad = violations.iter().filter(|&&b| b).count();
        let expect = 1.0 - (1.0 - 1.0 / l as f64).powi(2);
        t.row(&[
            l.to_string(),
            format!("{bad}/{trials}"),
            format!("{:.3}", bad as f64 / trials as f64),
            format!("{expect:.3}"),
        ]);
    }
    out.push_str(&t.render());

    out.push_str(
        "\n(b) counter-flushing wave pollution vs counter domain K (n = 3; snap PIF: 0):\n",
    );
    let mut t = Table::new(&[
        "K",
        "wave 1 polluted",
        "rate",
        "~1-(1-1/K)^2",
        "wave 2 polluted",
    ]);
    for k in [2u64, 4, 8, 16] {
        let results: Vec<(bool, bool)> = (0..trials)
            .into_par_iter()
            .map(|s| cf_trial(3, k, k * 7_000 + s))
            .collect();
        let first = results.iter().filter(|(f, _)| *f).count();
        let second = results.iter().filter(|(_, s)| *s).count();
        let expect = 1.0 - (1.0 - 1.0 / k as f64).powi(2);
        t.row(&[
            k.to_string(),
            format!("{first}/{trials}"),
            format!("{:.3}", first as f64 / trials as f64),
            format!("{expect:.3}"),
            format!("{second}/{trials}"),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n(c) token-ring CS overlaps during convergence (n = 4, K = 5; snap ME genuine overlaps: 0, see T4):\n");
    let ring_trials: u64 = if fast { 10 } else { 60 };
    let ring_results: Vec<(usize, usize)> = (0..ring_trials)
        .into_par_iter()
        .map(|s| ring_trial(4, 5, 30_000, 90 + s))
        .collect();
    let mut overlap_trials = 0;
    let mut total_overlaps = 0;
    let mut total_cs = 0;
    for (ov, cs) in ring_results {
        overlap_trials += usize::from(ov > 0);
        total_overlaps += ov;
        total_cs += cs;
    }
    let mut t = Table::new(&[
        "trials",
        "trials w/ overlap",
        "total overlap pairs",
        "total CS",
    ]);
    t.row(&[
        ring_trials.to_string(),
        overlap_trials.to_string(),
        total_overlaps.to_string(),
        total_cs.to_string(),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\nverdict: every self-stabilizing baseline violates safety on early requests at a \
         rate set by its stabilization knob; the snap-stabilizing protocols' rate is 0 by \
         construction (T2/T4 measure it as 0 across every corrupted start).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abp_small_label_space_violates_sometimes() {
        let bad = (0..40).filter(|&s| abp_trial(2, s)).count();
        assert!(bad > 0, "L=2 must show violations");
    }

    #[test]
    fn abp_huge_label_space_rarely_violates() {
        let bad = (0..20).filter(|&s| abp_trial(1 << 40, s)).count();
        assert_eq!(bad, 0, "astronomically unlikely at L=2^40");
    }

    #[test]
    fn cf_second_wave_always_clean() {
        for s in 0..20 {
            let (_, second) = cf_trial(3, 2, s);
            assert!(!second, "seed {s}: the counter must have flushed");
        }
    }

    #[test]
    fn cf_first_wave_sometimes_polluted_at_small_k() {
        let polluted = (0..40).filter(|&s| cf_trial(3, 2, 500 + s).0).count();
        assert!(polluted > 0, "K=2 must show pollution");
    }

    #[test]
    fn ring_shows_convergence_overlaps() {
        let mut any = 0;
        for s in 0..20 {
            let (ov, _) = ring_trial(4, 5, 30_000, s);
            any += ov;
        }
        assert!(any > 0, "corrupted rings must overlap during convergence");
    }
}
