//! The experiment suite: one module per paper artifact (DESIGN.md §5).

pub mod ablation;
pub mod apps;
pub mod baseline;
pub mod capacity;
pub mod fig1;
pub mod idl_props;
pub mod impossibility;
pub mod loss;
pub mod me_props;
pub mod modelcheck;
pub mod naive;
pub mod pif_props;
pub mod rtbench;
pub mod scaling;
pub mod stepbench;
pub mod topology;
