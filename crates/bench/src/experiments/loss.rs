//! **Q2 — loss resilience of the PIF.**
//!
//! Action A2's perpetual retransmission makes the wave immune to fair
//! message loss: the experiment sweeps the per-message loss probability
//! and shows graceful degradation of the steps-to-decision (roughly a
//! `1/(1−p)²` round-trip inflation) with a 100 % completion rate.

use rayon::prelude::*;
use snapstab_core::pif::{PifApp, PifProcess};
use snapstab_core::request::RequestState;
use snapstab_sim::{Capacity, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner};

use crate::stats::Summary;
use crate::table::Table;

#[derive(Clone, Debug)]
struct Zero;

impl PifApp<u32, u32> for Zero {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

/// Steps to decision for one wave under loss probability `p`, or `None`
/// if the budget ran out (must not happen for p < 1).
pub fn wave_under_loss(n: usize, p: f64, seed: u64, budget: u64) -> Option<u64> {
    let processes: Vec<PifProcess<u32, u32, Zero>> = (0..n)
        .map(|i| PifProcess::with_initial_f(ProcessId::new(i), n, 0, 0, Zero))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    if p > 0.0 {
        runner.set_loss(LossModel::probabilistic(p));
    }
    runner.process_mut(ProcessId::new(0)).request_broadcast(1);
    let before = runner.step_count();
    runner
        .run_until(budget, |r| {
            r.process(ProcessId::new(0)).request() == RequestState::Done
        })
        .ok()?;
    if runner.process(ProcessId::new(0)).request() == RequestState::Done {
        Some(runner.step_count() - before)
    } else {
        None
    }
}

/// Runs the Q2 sweep and renders the report.
pub fn run(fast: bool) -> String {
    let trials: u64 = if fast { 10 } else { 100 };
    let n = 3;
    let losses = [0.0, 0.1, 0.2, 0.4, 0.6, 0.8];

    let mut out = String::new();
    out.push_str("=== Q2: PIF under message loss (n = 3) ===\n\n");
    let mut table = Table::new(&[
        "loss p",
        "trials",
        "completed",
        "steps mean/p95",
        "slowdown vs p=0",
    ]);
    let mut base_mean = 0.0;
    for &p in &losses {
        let results: Vec<Option<u64>> = (0..trials)
            .into_par_iter()
            .map(|t| wave_under_loss(n, p, (p * 100.0) as u64 * 1000 + t, 10_000_000))
            .collect();
        let completed = results.iter().filter(|r| r.is_some()).count();
        let steps = Summary::of_u64(results.iter().flatten().copied());
        if p == 0.0 {
            base_mean = steps.mean;
        }
        table.row(&[
            format!("{p:.1}"),
            trials.to_string(),
            format!("{completed}/{trials}"),
            steps.mean_p95(),
            format!("{:.2}x", steps.mean / base_mean.max(1.0)),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nverdict: completion stays at 100% for every fair loss rate; latency degrades \
         smoothly (retransmission is built into A2/A3).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_at_moderate_loss() {
        for seed in 0..3 {
            assert!(wave_under_loss(3, 0.4, seed, 10_000_000).is_some());
        }
    }

    #[test]
    fn higher_loss_costs_more_steps() {
        let clean: u64 = (0..5)
            .map(|s| wave_under_loss(2, 0.0, s, 1_000_000).unwrap())
            .sum();
        let lossy: u64 = (0..5)
            .map(|s| wave_under_loss(2, 0.6, 100 + s, 10_000_000).unwrap())
            .sum();
        assert!(lossy > clean, "loss must cost steps: {clean} vs {lossy}");
    }
}
