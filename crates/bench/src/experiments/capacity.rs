//! **A3 — the bounded-capacity dichotomy (the §4 extension, made tight).**
//!
//! The paper proves the single-message case and calls the extension to an
//! arbitrary known capacity "straightforward". This experiment pins down
//! the exact requirement: over channels of capacity `c`, the handshake
//! flag domain needs **`2c + 3` values** — one value fewer and the
//! canonical stale adversary (the Figure 1 construction, scaled) completes
//! a wave on garbage; `2c + 3` values and the adversary tops out at
//! `2c + 1` increments, one short of a decision.
//!
//! Three tables:
//!
//! 1. the **dichotomy grid**: (capacity × domain size) → does any stale
//!    adversary decide a wave? Expected: yes strictly below the `2c + 3`
//!    diagonal, no on and above it;
//! 2. the **tightness series**: at the matched domain, the worst stale
//!    drive equals `2c + 1` exactly for every capacity;
//! 3. the **end-to-end check**: Specification 1 pass rate for the full
//!    protocol over corrupted starts at each capacity with the matched
//!    domain (must be 100 %).

use rayon::prelude::*;
use snapstab_core::capacity::{max_stale, required_domain_size, sweep, StaleConfig};
use snapstab_core::flag::FlagDomain;
use snapstab_core::pif::{PifApp, PifProcess};
use snapstab_core::request::RequestState;
use snapstab_core::spec::check_bare_pif_wave;
use snapstab_sim::{
    Capacity, CorruptionPlan, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

use crate::table::Table;

#[derive(Clone, Debug)]
struct Answer(u32);

impl PifApp<u32, u32> for Answer {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

/// One Specification 1 trial at `capacity` with `domain` from a corrupted
/// start: true if the wave decides and the spec holds.
fn spec1_trial(capacity: usize, domain: FlagDomain, seed: u64, n: usize) -> bool {
    let processes: Vec<PifProcess<u32, u32, Answer>> = (0..n)
        .map(|i| PifProcess::with_domain(p(i), n, 0, 0, domain, Answer(100 + i as u32)))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(capacity))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    let mut rng = SimRng::seed_from(seed ^ 0xA3);
    CorruptionPlan::full().apply(&mut runner, &mut rng);
    let _ = runner.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done);
    let req_step = runner.step_count();
    if !runner.process_mut(p(0)).request_broadcast(9) {
        return false;
    }
    if runner
        .run_until(5_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .is_err()
    {
        return false;
    }
    check_bare_pif_wave(runner.trace(), p(0), n, req_step, &9, |q| {
        100 + q.index() as u32
    })
    .holds()
}

/// Specification 1 pass count for the full PIF at `capacity` with `domain`
/// over `trials` corrupted starts (trials run in parallel; each owns its
/// seed, so the count is deterministic).
fn spec1_pass_rate(capacity: usize, domain: FlagDomain, trials: u64, n: usize) -> (u64, u64) {
    let outcomes: Vec<bool> = (0..trials)
        .into_par_iter()
        .map(|seed| spec1_trial(capacity, domain, seed, n))
        .collect();
    let passed = outcomes.iter().filter(|&&ok| ok).count() as u64;
    (passed, trials)
}

/// Runs the full A3 experiment.
pub fn run(fast: bool) -> String {
    let mut out = String::new();
    out.push_str("=== A3: bounded-capacity dichotomy (the §4 extension) ===\n\n");

    let capacities: &[usize] = if fast { &[1, 2] } else { &[1, 2, 3, 4] };
    let (extra_configs, random_schedules) = if fast { (20, 3) } else { (150, 6) };

    // (1) Dichotomy grid.
    let mut grid = Table::new(&[
        "capacity c",
        "domain size m",
        "required 2c+3",
        "max stale flag",
        "stale decisions",
        "verdict",
    ]);
    for &c in capacities {
        let req = required_domain_size(c);
        for m in (req - 2)..=(req + 1) {
            let domain = FlagDomain::with_max(m as u8 - 1);
            let s = sweep(c, domain, extra_configs, random_schedules, 0xA3 + c as u64);
            let broken = s.stale_decisions > 0;
            let expected_broken = m < req;
            let verdict = match (broken, expected_broken) {
                (true, true) => "breaks (expected)",
                (false, false) => "safe (expected)",
                (true, false) => "BREAKS (UNEXPECTED!)",
                (false, true) => "safe (adversary too weak?)",
            };
            grid.row(&[
                c.to_string(),
                m.to_string(),
                req.to_string(),
                s.max_stale_flag.to_string(),
                format!("{}/{}", s.stale_decisions, s.configs),
                verdict.to_string(),
            ]);
        }
    }
    out.push_str("dichotomy grid (canonical + arbitrary adversaries, schedule family):\n");
    out.push_str(&grid.render());
    out.push('\n');

    // (2) Tightness: the canonical adversary realizes exactly 2c+1.
    let mut tight = Table::new(&[
        "capacity c",
        "domain 2c+3",
        "canonical stale flag",
        "bound 2c+1",
        "stale decided",
        "terminated",
    ]);
    for &c in capacities {
        let domain = FlagDomain::for_capacity(c);
        let r = max_stale(&StaleConfig::canonical(c, domain), random_schedules);
        tight.row(&[
            c.to_string(),
            domain.size().to_string(),
            r.max_stale_flag.to_string(),
            (2 * c + 1).to_string(),
            r.stale_decided.to_string(),
            r.completed.to_string(),
        ]);
    }
    out.push_str("\ntightness at the matched domain:\n");
    out.push_str(&tight.render());
    out.push('\n');

    // (3) End-to-end Specification 1 at each capacity.
    let trials = if fast { 10 } else { 60 };
    let mut e2e = Table::new(&["capacity c", "n", "domain", "Spec 1 pass"]);
    for &c in capacities {
        for n in [2usize, 4] {
            let domain = FlagDomain::for_capacity(c);
            let (pass, total) = spec1_pass_rate(c, domain, trials, n);
            e2e.row(&[
                c.to_string(),
                n.to_string(),
                domain.size().to_string(),
                format!("{pass}/{total}"),
            ]);
        }
    }
    out.push_str("\nend-to-end Specification 1 over corrupted starts (matched domain):\n");
    out.push_str(&e2e.render());
    out.push_str(
        "\nverdict: snap-stabilization over capacity-c channels holds exactly from \
         2c+3 flag values upward; the paper's five values are the c = 1 instance.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_renders_the_dichotomy() {
        let s = run(true);
        assert!(s.contains("dichotomy grid"));
        assert!(s.contains("breaks (expected)"));
        assert!(s.contains("safe (expected)"));
        assert!(!s.contains("UNEXPECTED"));
    }

    #[test]
    fn spec1_pass_rate_is_full_at_capacity_two() {
        let (pass, total) = spec1_pass_rate(2, FlagDomain::for_capacity(2), 5, 3);
        assert_eq!(pass, total);
    }
}
