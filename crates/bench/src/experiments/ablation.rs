//! **A1 + A2 — ablations of the paper's design choices.**
//!
//! * **A1 — the five-valued flag is minimal.** Algorithm 1 is run over
//!   flag domains `{0..m}` for `m = 1..6`; for each, the full adversary
//!   space of 2-process initial configurations (hidden messages' flag
//!   fields, the peer's variables) is enumerated, counting configurations
//!   in which the initiator's decision takes a *forged* feedback into
//!   account. The count is positive for every `m < 4` and zero from the
//!   paper's `m = 4` upward.
//! * **A2 — the `mod (n+1)` erratum (DESIGN.md D2).** Algorithm 3 with
//!   the literal `Value ← (Value+1) mod (n+1)` reaches the value `n`,
//!   which favours nobody; from then on no request is ever served — a
//!   livelock the corrected `mod n` arithmetic cannot enter.

use snapstab_core::flag::{Flag, FlagDomain};
use snapstab_core::me::{MeConfig, MeProcess, ValueMode};
use snapstab_core::pif::{PifApp, PifMsg, PifProcess};
use snapstab_core::request::RequestState;
use snapstab_sim::{
    Capacity, Move, NetworkBuilder, ProcessId, Protocol, RoundRobin, Runner, SimRng,
};

use crate::table::Table;

#[derive(Clone, Debug)]
struct Answer(u32);

impl PifApp<u32, u32> for Answer {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u32) -> u32 {
        self.0
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u32) {}
}

fn p0() -> ProcessId {
    ProcessId::new(0)
}
fn p1() -> ProcessId {
    ProcessId::new(1)
}

/// The adversarial schedule family: fair round-robin (empty script), the
/// Figure 1-style crafted stale drive, and seeded random delivery-heavy
/// schedules.
pub fn schedules(extra_random: u64) -> Vec<Vec<Move>> {
    let (d10, d01) = (
        Move::Deliver {
            from: p1(),
            to: p0(),
        },
        Move::Deliver {
            from: p0(),
            to: p1(),
        },
    );
    let mut all = vec![
        Vec::new(),
        vec![
            Move::Activate(p0()),
            d10,
            Move::Activate(p1()),
            d10,
            d01,
            d10,
        ],
    ];
    for seed in 0..extra_random {
        let mut rng = SimRng::seed_from(seed);
        all.push(
            (0..24)
                .map(|_| match rng.gen_range(0..6) {
                    0 => Move::Activate(p0()),
                    1 => Move::Activate(p1()),
                    2 | 3 => d10,
                    _ => d01,
                })
                .collect(),
        );
    }
    all
}

/// Runs one adversarial 2-process configuration over flag domain
/// `{0..max}` under one adversarial schedule prefix; returns `true` if the
/// started wave violated Specification 1 — the peer answered a forged
/// broadcast, or the initiator decided on a feedback that does not belong
/// to its own broadcast (the violations the five-valued flag exists to
/// prevent).
pub fn forged_decision(
    max: u8,
    msg_qp: (u8, u8),
    msg_pq: (u8, u8),
    ns_q: u8,
    state_q: u8,
    req_q: RequestState,
    script: &[Move],
) -> bool {
    const FORGED: u32 = 666;
    let domain = FlagDomain::with_max(max);
    let mk = |i: usize| {
        PifProcess::with_domain(
            ProcessId::new(i),
            2,
            0u32,
            0u32,
            domain,
            Answer(100 + i as u32),
        )
    };
    let network = NetworkBuilder::new(2)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(vec![mk(0), mk(1)], network, RoundRobin::new(), 0);

    {
        let q = runner.process_mut(p1());
        let mut s = q.core().snapshot();
        s.neig_state[0] = Flag::new(ns_q);
        s.state[0] = Flag::new(state_q);
        s.request = req_q;
        q.core_mut().restore(s);
    }
    let forge = |(ss, es): (u8, u8)| PifMsg {
        broadcast: FORGED,
        feedback: FORGED,
        sender_state: Flag::new(ss),
        echoed_state: Flag::new(es),
    };
    runner
        .network_mut()
        .channel_mut(p1(), p0())
        .unwrap()
        .preload([forge(msg_qp)]);
    runner
        .network_mut()
        .channel_mut(p0(), p1())
        .unwrap()
        .preload([forge(msg_pq)]);

    runner.mark(p0(), "request");
    let req_step = runner.step_count();
    runner.process_mut(p0()).request_broadcast(7);
    for &mv in script {
        let applicable = match mv {
            Move::Activate(p) => runner.process(p).has_enabled_action(),
            Move::Deliver { from, to } => !runner
                .network()
                .channel(from, to)
                .expect("valid link")
                .is_empty(),
        };
        if applicable {
            runner
                .execute_move(mv)
                .expect("applicable move cannot error");
        }
    }
    runner
        .run_until(500_000, |r| r.process(p0()).request() == RequestState::Done)
        .expect("wave must decide");

    // The full Specification 1 verdict: q must have answered THE broadcast
    // (data 7), and the decision must rest on exactly q's genuine feedback.
    let verdict =
        snapstab_core::spec::check_bare_pif_wave(runner.trace(), p0(), 2, req_step, &7u32, |_| {
            101u32
        });
    let _ = FORGED;
    !verdict.holds()
}

/// A1: counts forged-decision adversary configurations for one flag
/// domain. `stride > 1` samples the space.
pub fn count_forged(max: u8, stride: usize) -> (usize, usize) {
    let reqs = [RequestState::Wait, RequestState::In, RequestState::Done];
    let vals = 0..=max;
    let mut violations = 0usize;
    let mut total = 0usize;
    let mut idx = 0usize;
    for s1 in vals.clone() {
        for e1 in vals.clone() {
            for s2 in vals.clone() {
                for e2 in vals.clone() {
                    for ns in vals.clone() {
                        for sq in [0, max / 2, max] {
                            for rq in reqs {
                                idx += 1;
                                if !idx.is_multiple_of(stride) {
                                    continue;
                                }
                                total += 1;
                                let any = schedules(3).iter().any(|script| {
                                    forged_decision(max, (s1, e1), (s2, e2), ns, sq, rq, script)
                                });
                                if any {
                                    violations += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    (violations, total)
}

/// A2: one run of the mutual-exclusion protocol in the given value-mode;
/// returns `(requests served, leader's final Value, n)`.
pub fn value_mode_trial(mode: ValueMode, seed: u64) -> (usize, usize, usize) {
    let n = 3;
    let config = MeConfig {
        cs_duration: 0,
        value_mode: mode,
        ..MeConfig::default()
    };
    // Ascending ids: process 0 is the leader.
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| MeProcess::with_config(ProcessId::new(i), n, 10 + i as u64, config))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RoundRobin::new(), seed);

    // Warm-up: let the favour pointer rotate (in literal mode it reaches
    // the dead value n and sticks).
    runner.run_steps(60_000).expect("run cannot error");
    // Now everyone requests.
    let mut requested = 0;
    for i in 0..n {
        if runner.process_mut(ProcessId::new(i)).request_cs() {
            requested += 1;
        }
    }
    assert_eq!(requested, n, "warmed-up processes accept requests");
    runner.run_steps(400_000).expect("run cannot error");
    let served = (0..n)
        .filter(|&i| runner.process(ProcessId::new(i)).request() == RequestState::Done)
        .count();
    (served, runner.process(ProcessId::new(0)).value(), n)
}

/// Runs A1 + A2 and renders the report.
pub fn run(fast: bool) -> String {
    let mut out = String::new();
    out.push_str("=== A1: flag-domain minimality (Algorithm 1 over {0..m}) ===\n\n");
    let stride = if fast { 11 } else { 1 };
    let mut t = Table::new(&[
        "m (domain size m+1)",
        "adversary configs",
        "forged decisions",
        "safe",
    ]);
    let mut boundary_ok = true;
    for m in 1..=6u8 {
        let (viol, total) = count_forged(m, stride);
        let safe = viol == 0;
        boundary_ok &= if m < 4 { !safe } else { safe };
        t.row(&[
            format!("{m} ({})", m + 1),
            total.to_string(),
            viol.to_string(),
            safe.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nverdict: domains smaller than the paper's five values admit forged decisions; \
         five values (m = 4) and above are safe — boundary exactly at the paper's choice: {}\n\n",
        if boundary_ok {
            "CONFIRMED"
        } else {
            "NOT CONFIRMED"
        }
    ));

    out.push_str("=== A2: the `mod (n+1)` erratum (Algorithm 3, n = 3) ===\n\n");
    let mut t = Table::new(&[
        "value arithmetic",
        "requests served",
        "leader final Value",
        "livelocked",
    ]);
    for (label, mode) in [
        ("corrected: mod n", ValueMode::Corrected),
        ("paper literal: mod (n+1)", ValueMode::PaperLiteral),
    ] {
        let (served, value, n) = value_mode_trial(mode, 5);
        t.row(&[
            label.to_string(),
            format!("{served}/{n}"),
            value.to_string(),
            (value == n).to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nverdict: the literal mod (n+1) drives the leader's Value to the dead value n \
         (favours nobody) and requests starve; the corrected mod n serves everyone — \
         supporting the erratum reading (DESIGN.md D2).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_domain_admits_no_forged_decision_sampled() {
        let (viol, total) = count_forged(4, 17);
        assert!(total > 20);
        assert_eq!(viol, 0, "m = 4 must be safe");
    }

    #[test]
    fn small_domains_admit_forged_decisions() {
        for m in [1u8, 2, 3] {
            let (viol, _) = count_forged(m, 5);
            assert!(viol > 0, "m = {m} must be unsafe");
        }
    }

    #[test]
    fn literal_mode_livelocks_and_corrected_serves() {
        let (served_ok, _, n) = value_mode_trial(ValueMode::Corrected, 1);
        assert_eq!(served_ok, n, "corrected arithmetic serves everyone");
        let (served_bad, value, n) = value_mode_trial(ValueMode::PaperLiteral, 1);
        assert_eq!(value, n, "literal arithmetic reaches the dead value");
        assert_eq!(served_bad, 0, "literal arithmetic starves requests");
    }
}
