//! **T4 + L1 — Theorem 4 (Specification 3) and Lemmas 10–11.**
//!
//! Long mutual-exclusion runs from arbitrary initial configurations with
//! randomly injected requests. Checks:
//!
//! * **Start** — every injected request is served (requests injected too
//!   close to the end of the budget are excluded);
//! * **Correctness** — no two *genuine* CS executions ever overlap, at any
//!   CS duration; spurious executions (corrupted `Request = In`, footnote
//!   1) are reported separately;
//! * **Lemma 10** — every process visits phase 0 repeatedly;
//! * **Lemma 11** — the leader's `Value` pointer keeps advancing.

use snapstab_core::idl::Id;
use snapstab_core::me::{MeConfig, MeProcess, ValueMode};
use snapstab_core::request::RequestState;
use snapstab_core::spec::analyze_me_trace;
use snapstab_sim::{
    Capacity, CorruptionPlan, LossModel, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng,
};

use crate::stats::Summary;
use crate::table::Table;

/// Result of one long mutual-exclusion run.
#[derive(Clone, Debug)]
pub struct Trial {
    /// Requests injected (excluding the tail margin).
    pub requests: usize,
    /// Requests served.
    pub served: usize,
    /// Genuine×genuine CS overlaps (must be 0).
    pub genuine_overlaps: usize,
    /// Overlaps involving spurious CS executions (allowed; informational).
    pub spurious_overlaps: usize,
    /// Service latencies (steps).
    pub latencies: Vec<u64>,
    /// Minimum phase-0 visits over all processes (Lemma 10).
    pub min_phase_zero: u64,
    /// Leader `Value` advances (Lemma 11).
    pub leader_advances: u64,
}

/// Distinct identities; process 1 is the leader (an off-zero choice makes
/// index/id confusions visible in tests).
pub fn ids(n: usize) -> Vec<Id> {
    (0..n)
        .map(|i| if i == 1 { 7 } else { 500 + 31 * i as Id })
        .collect()
}

/// Runs one long trial.
pub fn trial(n: usize, loss: f64, cs_duration: u64, budget: u64, seed: u64) -> Trial {
    let idv = ids(n);
    let config = MeConfig {
        cs_duration,
        value_mode: ValueMode::Corrected,
        ..MeConfig::default()
    };
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| MeProcess::with_config(ProcessId::new(i), n, idv[i], config))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
    if loss > 0.0 {
        runner.set_loss(LossModel::probabilistic(loss));
    }
    let mut rng = SimRng::seed_from(seed ^ 0x4D45); // "ME"
    CorruptionPlan::full().apply(&mut runner, &mut rng);

    // Run in chunks, injecting requests at idle processes with small
    // probability per chunk. Requests injected after the margin are not
    // counted against the Start property.
    let margin = budget * 8 / 10;
    let mut requests_counted = 0usize;
    let chunk = 512u64;
    let mut executed = 0u64;
    while executed < budget {
        let this = chunk.min(budget - executed);
        let out = runner.run_steps(this).expect("fair run cannot error");
        executed += out.steps;
        if out.steps < this {
            break; // quiescent (cannot happen for ME, defensive)
        }
        for i in 0..n {
            let p = ProcessId::new(i);
            if runner.process(p).request() == RequestState::Done && rng.gen_bool(0.02) {
                runner.mark(p, "request");
                assert!(runner.process_mut(p).request_cs());
                if executed < margin {
                    requests_counted += 1;
                }
            }
        }
    }

    let report = analyze_me_trace(runner.trace(), n);
    // Served among the counted (pre-margin) requests.
    let served = report
        .served
        .iter()
        .filter(|(_, req_step, _)| *req_step < margin)
        .count();
    let latencies = report
        .served
        .iter()
        .map(|(_, req, srv)| srv - req)
        .collect();
    let min_phase_zero = (0..n)
        .map(|i| {
            runner
                .process(ProcessId::new(i))
                .counters()
                .phase_zero_visits
        })
        .min()
        .unwrap_or(0);
    let leader_advances = runner.process(ProcessId::new(1)).counters().value_advances;

    Trial {
        requests: requests_counted,
        served,
        genuine_overlaps: report.genuine_overlaps.len(),
        spurious_overlaps: report.spurious_overlaps.len(),
        latencies,
        min_phase_zero,
        leader_advances,
    }
}

/// Runs the T4 + L1 sweep and renders the report.
pub fn run(fast: bool) -> String {
    let (budget, trials) = if fast { (60_000, 3) } else { (400_000, 10) };
    let ns = if fast { vec![3, 5] } else { vec![3, 5, 8] };
    let losses = [0.0, 0.2];
    let durations = [0u64, 3];

    let mut out = String::new();
    out.push_str(
        "=== T4 + L1: Specification 3 (Mutual Exclusion) from arbitrary configurations ===\n\n",
    );
    let mut table = Table::new(&[
        "n",
        "loss",
        "cs_dur",
        "requests",
        "served",
        "genuine overlap",
        "spurious overlap",
        "latency mean/p95",
        "min phase0",
        "leader Value++",
    ]);
    let mut exclusivity = true;
    let mut all_served = true;
    for &n in &ns {
        for &loss in &losses {
            for &d in &durations {
                let mut requests = 0;
                let mut served = 0;
                let mut genuine = 0;
                let mut spurious = 0;
                let mut lats: Vec<u64> = Vec::new();
                let mut min_p0 = u64::MAX;
                let mut advances = 0;
                for t in 0..trials {
                    let r = trial(
                        n,
                        loss,
                        d,
                        budget,
                        (n as u64) << 48 | (d << 32) | (loss * 10.0) as u64 ^ t,
                    );
                    requests += r.requests;
                    served += r.served;
                    genuine += r.genuine_overlaps;
                    spurious += r.spurious_overlaps;
                    lats.extend(r.latencies);
                    min_p0 = min_p0.min(r.min_phase_zero);
                    advances += r.leader_advances;
                }
                exclusivity &= genuine == 0;
                all_served &= served >= requests;
                table.row(&[
                    n.to_string(),
                    format!("{loss:.1}"),
                    d.to_string(),
                    requests.to_string(),
                    served.to_string(),
                    genuine.to_string(),
                    spurious.to_string(),
                    Summary::of_u64(lats).mean_p95(),
                    min_p0.to_string(),
                    advances.to_string(),
                ]);
            }
        }
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nverdict: genuine CS exclusivity {}, all counted requests served {}\n",
        if exclusivity {
            "HELD (0 overlaps)"
        } else {
            "VIOLATED"
        },
        if all_served { "YES" } else { "NO" },
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_trial_no_genuine_overlap_and_lemmas_hold() {
        for seed in 0..3 {
            let t = trial(3, 0.0, 0, 40_000, seed);
            assert_eq!(t.genuine_overlaps, 0, "seed {seed}: {t:?}");
            assert!(t.min_phase_zero > 0, "Lemma 10: {t:?}");
            assert!(t.leader_advances > 0, "Lemma 11: {t:?}");
            assert!(t.served >= t.requests, "Start: {t:?}");
        }
    }

    #[test]
    fn duration_cs_still_exclusive() {
        for seed in 0..2 {
            let t = trial(3, 0.1, 3, 40_000, 77 + seed);
            assert_eq!(t.genuine_overlaps, 0, "seed {seed}: {t:?}");
        }
    }
}
