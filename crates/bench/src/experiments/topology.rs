//! **X2 — tree waves on general topologies (the §5 extension).**
//!
//! The paper's conclusion asks whether its results extend to general
//! networks. `snapstab-topology` answers constructively with a
//! tree-structured PIF; this experiment measures it:
//!
//! 1. **Correctness under corruption** — Specification 1 (lifted to
//!    trees) pass rate over arbitrary corrupted starts, per topology
//!    shape. Must be 100 %.
//! 2. **The latency/message trade vs the flat protocol** — the flat PIF
//!    on the complete graph completes a wave in depth-1 round trips but
//!    needs `n − 1` simultaneous handshakes at the initiator; the tree
//!    wave pipelines over `n − 1` edges and pays one handshake per tree
//!    level. Steps- and messages-to-decision per topology, same n.

use snapstab_core::pif::{PifApp, PifProcess};
use snapstab_core::request::RequestState;
use snapstab_sim::{
    Capacity, CorruptionPlan, NetworkBuilder, ProcessId, RandomScheduler, RoundRobin, Runner,
    SimRng, Topology,
};
use snapstab_topology::{check_tree_wave, Count, TreePifNode};

use crate::table::Table;

fn p(i: usize) -> ProcessId {
    ProcessId::new(i)
}

type CountNode = TreePifNode<u8, u64, Count>;

fn tree_system(topo: &Topology, seed: u64) -> Runner<CountNode, RandomScheduler> {
    let n = topo.n();
    let processes = (0..n)
        .map(|i| TreePifNode::new(p(i), topo, 0u8, Count))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    Runner::new(processes, network, RandomScheduler::new(), seed)
}

/// One corrupted-start trial; returns whether the spec held (public so
/// external sweeps can hunt for failing seeds).
pub fn debug_trial(topo: &Topology, root: ProcessId, seed: u64) -> bool {
    tree_trial(topo, root, seed)
}

fn tree_trial(topo: &Topology, root: ProcessId, seed: u64) -> bool {
    let n = topo.n();
    let mut runner = tree_system(topo, seed);
    let mut rng = SimRng::seed_from(seed ^ 0x7090);
    CorruptionPlan::full().apply(&mut runner, &mut rng);
    let _ = runner.run_until(1_000_000, |r| {
        r.process(root).request() == RequestState::Done
    });
    if runner.process(root).request() != RequestState::Done {
        return false; // drain failed: Termination violated
    }
    let req_step = runner.step_count();
    if !runner.process_mut(root).request_wave(7) {
        return false;
    }
    if runner
        .run_until(5_000_000, |r| {
            r.process(root).request() == RequestState::Done
        })
        .is_err()
    {
        return false;
    }
    check_tree_wave(runner.trace(), root, n, req_step, &7, &(n as u64)).holds()
}

/// Steps and enqueued messages for one clean wave on a tree topology.
fn tree_cost(topo: &Topology, root: ProcessId) -> (u64, u64) {
    let mut runner = {
        let n = topo.n();
        let processes: Vec<CountNode> = (0..n)
            .map(|i| TreePifNode::new(p(i), topo, 0u8, Count))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RoundRobin::new(), 1)
    };
    runner.set_record_trace(false);
    assert!(runner.process_mut(root).request_wave(7));
    runner
        .run_until(5_000_000, |r| {
            r.process(root).request() == RequestState::Done
        })
        .expect("clean wave decides");
    let stats = runner.stats();
    (stats.steps, stats.sends_enqueued)
}

#[derive(Clone, Debug)]
struct Unit;

impl PifApp<u8, u64> for Unit {
    fn on_broadcast(&mut self, _from: ProcessId, _data: &u8) -> u64 {
        1
    }
    fn on_feedback(&mut self, _from: ProcessId, _data: &u64) {}
}

/// Steps and messages for one clean flat-PIF wave on the complete graph.
fn flat_cost(n: usize) -> (u64, u64) {
    let processes: Vec<PifProcess<u8, u64, Unit>> = (0..n)
        .map(|i| PifProcess::with_initial_f(p(i), n, 0u8, 0u64, Unit))
        .collect();
    let network = NetworkBuilder::new(n)
        .capacity(Capacity::Bounded(1))
        .build();
    let mut runner = Runner::new(processes, network, RoundRobin::new(), 1);
    runner.set_record_trace(false);
    assert!(runner.process_mut(p(0)).request_broadcast(7));
    runner
        .run_until(5_000_000, |r| {
            r.process(p(0)).request() == RequestState::Done
        })
        .expect("clean wave decides");
    let stats = runner.stats();
    (stats.steps, stats.sends_enqueued)
}

/// Runs the X2 experiment.
pub fn run(fast: bool) -> String {
    let mut out = String::new();
    out.push_str("=== X2: tree waves on general topologies (the §5 extension) ===\n\n");

    let trials = if fast { 10u64 } else { 60 };

    // (1) Correctness under corruption, per shape.
    let shapes: Vec<(&str, Topology, usize)> = vec![
        ("path(6)", Topology::path(6), 0),
        ("path(6), interior root", Topology::path(6), 3),
        ("star(8)", Topology::star(8), 0),
        ("binary_tree(7)", Topology::binary_tree(7), 0),
        (
            "spanning(ring(8))",
            Topology::ring(8).bfs_spanning_tree(p(0)),
            0,
        ),
        (
            "spanning(complete(6))",
            Topology::complete(6).bfs_spanning_tree(p(0)),
            0,
        ),
    ];
    let mut spec = Table::new(&["topology", "root", "diameter", "Spec pass"]);
    for (name, topo, root) in &shapes {
        let mut pass = 0;
        for seed in 0..trials {
            if tree_trial(topo, p(*root), seed) {
                pass += 1;
            }
        }
        spec.row(&[
            (*name).into(),
            root.to_string(),
            topo.diameter().to_string(),
            format!("{pass}/{trials}"),
        ]);
    }
    out.push_str("tree-wave Specification over corrupted starts:\n");
    out.push_str(&spec.render());
    out.push('\n');

    // (2) The latency/message trade vs the flat protocol.
    let mut cost = Table::new(&[
        "n",
        "flat steps",
        "flat msgs",
        "path steps",
        "path msgs",
        "star steps",
        "star msgs",
        "btree steps",
        "btree msgs",
    ]);
    let sizes: &[usize] = if fast { &[4, 8] } else { &[4, 8, 16, 24] };
    for &n in sizes {
        let (fs, fm) = flat_cost(n);
        let (ps, pm) = tree_cost(&Topology::path(n), p(0));
        let (ss, sm) = tree_cost(&Topology::star(n), p(0));
        let (bs, bm) = tree_cost(&Topology::binary_tree(n), p(0));
        cost.row(&[
            n.to_string(),
            fs.to_string(),
            fm.to_string(),
            ps.to_string(),
            pm.to_string(),
            ss.to_string(),
            sm.to_string(),
            bs.to_string(),
            bm.to_string(),
        ]);
    }
    out.push_str("\nclean-wave cost, flat complete-graph PIF vs tree PIF (round-robin):\n");
    out.push_str(&cost.render());
    out.push_str(
        "\nverdict: the tree wave keeps the snap-stabilization contract on every shape; \
         its cost grows with depth (path worst, star ≈ flat best), the expected trade.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_is_all_green() {
        let s = run(true);
        assert!(s.contains("10/10"), "{s}");
        assert!(!s.contains(" 9/10"), "{s}");
    }

    #[test]
    fn star_is_cheaper_than_path() {
        let (ps, _) = tree_cost(&Topology::path(12), p(0));
        let (ss, _) = tree_cost(&Topology::star(12), p(0));
        assert!(ss < ps, "star {ss} < path {ps}");
    }
}
