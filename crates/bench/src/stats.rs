//! Small summary statistics for experiment series.

/// Summary statistics of a sample.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample of values (empty samples produce zeros).
    pub fn of(values: impl IntoIterator<Item = f64>) -> Summary {
        let mut v: Vec<f64> = values.into_iter().collect();
        if v.is_empty() {
            return Summary::default();
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let count = v.len();
        let mean = v.iter().sum::<f64>() / count as f64;
        let pct = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            v[idx]
        };
        Summary {
            count,
            mean,
            min: v[0],
            p50: pct(0.5),
            p95: pct(0.95),
            max: v[count - 1],
        }
    }

    /// Summarizes integer samples.
    pub fn of_u64(values: impl IntoIterator<Item = u64>) -> Summary {
        Summary::of(values.into_iter().map(|v| v as f64))
    }

    /// `"mean/p95"` rendering used in the report tables.
    pub fn mean_p95(&self) -> String {
        format!("{:.0}/{:.0}", self.mean, self.p95)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={:.0} p50={:.0} p95={:.0} max={:.0}",
            self.count, self.mean, self.min, self.p50, self.p95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_values() {
        let s = Summary::of_u64([1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(s.count, 10);
        assert!((s.mean - 5.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert!(s.p50 >= 5.0 && s.p50 <= 6.0);
        assert!(s.p95 >= 9.0);
    }

    #[test]
    fn empty_sample_is_zeroed() {
        let s = Summary::of(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn display_and_mean_p95() {
        let s = Summary::of_u64([10, 20]);
        assert!(s.to_string().contains("n=2"));
        assert_eq!(s.mean_p95(), "15/20");
    }
}
