//! Small summary statistics for experiment series.

/// Summary statistics of a sample.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile (tail latency; equals `max` for samples smaller
    /// than ~100).
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample of values (empty samples produce zeros).
    pub fn of(values: impl IntoIterator<Item = f64>) -> Summary {
        let mut v: Vec<f64> = values.into_iter().collect();
        if v.is_empty() {
            return Summary::default();
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let count = v.len();
        let mean = v.iter().sum::<f64>() / count as f64;
        let pct = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            v[idx]
        };
        Summary {
            count,
            mean,
            min: v[0],
            p50: pct(0.5),
            p95: pct(0.95),
            p99: pct(0.99),
            max: v[count - 1],
        }
    }

    /// Summarizes integer samples.
    pub fn of_u64(values: impl IntoIterator<Item = u64>) -> Summary {
        Summary::of(values.into_iter().map(|v| v as f64))
    }

    /// `"mean/p95"` rendering used in the report tables.
    pub fn mean_p95(&self) -> String {
        format!("{:.0}/{:.0}", self.mean, self.p95)
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={:.0} p50={:.0} p95={:.0} max={:.0}",
            self.count, self.mean, self.min, self.p50, self.p95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_values() {
        let s = Summary::of_u64([1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(s.count, 10);
        assert!((s.mean - 5.5).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert!(s.p50 >= 5.0 && s.p50 <= 6.0);
        assert!(s.p95 >= 9.0);
        assert!(s.p99 >= s.p95 && s.p99 <= s.max);
    }

    #[test]
    fn percentiles_on_synthetic_latency_distribution() {
        // A long-tailed synthetic sample: 990 fast responses at 1..=990 µs
        // and 10 stragglers at 10 ms. The tail must show in p99 but not
        // p50 — the exact regression the latency-distribution serializer
        // (rtbench p50/p99 columns) guards against.
        let sample = (1..=990u64).chain(std::iter::repeat_n(10_000, 10));
        let s = Summary::of_u64(sample);
        assert_eq!(s.count, 1000);
        assert!((s.p50 - 501.0).abs() <= 1.0, "p50 was {}", s.p50);
        assert!(s.p95 < 1000.0, "p95 stays in the bulk, was {}", s.p95);
        assert_eq!(s.p99, 990.0, "p99 sits at the edge of the bulk");
        assert_eq!(s.max, 10_000.0, "stragglers only surface at the max");
        // Shift one percent more into the tail and p99 must jump.
        let sample = (1..=980u64).chain(std::iter::repeat_n(10_000, 20));
        let s = Summary::of_u64(sample);
        assert_eq!(s.p99, 10_000.0, "a 2% tail lands in p99");
    }

    #[test]
    fn empty_sample_is_zeroed() {
        let s = Summary::of(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn display_and_mean_p95() {
        let s = Summary::of_u64([10, 20]);
        assert!(s.to_string().contains("n=2"));
        assert_eq!(s.mean_p95(), "15/20");
    }
}
