//! Snap-stabilizing termination detection — the last §4.1 application the
//! paper names ("Reset, Snapshot, Leader Election, and Termination
//! Detection, can be solved using a PIF-based solution").
//!
//! ## The underlying computation
//!
//! Each process runs a simple diffusing computation: while *active* with a
//! positive work budget, an activation sends one `Work` message carrying a
//! strictly smaller budget to the next process (mod `n`) and decrements;
//! at zero it turns passive. Receiving `Work{b > 0}` re-activates the
//! receiver with budget `b`. Budgets strictly decrease along every causal
//! chain, so the computation always terminates — including from corrupted
//! states (arbitrary budgets are finite).
//!
//! ## The detector
//!
//! A requested detection runs **two consecutive PIF waves**. At each
//! `receive-brd`, a process answers `Report { passive, quiet }` where
//! `quiet` means "no underlying step (send, receipt or activation) has
//! happened here since the previous `receive-brd` from this detector" —
//! and resets that flag. The detector claims **terminated** iff both
//! waves report everyone passive and the second wave reports everyone
//! quiet (and the detector itself was passive and quiet throughout).
//!
//! ## What snap-stabilization buys (and what it cannot)
//!
//! By Theorem 2 both waves' feedbacks are genuine answers to *these*
//! broadcasts, so a `terminated` verdict certifies exactly: **no process
//! performed any underlying step between its two `receive-brd` events**,
//! and everyone was passive at both. That is the strongest claim any
//! wave-based observer can make from an arbitrary initial configuration:
//! a work message *planted by the adversary in a third-party channel* is
//! indistinguishable from no message until delivered, and its later
//! delivery re-awakens the computation (the verdict is then stale — the
//! next requested detection reports `active` again). The per-window
//! soundness is checked by [`check_detection`]; the classical
//! counters-balance refinement (Safra) is deliberately not used because
//! corrupted counters forge balance, while the quiet-bit window cannot be
//! forged — it is reset by the genuine wave itself.

use snapstab_core::pif::{PifApp, PifCore, PifEvent, PifMsg, PifState};
use snapstab_core::request::RequestState;
use snapstab_sim::{
    ArbitraryState, Context, PerNeighbor, ProcessId, Protocol, SimRng, Trace, TraceEvent,
};

/// Cap on work budgets (keeps corrupted computations short).
pub const WORK_CAP: u8 = 24;

/// The detection query broadcast.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DetectQuery;

impl ArbitraryState for DetectQuery {
    fn arbitrary(_rng: &mut SimRng) -> Self {
        DetectQuery
    }
}

/// A process's answer to one detection wave.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Report {
    /// The process was passive when the wave reached it.
    pub passive: bool,
    /// No underlying step happened since the previous wave of this
    /// detector reached it.
    pub quiet: bool,
}

impl ArbitraryState for Report {
    fn arbitrary(rng: &mut SimRng) -> Self {
        Report {
            passive: bool::arbitrary(rng),
            quiet: bool::arbitrary(rng),
        }
    }
}

/// Messages: the detector's PIF traffic multiplexed with the underlying
/// computation's `Work` messages.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TdMsg {
    /// Detector traffic.
    Pif(PifMsg<DetectQuery, Report>),
    /// One unit of diffusing work carrying the remaining budget.
    Work {
        /// Budget granted to the receiver.
        budget: u8,
    },
}

impl ArbitraryState for TdMsg {
    fn arbitrary(rng: &mut SimRng) -> Self {
        if rng.gen_range(0..3) == 0 {
            TdMsg::Work {
                budget: (u8::arbitrary(rng)) % (WORK_CAP + 1),
            }
        } else {
            TdMsg::Pif(PifMsg::arbitrary(rng))
        }
    }
}

/// Protocol events.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TdEvent {
    /// A detection started (`Request`: `Wait → In`).
    Started,
    /// A detection decided.
    Decided {
        /// The verdict: `true` = terminated.
        terminated: bool,
    },
    /// The underlying computation sent one work unit.
    WorkSent,
    /// The underlying computation received one work unit.
    WorkReceived,
    /// Detector PIF event.
    Pif(PifEvent<DetectQuery, Report>),
}

impl From<PifEvent<DetectQuery, Report>> for TdEvent {
    fn from(e: PifEvent<DetectQuery, Report>) -> Self {
        TdEvent::Pif(e)
    }
}

/// Application-side variables, split out for the `PifApp` upcalls.
#[derive(Clone, PartialEq, Eq, Debug)]
struct TdVars {
    active: bool,
    budget: u8,
    /// Per detector-initiator: underlying activity since its last wave.
    dirty: PerNeighbor<bool>,
    /// The detector's own activity since its current detection started.
    dirty_self: bool,
    /// Feedbacks collected by the current wave.
    collected: PerNeighbor<Option<Report>>,
}

impl PifApp<DetectQuery, Report> for TdVars {
    fn on_broadcast(&mut self, from: ProcessId, _q: &DetectQuery) -> Report {
        let report = Report {
            passive: !self.active,
            quiet: !*self.dirty.get(from),
        };
        self.dirty.set(from, false);
        report
    }
    fn on_feedback(&mut self, from: ProcessId, data: &Report) {
        self.collected.set(from, Some(*data));
    }
}

/// The state projection of a termination-detection process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TdState {
    /// The request variable.
    pub request: RequestState,
    /// Detector phase: 0 = idle, 1 = first wave, 2 = second wave.
    pub phase: u8,
    /// Underlying computation: active flag and budget.
    pub active: bool,
    /// Remaining work budget.
    pub budget: u8,
    /// Per-initiator dirty flags (own slot unused).
    pub dirty: Vec<bool>,
    /// The detector's own dirty flag.
    pub dirty_self: bool,
    /// First-wave reports (own slot unused).
    pub wave1: Vec<Option<Report>>,
    /// Current-wave collection (own slot unused).
    pub collected: Vec<Option<Report>>,
    /// Last verdict.
    pub verdict: Option<bool>,
    /// The underlying PIF state.
    pub pif: PifState<DetectQuery, Report>,
}

/// A termination-detection process.
#[derive(Clone, Debug)]
pub struct TerminationProcess {
    me: ProcessId,
    n: usize,
    request: RequestState,
    phase: u8,
    vars: TdVars,
    wave1: PerNeighbor<Option<Report>>,
    verdict: Option<bool>,
    pif: PifCore<DetectQuery, Report>,
}

impl TerminationProcess {
    /// Creates a passive process with no work.
    pub fn new(me: ProcessId, n: usize) -> Self {
        TerminationProcess {
            me,
            n,
            request: RequestState::Done,
            phase: 0,
            vars: TdVars {
                active: false,
                budget: 0,
                dirty: PerNeighbor::new(me, n, false),
                dirty_self: false,
                collected: PerNeighbor::new(me, n, None),
            },
            wave1: PerNeighbor::new(me, n, None),
            verdict: None,
            pif: PifCore::new(
                me,
                n,
                DetectQuery,
                Report {
                    passive: true,
                    quiet: true,
                },
            ),
        }
    }

    /// Current request state of the detector.
    pub fn request(&self) -> RequestState {
        self.request
    }

    /// The last verdict (`Some(true)` = terminated), meaningful after a
    /// completed detection.
    pub fn verdict(&self) -> Option<bool> {
        self.verdict
    }

    /// True while the underlying computation is active here.
    pub fn is_active(&self) -> bool {
        self.vars.active
    }

    /// Remaining local work budget.
    pub fn budget(&self) -> u8 {
        self.vars.budget
    }

    /// Externally requests a detection; refused while one is pending or in
    /// progress.
    pub fn request_detection(&mut self) -> bool {
        self.request.try_request()
    }

    /// Seeds the underlying computation with `budget` units of work
    /// (workload injection; counts as underlying activity).
    pub fn seed_work(&mut self, budget: u8) {
        let budget = budget.min(WORK_CAP);
        if budget > 0 {
            self.vars.active = true;
            self.vars.budget = budget;
            self.mark_dirty();
        }
    }

    fn mark_dirty(&mut self) {
        self.vars.dirty.fill_with(|_| true);
        self.vars.dirty_self = true;
    }

    fn work_target(&self) -> ProcessId {
        // Deterministic rotation: pass work to the next process.
        ProcessId::new((self.me.index() + 1) % self.n)
    }

    /// Runs `f` over the PIF with a sub-context, forwarding its sends
    /// (wrapped in [`TdMsg::Pif`]) and events to the outer context.
    fn with_pif<R>(
        ctx: &mut Context<'_, TdMsg, TdEvent>,
        f: impl FnOnce(&mut Context<'_, PifMsg<DetectQuery, Report>, TdEvent>) -> R,
    ) -> R {
        let mut sends: Vec<(ProcessId, PifMsg<DetectQuery, Report>)> = Vec::new();
        let mut events: Vec<TdEvent> = Vec::new();
        let (me, n, step) = (ctx.me(), ctx.n(), ctx.step());
        let r = {
            let mut pif_ctx = Context::new(me, n, step, ctx.rng(), &mut sends, &mut events);
            f(&mut pif_ctx)
        };
        for (to, m) in sends {
            ctx.send(to, TdMsg::Pif(m));
        }
        for e in events {
            ctx.emit(e);
        }
        r
    }

    fn all_good(&self, second_wave: &PerNeighbor<Option<Report>>) -> bool {
        let w1_ok = self
            .wave1
            .iter()
            .all(|(_, r)| matches!(r, Some(Report { passive: true, .. })));
        let w2_ok = second_wave.iter().all(|(_, r)| {
            matches!(
                r,
                Some(Report {
                    passive: true,
                    quiet: true
                })
            )
        });
        w1_ok && w2_ok && !self.vars.active && !self.vars.dirty_self
    }
}

impl Protocol for TerminationProcess {
    type Msg = TdMsg;
    type Event = TdEvent;
    type State = TdState;

    fn activate(&mut self, ctx: &mut Context<'_, TdMsg, TdEvent>) -> bool {
        let mut acted = false;

        // The underlying computation: one work send per activation.
        if self.vars.active {
            if self.vars.budget > 0 {
                let budget = self.vars.budget - 1;
                self.vars.budget = budget;
                ctx.send(self.work_target(), TdMsg::Work { budget });
                ctx.emit(TdEvent::WorkSent);
                self.mark_dirty();
                acted = true;
            }
            if self.vars.budget == 0 {
                self.vars.active = false;
            }
        }

        // A0: the detector's starting action.
        if self.request == RequestState::Wait {
            self.request = RequestState::In;
            self.phase = 1;
            self.verdict = None;
            self.vars.dirty_self = self.vars.active;
            self.vars.collected.fill_with(|_| None);
            self.wave1.fill_with(|_| None);
            self.pif.force_request(DetectQuery);
            ctx.emit(TdEvent::Started);
            acted = true;
        }
        // Phase repair for corrupted combinations (never-started
        // computations owe only termination).
        if self.request == RequestState::In && self.phase == 0 {
            self.phase = 1;
            self.pif.force_request(DetectQuery);
        }
        if self.request == RequestState::Done {
            self.phase = 0;
        }

        // Wave transitions.
        if self.request == RequestState::In && self.pif.request() == RequestState::Done {
            match self.phase {
                1 => {
                    self.wave1 = self.vars.collected.clone();
                    self.vars.collected.fill_with(|_| None);
                    self.phase = 2;
                    self.pif.force_request(DetectQuery);
                    acted = true;
                }
                _ => {
                    let terminated = self.all_good(&self.vars.collected);
                    self.verdict = Some(terminated);
                    self.request = RequestState::Done;
                    self.phase = 0;
                    ctx.emit(TdEvent::Decided { terminated });
                    acted = true;
                }
            }
        }

        // Drive the PIF's own actions.
        let pif = &mut self.pif;
        let pif_acted = Self::with_pif(ctx, |pc| pif.activate(pc));
        acted || pif_acted
    }

    fn on_receive(&mut self, from: ProcessId, msg: TdMsg, ctx: &mut Context<'_, TdMsg, TdEvent>) {
        match msg {
            TdMsg::Pif(m) => {
                let (pif, vars) = (&mut self.pif, &mut self.vars);
                Self::with_pif(ctx, |pc| pif.handle_receive(from, m, vars, pc));
            }
            TdMsg::Work { budget } => {
                let budget = budget.min(WORK_CAP);
                if budget > 0 {
                    self.vars.active = true;
                    self.vars.budget = self.vars.budget.max(budget);
                }
                // Any work delivery is underlying activity.
                self.mark_dirty();
                ctx.emit(TdEvent::WorkReceived);
            }
        }
    }

    fn has_enabled_action(&self) -> bool {
        self.request != RequestState::Done
            || (self.vars.active && self.vars.budget > 0)
            || self.pif.has_enabled_action()
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        self.request = RequestState::arbitrary(rng);
        self.phase = rng.gen_range(0..3) as u8;
        self.vars.active = bool::arbitrary(rng);
        self.vars.budget = (u8::arbitrary(rng)) % (WORK_CAP + 1);
        self.vars.dirty.fill_with(|_| bool::arbitrary(rng));
        self.vars.dirty_self = bool::arbitrary(rng);
        self.vars
            .collected
            .fill_with(|_| Option::<Report>::arbitrary(rng));
        self.wave1.fill_with(|_| Option::<Report>::arbitrary(rng));
        self.verdict = Option::<bool>::arbitrary(rng);
        self.pif.corrupt(rng);
    }

    fn snapshot(&self) -> TdState {
        let collect = |pn: &PerNeighbor<Option<Report>>| -> Vec<Option<Report>> {
            (0..self.n)
                .map(|i| {
                    if i == self.me.index() {
                        None
                    } else {
                        *pn.get(ProcessId::new(i))
                    }
                })
                .collect()
        };
        TdState {
            request: self.request,
            phase: self.phase,
            active: self.vars.active,
            budget: self.vars.budget,
            dirty: (0..self.n)
                .map(|i| i != self.me.index() && *self.vars.dirty.get(ProcessId::new(i)))
                .collect(),
            dirty_self: self.vars.dirty_self,
            wave1: collect(&self.wave1),
            collected: collect(&self.vars.collected),
            verdict: self.verdict,
            pif: self.pif.snapshot(),
        }
    }

    fn restore(&mut self, state: TdState) {
        self.request = state.request;
        self.phase = state.phase;
        self.vars.active = state.active;
        self.vars.budget = state.budget;
        for i in 0..self.n {
            if i != self.me.index() {
                let q = ProcessId::new(i);
                self.vars.dirty.set(q, state.dirty[i]);
                self.wave1.set(q, state.wave1[i]);
                self.vars.collected.set(q, state.collected[i]);
            }
        }
        self.vars.dirty_self = state.dirty_self;
        self.verdict = state.verdict;
        self.pif.restore(state.pif);
    }
}

/// Verdict of [`check_detection`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DetectionVerdict {
    /// The detection started after the request.
    pub started: bool,
    /// The detection decided.
    pub decided: bool,
    /// The decided verdict, if any.
    pub terminated: Option<bool>,
    /// For a `terminated` verdict: every process's inter-wave window was
    /// free of underlying steps (the soundness guarantee).
    pub windows_quiet: bool,
    /// Processes whose window contained underlying activity (diagnostics).
    pub noisy: Vec<ProcessId>,
}

impl DetectionVerdict {
    /// True if the detection satisfied its specification: it started,
    /// decided, and any `terminated` claim is window-sound.
    pub fn holds(&self) -> bool {
        self.started && self.decided && (self.terminated != Some(true) || self.windows_quiet)
    }
}

/// Checks the first detection requested by `initiator` at `req_step`: a
/// `terminated` verdict must certify that no underlying step happened at
/// any process between its two `receive-brd` events of this detection.
pub fn check_detection(
    trace: &Trace<TdMsg, TdEvent>,
    initiator: ProcessId,
    n: usize,
    req_step: u64,
) -> DetectionVerdict {
    let mut start_step = None;
    let mut decision = None;
    for e in trace.iter() {
        if e.step < req_step {
            continue;
        }
        if let TraceEvent::Protocol { p, event } = &e.event {
            if *p != initiator {
                continue;
            }
            match event {
                TdEvent::Started if start_step.is_none() => start_step = Some(e.step),
                TdEvent::Decided { terminated } if start_step.is_some() && decision.is_none() => {
                    decision = Some((e.step, *terminated));
                }
                _ => {}
            }
        }
    }
    let started = start_step.is_some();
    let (decided, terminated) = match decision {
        Some((_, t)) => (true, Some(t)),
        None => (false, None),
    };

    let mut noisy = Vec::new();
    if terminated == Some(true) {
        let lo = start_step.expect("started");
        let hi = decision.expect("decided").0;
        for i in 0..n {
            let q = ProcessId::new(i);
            if q == initiator {
                // The initiator's own window is [start, decision].
                let active = trace.iter().any(|e| {
                    e.step > lo
                        && e.step < hi
                        && matches!(&e.event,
                            TraceEvent::Protocol { p, event: TdEvent::WorkSent | TdEvent::WorkReceived }
                                if *p == q)
                });
                if active {
                    noisy.push(q);
                }
                continue;
            }
            // The last two receive-brd events from the initiator inside
            // the detection window are the two genuine waves.
            let brds: Vec<u64> = trace
                .iter()
                .filter(|e| {
                    e.step >= lo
                        && e.step <= hi
                        && matches!(&e.event,
                            TraceEvent::Protocol { p, event: TdEvent::Pif(PifEvent::ReceiveBrd { from, .. }) }
                                if *p == q && *from == initiator)
                })
                .map(|e| e.step)
                .collect();
            if brds.len() < 2 {
                noisy.push(q); // cannot certify the window
                continue;
            }
            let (w1, w2) = (brds[brds.len() - 2], brds[brds.len() - 1]);
            let active = trace.iter().any(|e| {
                e.step > w1
                    && e.step < w2
                    && matches!(&e.event,
                        TraceEvent::Protocol { p, event: TdEvent::WorkSent | TdEvent::WorkReceived }
                            if *p == q)
            });
            if active {
                noisy.push(q);
            }
        }
    }

    DetectionVerdict {
        started,
        decided,
        terminated,
        windows_quiet: noisy.is_empty(),
        noisy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_sim::{
        Capacity, CorruptionPlan, NetworkBuilder, RandomScheduler, RoundRobin, Runner,
    };

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize, seed: u64) -> Runner<TerminationProcess, RoundRobin> {
        let processes = (0..n).map(|i| TerminationProcess::new(p(i), n)).collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RoundRobin::new(), seed)
    }

    fn detect(
        runner: &mut Runner<TerminationProcess, impl snapstab_sim::Scheduler>,
        who: ProcessId,
    ) -> bool {
        assert!(runner.process_mut(who).request_detection());
        runner
            .run_until(2_000_000, |r| {
                r.process(who).request() == RequestState::Done
            })
            .expect("detection decides");
        runner.process(who).verdict().expect("verdict present")
    }

    #[test]
    fn quiet_system_is_reported_terminated() {
        let mut runner = system(3, 1);
        let verdict = detect(&mut runner, p(0));
        assert!(verdict, "nothing ever ran: terminated");
        let v = check_detection(runner.trace(), p(0), 3, 0);
        assert!(v.holds(), "{v:?}");
    }

    #[test]
    fn work_runs_to_exhaustion_then_detection_confirms() {
        let mut runner = system(4, 2);
        runner.process_mut(p(1)).seed_work(10);
        runner
            .run_until(1_000_000, |r| (0..4).all(|i| !r.process(p(i)).is_active()))
            .expect("work exhausts");
        let verdict = detect(&mut runner, p(0));
        assert!(verdict);
        let v = check_detection(runner.trace(), p(0), 4, 0);
        assert!(v.holds(), "{v:?}");
    }

    #[test]
    fn active_work_is_not_reported_terminated() {
        let mut runner = system(3, 3);
        runner.process_mut(p(1)).seed_work(WORK_CAP);
        // Request detection immediately, while work diffuses.
        let req_step = runner.step_count();
        assert!(runner.process_mut(p(0)).request_detection());
        runner
            .run_until(2_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            })
            .expect("detection decides");
        // Whatever the verdict, the soundness property holds…
        let v = check_detection(runner.trace(), p(0), 3, req_step);
        assert!(v.holds(), "{v:?}");
        // …and with work overlapping both waves, the verdict is `false`.
        if runner.process(p(0)).verdict() == Some(true) {
            // The waves may legitimately straddle the quiet tail; then the
            // windows really were quiet — holds() already asserted it.
        }
    }

    #[test]
    fn repeated_detection_eventually_terminates_with_sound_windows() {
        let mut runner = system(3, 4);
        runner.process_mut(p(2)).seed_work(12);
        let mut verdicts = Vec::new();
        for _ in 0..12 {
            let req_step = runner.step_count();
            let verdict = detect(&mut runner, p(0));
            let v = check_detection(runner.trace(), p(0), 3, req_step);
            assert!(v.holds(), "{v:?}");
            verdicts.push(verdict);
            if verdict {
                break;
            }
        }
        assert_eq!(
            verdicts.last(),
            Some(&true),
            "work exhausts, detection confirms"
        );
    }

    #[test]
    fn corrupted_starts_terminate_and_claims_stay_sound() {
        for seed in 0..8 {
            let n = 3;
            let processes = (0..n).map(|i| TerminationProcess::new(p(i), n)).collect();
            let network = NetworkBuilder::new(n)
                .capacity(Capacity::Bounded(1))
                .build();
            let mut runner = Runner::new(processes, network, RandomScheduler::new(), seed);
            let mut rng = SimRng::seed_from(seed + 50);
            CorruptionPlan::full().apply(&mut runner, &mut rng);
            // Non-started computations terminate.
            let _ = runner.run_until(2_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            });
            assert_eq!(
                runner.process(p(0)).request(),
                RequestState::Done,
                "seed {seed}"
            );
            // The first requested detection is window-sound.
            let req_step = runner.step_count();
            assert!(runner.process_mut(p(0)).request_detection());
            runner
                .run_until(2_000_000, |r| {
                    r.process(p(0)).request() == RequestState::Done
                })
                .expect("detection decides");
            let v = check_detection(runner.trace(), p(0), n, req_step);
            assert!(v.holds(), "seed {seed}: {v:?}");
        }
    }

    #[test]
    fn planted_work_reawakens_and_is_caught_by_the_next_detection() {
        let mut runner = system(3, 6);
        // The adversary hides a work message in a third-party channel.
        runner
            .network_mut()
            .channel_mut(p(1), p(2))
            .unwrap()
            .preload([TdMsg::Work { budget: 6 }]);
        // It is delivered eventually; once the system re-quiesces, a
        // detection confirms termination again.
        runner
            .run_until(1_000_000, |r| {
                (0..3).all(|i| !r.process(p(i)).is_active()) && r.network().is_quiescent()
            })
            .expect("planted work exhausts");
        let verdict = detect(&mut runner, p(0));
        assert!(verdict);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut proc = TerminationProcess::new(p(0), 3);
        let mut rng = SimRng::seed_from(9);
        proc.corrupt(&mut rng);
        let snap = proc.snapshot();
        let mut other = TerminationProcess::new(p(0), 3);
        other.restore(snap.clone());
        assert_eq!(other.snapshot(), snap);
    }

    #[test]
    fn seed_work_respects_the_cap() {
        let mut proc = TerminationProcess::new(p(0), 3);
        proc.seed_work(255);
        assert_eq!(proc.budget(), WORK_CAP);
        assert!(proc.is_active());
        proc.seed_work(0);
        assert_eq!(proc.budget(), WORK_CAP, "zero seed is a no-op");
    }
}
