//! Snap-stabilizing global snapshot: one requested wave collects every
//! process's application value.
//!
//! The feedback mechanism of Algorithm 1 guarantees (Specification 1,
//! Decision) that the initiator decides on exactly the `n − 1` answers its
//! own broadcast provoked — so the collected vector is a faithful
//! one-value-per-process snapshot taken *during* the wave, regardless of
//! the initial configuration.
//!
//! ## What kind of snapshot this is
//!
//! This is the paper's PIF-based "Snapshot" in the §4.1 sense: a vector
//! of per-process *values*, each read inside the atomic receive action
//! of the wave's broadcast at that process. It is **not** a
//! Chandy–Lamport snapshot — no channel *contents* are recorded, and no
//! marker rule replays in-flight messages into the cut. When the live
//! runtime's monitor (`snapstab_runtime::monitor`) embeds this protocol
//! to collect observability cuts, the channel half of a cut is therefore
//! sampled as per-link *counters* (drops, reorders, in-transit depth)
//! rather than message contents, and the cut's consistency is judged
//! post-hoc by executable Specification 5 —
//! [`analyze_snapshot_trace`](snapstab_core::spec::analyze_snapshot_trace)
//! over [`SnapshotReport`](snapstab_core::spec::SnapshotReport) — which
//! checks exactly the §4.1 promise: one value per live process, causally
//! consistent with the surrounding service trace.
//!
//! ## Example
//!
//! Collect every process's value in one wave, from a *corrupted* initial
//! configuration (snap-stabilization: the first requested wave is
//! already correct):
//!
//! ```
//! use snapstab_apps::SnapshotProcess;
//! use snapstab_core::request::RequestState;
//! use snapstab_sim::{Capacity, NetworkBuilder, ProcessId, RandomScheduler, Runner, SimRng};
//!
//! let n = 3;
//! let processes = (0..n)
//!     .map(|i| SnapshotProcess::new(ProcessId::new(i), n, 10 * i as u32))
//!     .collect();
//! let network = NetworkBuilder::new(n).capacity(Capacity::Bounded(1)).build();
//! let mut runner = Runner::new(processes, network, RandomScheduler::new(), 7);
//!
//! // Adversarial start: every variable and flag randomized. The
//! // application then re-asserts its own value (corruption of the
//! // *answer* is the application's to fix — a live service refreshes
//! // it at capture time); the protocol's internal handshake state
//! // stays corrupted, and the wave must still collect correctly.
//! let mut rng = SimRng::seed_from(0xBAD);
//! runner.corrupt_all_processes(&mut rng);
//! for i in 0..n {
//!     runner.process_mut(ProcessId::new(i)).set_value(10 * i as u32);
//! }
//!
//! let p0 = ProcessId::new(0);
//! runner.process_mut(p0).request_snapshot();
//! runner
//!     .run_until(500_000, |r| r.process(p0).request() == RequestState::Done)
//!     .unwrap();
//! assert_eq!(runner.process(p0).snapshot_vector(), Some(vec![0, 10, 20]));
//! ```

use snapstab_core::pif::{PifApp, PifCore, PifEvent, PifMsg, PifState};
use snapstab_core::request::RequestState;
use snapstab_sim::{ArbitraryState, Context, Message, PerNeighbor, ProcessId, Protocol, SimRng};

/// The snapshot query broadcast.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SnapQuery;

impl ArbitraryState for SnapQuery {
    fn arbitrary(_rng: &mut SimRng) -> Self {
        SnapQuery
    }
}

/// Events of a snapshot process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SnapshotEvent<V> {
    /// A snapshot computation started.
    Started,
    /// The snapshot decided; every collected value is available.
    Decided,
    /// An event of the underlying PIF.
    Pif(PifEvent<SnapQuery, V>),
}

impl<V> From<PifEvent<SnapQuery, V>> for SnapshotEvent<V> {
    fn from(e: PifEvent<SnapQuery, V>) -> Self {
        SnapshotEvent::Pif(e)
    }
}

/// Application-facing state split out for the `PifApp` upcalls.
#[derive(Clone, PartialEq, Eq, Debug)]
struct SnapVars<V> {
    /// This process's current application value (answered to queries).
    value: V,
    /// Values collected by this process's own snapshot wave.
    collected: PerNeighbor<Option<V>>,
}

impl<V: Message> PifApp<SnapQuery, V> for SnapVars<V> {
    fn on_broadcast(&mut self, _from: ProcessId, _q: &SnapQuery) -> V {
        self.value.clone()
    }
    fn on_feedback(&mut self, from: ProcessId, data: &V) {
        self.collected.set(from, Some(data.clone()));
    }
}

/// The state projection of a snapshot process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SnapshotState<V> {
    /// The request variable.
    pub request: RequestState,
    /// The local application value.
    pub value: V,
    /// Collected values (own slot unused).
    pub collected: Vec<Option<V>>,
    /// The underlying PIF state.
    pub pif: PifState<SnapQuery, V>,
}

/// A process participating in snap-stabilizing snapshots.
#[derive(Clone, Debug)]
pub struct SnapshotProcess<V> {
    me: ProcessId,
    n: usize,
    request: RequestState,
    vars: SnapVars<V>,
    pif: PifCore<SnapQuery, V>,
}

impl<V: Message + ArbitraryState> SnapshotProcess<V> {
    /// Creates a process whose current application value is `value`.
    pub fn new(me: ProcessId, n: usize, value: V) -> Self {
        SnapshotProcess {
            me,
            n,
            request: RequestState::Done,
            vars: SnapVars {
                value: value.clone(),
                collected: PerNeighbor::new(me, n, None),
            },
            pif: PifCore::new(me, n, SnapQuery, value),
        }
    }

    /// Current request state.
    pub fn request(&self) -> RequestState {
        self.request
    }

    /// The local application value.
    pub fn value(&self) -> &V {
        &self.vars.value
    }

    /// Updates the local application value (the thing snapshots observe).
    pub fn set_value(&mut self, value: V) {
        self.vars.value = value;
    }

    /// Externally requests a snapshot; refused while one is pending or in
    /// progress.
    pub fn request_snapshot(&mut self) -> bool {
        self.request.try_request()
    }

    /// The value collected from `q` by the last completed snapshot.
    pub fn collected_from(&self, q: ProcessId) -> Option<&V> {
        self.vars.collected.get(q).as_ref()
    }

    /// The full snapshot (own value in the owner's slot), if every peer
    /// answered.
    pub fn snapshot_vector(&self) -> Option<Vec<V>> {
        let mut out = Vec::with_capacity(self.n);
        for i in 0..self.n {
            if i == self.me.index() {
                out.push(self.vars.value.clone());
            } else {
                out.push(self.vars.collected.get(ProcessId::new(i)).clone()?);
            }
        }
        Some(out)
    }
}

impl<V: Message + ArbitraryState> Protocol for SnapshotProcess<V> {
    type Msg = PifMsg<SnapQuery, V>;
    type Event = SnapshotEvent<V>;
    type State = SnapshotState<V>;

    fn activate(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Event>) -> bool {
        let mut acted = false;
        // A1: start — clear the collection and launch the wave.
        if self.request == RequestState::Wait {
            self.request = RequestState::In;
            self.vars.collected.fill_with(|_| None);
            self.pif.force_request(SnapQuery);
            ctx.emit(SnapshotEvent::Started);
            acted = true;
        }
        // A2: the wave decided — the snapshot decides.
        if self.request == RequestState::In && self.pif.request() == RequestState::Done {
            self.request = RequestState::Done;
            ctx.emit(SnapshotEvent::Decided);
            acted = true;
        }
        acted |= self.pif.activate(ctx);
        acted
    }

    fn on_receive(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Event>,
    ) {
        self.pif.handle_receive(from, msg, &mut self.vars, ctx);
    }

    fn has_enabled_action(&self) -> bool {
        self.request == RequestState::Wait
            || (self.request == RequestState::In && self.pif.request() == RequestState::Done)
            || self.pif.has_enabled_action()
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        self.request = RequestState::arbitrary(rng);
        // The application value is application state — corrupt it too:
        // snapshots must be exact even about post-fault values.
        self.vars.value = V::arbitrary(rng);
        self.vars.collected.fill_with(|_| {
            if bool::arbitrary(rng) {
                Some(V::arbitrary(rng))
            } else {
                None
            }
        });
        self.pif.corrupt(rng);
    }

    fn snapshot(&self) -> Self::State {
        SnapshotState {
            request: self.request,
            value: self.vars.value.clone(),
            collected: (0..self.n)
                .map(|i| {
                    if i == self.me.index() {
                        None
                    } else {
                        self.vars.collected.get(ProcessId::new(i)).clone()
                    }
                })
                .collect(),
            pif: self.pif.snapshot(),
        }
    }

    fn restore(&mut self, s: Self::State) {
        self.request = s.request;
        self.vars.value = s.value;
        for i in 0..self.n {
            if i != self.me.index() {
                self.vars
                    .collected
                    .set(ProcessId::new(i), s.collected[i].clone());
            }
        }
        self.pif.restore(s.pif);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_sim::{Capacity, CorruptionPlan, NetworkBuilder, RandomScheduler, Runner};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize, seed: u64) -> Runner<SnapshotProcess<u32>, RandomScheduler> {
        let processes = (0..n)
            .map(|i| SnapshotProcess::new(p(i), n, 10 * i as u32))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RandomScheduler::new(), seed)
    }

    #[test]
    fn snapshot_collects_exact_values() {
        let mut r = system(4, 1);
        r.process_mut(p(2)).request_snapshot();
        r.run_until(500_000, |r| r.process(p(2)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(2)).snapshot_vector(), Some(vec![0, 10, 20, 30]));
    }

    #[test]
    fn snapshot_sees_post_fault_values_from_corrupted_start() {
        for seed in 0..10 {
            let mut r = system(3, seed);
            let mut rng = SimRng::seed_from(seed + 77);
            CorruptionPlan::full().apply(&mut r, &mut rng);
            // Fix known values AFTER the fault burst (the app writes them).
            for i in 0..3 {
                r.process_mut(p(i)).set_value(500 + i as u32);
            }
            let _ = r.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done);
            assert!(r.process_mut(p(0)).request_snapshot());
            r.run_until(1_000_000, |r| {
                r.process(p(0)).request() == RequestState::Done
            })
            .unwrap();
            assert_eq!(
                r.process(p(0)).snapshot_vector(),
                Some(vec![500, 501, 502]),
                "seed {seed}: first requested snapshot is exact"
            );
        }
    }

    #[test]
    fn snapshot_vector_none_until_complete() {
        let r = system(3, 0);
        assert_eq!(r.process(p(0)).snapshot_vector(), None);
    }

    #[test]
    fn concurrent_snapshots_all_exact() {
        let mut r = system(3, 5);
        for i in 0..3 {
            assert!(r.process_mut(p(i)).request_snapshot());
        }
        r.run_until(1_000_000, |r| {
            (0..3).all(|i| r.process(p(i)).request() == RequestState::Done)
        })
        .unwrap();
        for i in 0..3 {
            assert_eq!(
                r.process(p(i)).snapshot_vector(),
                Some(vec![0, 10, 20]),
                "initiator {i}"
            );
        }
    }

    #[test]
    fn values_can_change_between_snapshots() {
        let mut r = system(2, 3);
        r.process_mut(p(0)).request_snapshot();
        r.run_until(100_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(0)).collected_from(p(1)), Some(&10));
        r.process_mut(p(1)).set_value(999);
        r.process_mut(p(0)).request_snapshot();
        r.run_until(100_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(0)).collected_from(p(1)), Some(&999));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut proc = SnapshotProcess::new(p(0), 3, 7u32);
        let mut rng = SimRng::seed_from(2);
        proc.corrupt(&mut rng);
        let snap = proc.snapshot();
        proc.corrupt(&mut rng);
        proc.restore(snap.clone());
        assert_eq!(proc.snapshot(), snap);
    }
}
