//! Snap-stabilizing phase barrier: a process passes from phase `k` to
//! `k + 1` only after a wave *it started* collected, from every other
//! process, evidence of having finished phase `k` (or being beyond it).
//!
//! Because the evidence is carried by the feedbacks of a single started
//! PIF wave, Specification 1 makes it current — corrupted local state
//! cannot fake a barrier crossing, unlike a naive "remembered reports"
//! design where a corrupted report table lets a process run ahead. If the
//! wave finds stragglers, the process simply asks again (each retry is a
//! fresh complete wave), so the barrier is also live under fair loss.
//!
//! A process that learns it is *behind* (some peer reports a larger phase)
//! fast-forwards: peers beyond `k` have necessarily passed barrier `k`.

use snapstab_core::pif::{PifApp, PifCore, PifEvent, PifMsg, PifState};
use snapstab_sim::{ArbitraryState, Context, PerNeighbor, ProcessId, Protocol, SimRng};

/// The barrier query: "I finished this phase; where are you?".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BarrierQuery {
    /// The asker's phase.
    pub phase: u64,
}

impl ArbitraryState for BarrierQuery {
    fn arbitrary(rng: &mut SimRng) -> Self {
        BarrierQuery {
            phase: rng.gen_u64() % 8,
        }
    }
}

/// The barrier reply: the responder's progress.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BarrierReply {
    /// The responder's phase.
    pub phase: u64,
    /// Whether the responder finished its work in that phase.
    pub done: bool,
}

impl ArbitraryState for BarrierReply {
    fn arbitrary(rng: &mut SimRng) -> Self {
        BarrierReply {
            phase: rng.gen_u64() % 8,
            done: rng.gen_bool(0.5),
        }
    }
}

/// Events of a barrier process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BarrierEvent {
    /// The process finished its work and started synchronizing.
    SyncStarted {
        /// The phase being synchronized.
        phase: u64,
    },
    /// The barrier was passed; the process is now in this (new) phase.
    Passed {
        /// The phase just entered.
        new_phase: u64,
    },
    /// A wave completed but found stragglers; retrying.
    Retry,
    /// An event of the underlying PIF.
    Pif(PifEvent<BarrierQuery, BarrierReply>),
}

impl From<PifEvent<BarrierQuery, BarrierReply>> for BarrierEvent {
    fn from(e: PifEvent<BarrierQuery, BarrierReply>) -> Self {
        BarrierEvent::Pif(e)
    }
}

/// App adapter: answers queries with this process's progress and collects
/// replies for the barrier decision.
#[derive(Clone, PartialEq, Eq, Debug)]
struct BarrierVars {
    phase: u64,
    work_done: bool,
    collected: PerNeighbor<Option<BarrierReply>>,
}

impl PifApp<BarrierQuery, BarrierReply> for BarrierVars {
    fn on_broadcast(&mut self, _from: ProcessId, _q: &BarrierQuery) -> BarrierReply {
        BarrierReply {
            phase: self.phase,
            done: self.work_done,
        }
    }
    fn on_feedback(&mut self, from: ProcessId, reply: &BarrierReply) {
        self.collected.set(from, Some(*reply));
    }
}

/// The state projection of a barrier process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BarrierState {
    /// The current phase.
    pub phase: u64,
    /// Whether this phase's work is finished (equivalently: whether the
    /// process is synchronizing — the two must coincide, or a corrupted
    /// "done but not syncing" combination would deadlock).
    pub work_done: bool,
    /// Collected replies (own slot unused).
    pub collected: Vec<Option<BarrierReply>>,
    /// The underlying PIF state.
    pub pif: PifState<BarrierQuery, BarrierReply>,
}

/// A process participating in snap-stabilizing phase barriers.
#[derive(Clone, Debug)]
pub struct BarrierProcess {
    me: ProcessId,
    n: usize,
    vars: BarrierVars,
    pif: PifCore<BarrierQuery, BarrierReply>,
    /// Barrier crossings (instrumentation).
    passes: u64,
}

impl BarrierProcess {
    /// Creates a process at phase 0 with unfinished work.
    pub fn new(me: ProcessId, n: usize) -> Self {
        BarrierProcess {
            me,
            n,
            vars: BarrierVars {
                phase: 0,
                work_done: false,
                collected: PerNeighbor::new(me, n, None),
            },
            pif: PifCore::new(
                me,
                n,
                BarrierQuery { phase: 0 },
                BarrierReply {
                    phase: 0,
                    done: false,
                },
            ),
            passes: 0,
        }
    }

    /// The current phase.
    pub fn phase(&self) -> u64 {
        self.vars.phase
    }

    /// True while synchronizing (work done, waiting at the barrier).
    pub fn is_syncing(&self) -> bool {
        self.vars.work_done
    }

    /// Barrier crossings so far.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// The external work signal: this phase's work is finished; start
    /// synchronizing. Returns `false` if already finished or syncing.
    pub fn finish_work(&mut self) -> bool {
        if self.vars.work_done {
            return false;
        }
        self.vars.work_done = true;
        self.vars.collected.fill_with(|_| None);
        self.pif.force_request(BarrierQuery {
            phase: self.vars.phase,
        });
        true
    }

    fn barrier_holds(&self) -> bool {
        self.vars.collected.all(|slot| {
            matches!(slot, Some(r) if r.phase > self.vars.phase
                || (r.phase == self.vars.phase && r.done))
        })
    }

    fn max_reported(&self) -> u64 {
        self.vars
            .collected
            .iter()
            .filter_map(|(_, slot)| slot.map(|r| r.phase))
            .max()
            .unwrap_or(self.vars.phase)
    }
}

impl Protocol for BarrierProcess {
    type Msg = PifMsg<BarrierQuery, BarrierReply>;
    type Event = BarrierEvent;
    type State = BarrierState;

    fn activate(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Event>) -> bool {
        let mut acted = false;
        if self.vars.work_done && self.pif.request() == snapstab_core::RequestState::Done {
            if self.barrier_holds() {
                // Everyone reached this phase: cross the barrier. A peer
                // *at* phase P has passed every barrier below P, so when
                // ahead it certifies fast-forwarding to P (not beyond).
                let next = (self.vars.phase + 1).max(self.max_reported());
                self.vars.phase = next;
                self.vars.work_done = false;
                self.passes += 1;
                ctx.emit(BarrierEvent::Passed { new_phase: next });
            } else {
                // Stragglers: ask again with a fresh wave.
                self.vars.collected.fill_with(|_| None);
                self.pif.force_request(BarrierQuery {
                    phase: self.vars.phase,
                });
                ctx.emit(BarrierEvent::Retry);
            }
            acted = true;
        }
        acted |= self.pif.activate(ctx);
        acted
    }

    fn on_receive(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Event>,
    ) {
        self.pif.handle_receive(from, msg, &mut self.vars, ctx);
    }

    fn has_enabled_action(&self) -> bool {
        (self.vars.work_done && self.pif.request() == snapstab_core::RequestState::Done)
            || self.pif.has_enabled_action()
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        // The phase counter's domain is unbounded; corruption draws from a
        // window (a full-u64 draw only stretches the catch-up time
        // linearly in the phase gap without changing the safety argument).
        self.vars.phase = rng.gen_u64() % 8;
        self.vars.work_done = bool::arbitrary(rng);
        self.vars.collected.fill_with(|_| {
            if bool::arbitrary(rng) {
                Some(BarrierReply::arbitrary(rng))
            } else {
                None
            }
        });
        self.pif.corrupt(rng);
    }

    fn snapshot(&self) -> BarrierState {
        BarrierState {
            phase: self.vars.phase,
            work_done: self.vars.work_done,
            collected: (0..self.n)
                .map(|i| {
                    if i == self.me.index() {
                        None
                    } else {
                        *self.vars.collected.get(ProcessId::new(i))
                    }
                })
                .collect(),
            pif: self.pif.snapshot(),
        }
    }

    fn restore(&mut self, s: BarrierState) {
        self.vars.phase = s.phase;
        self.vars.work_done = s.work_done;
        for i in 0..self.n {
            if i != self.me.index() {
                self.vars.collected.set(ProcessId::new(i), s.collected[i]);
            }
        }
        self.pif.restore(s.pif);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_core::RequestState;
    use snapstab_sim::{Capacity, NetworkBuilder, RandomScheduler, Runner, SimRng};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(n: usize, seed: u64) -> Runner<BarrierProcess, RandomScheduler> {
        let processes = (0..n).map(|i| BarrierProcess::new(p(i), n)).collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RandomScheduler::new(), seed)
    }

    #[test]
    fn nobody_passes_until_everyone_finishes() {
        let mut r = system(3, 1);
        // P0 and P1 finish; P2 does not.
        assert!(r.process_mut(p(0)).finish_work());
        assert!(r.process_mut(p(1)).finish_work());
        r.run_steps(30_000).unwrap();
        assert_eq!(r.process(p(0)).phase(), 0, "P0 must wait for P2");
        assert_eq!(r.process(p(1)).phase(), 0);
        assert!(r.process(p(0)).is_syncing());
        // P2 finishes: everyone passes.
        assert!(r.process_mut(p(2)).finish_work());
        r.run_until(500_000, |r| (0..3).all(|i| r.process(p(i)).phase() == 1))
            .unwrap();
        for i in 0..3 {
            assert_eq!(r.process(p(i)).phase(), 1);
            assert!(!r.process(p(i)).is_syncing());
        }
    }

    #[test]
    fn repeated_phases_stay_in_lockstep() {
        let mut r = system(3, 2);
        for round in 1..=4u64 {
            for i in 0..3 {
                assert!(r.process_mut(p(i)).finish_work());
            }
            r.run_until(500_000, |r| {
                (0..3).all(|i| r.process(p(i)).phase() == round)
            })
            .unwrap();
            // Lockstep invariant: phases never differ by more than 1 along
            // the way (checked coarsely at the barrier points).
            for i in 0..3 {
                assert_eq!(r.process(p(i)).phase(), round);
            }
        }
    }

    #[test]
    fn corruption_after_a_genuine_request_cannot_fake_a_crossing() {
        // The snap-stabilization contract protects *requested*
        // synchronizations: after a genuine `finish_work`, corrupting the
        // collected table mid-wave does not let P0 pass, because the wave
        // that decides overwrites every entry with fresh replies — and P2
        // is genuinely not done.
        let mut r = system(3, 3);
        assert!(r.process_mut(p(0)).finish_work());
        r.run_steps(50).unwrap(); // the wave is in flight
        let mut s = r.process(p(0)).snapshot();
        s.collected = vec![
            None,
            Some(BarrierReply {
                phase: 0,
                done: true,
            }),
            Some(BarrierReply {
                phase: 0,
                done: true,
            }),
        ];
        r.process_mut(p(0)).restore(s);
        r.run_steps(20_000).unwrap();
        assert_eq!(
            r.process(p(0)).phase(),
            0,
            "the deciding wave refreshed the forged table; P2 is not done"
        );
        assert!(r.process(p(0)).is_syncing(), "still waiting, correctly");
    }

    #[test]
    fn fast_forward_when_behind() {
        let mut r = system(2, 4);
        // P1 sits at phase 5 (e.g. after corruption); P0 at phase 0
        // finishes its work.
        let mut s = r.process(p(1)).snapshot();
        s.phase = 5;
        s.work_done = false;
        r.process_mut(p(1)).restore(s);
        assert!(r.process_mut(p(0)).finish_work());
        r.run_until(200_000, |r| r.process(p(0)).phase() >= 5)
            .unwrap();
        assert_eq!(
            r.process(p(0)).phase(),
            5,
            "fast-forwarded to the ahead peer's phase (it certified barriers < 5)"
        );
    }

    #[test]
    fn barrier_survives_random_corruption_then_synchronizes() {
        for seed in 0..6 {
            let mut r = system(3, seed);
            let mut rng = SimRng::seed_from(seed + 40);
            for i in 0..3 {
                r.process_mut(p(i)).corrupt(&mut rng);
            }
            // Drive work perpetually; all processes must keep crossing
            // barriers together.
            let mut executed = 0;
            while executed < 120_000 {
                executed += r.run_steps(400).unwrap().steps;
                for i in 0..3 {
                    let proc = r.process_mut(p(i));
                    if !proc.is_syncing() {
                        proc.finish_work();
                    }
                }
            }
            let phases: Vec<u64> = (0..3).map(|i| r.process(p(i)).phase()).collect();
            let min = *phases.iter().min().unwrap();
            let max = *phases.iter().max().unwrap();
            assert!(
                max - min <= 1,
                "seed {seed}: phases must re-synchronize, got {phases:?}"
            );
            for i in 0..3 {
                assert!(r.process(p(i)).passes() > 2, "seed {seed}: progress");
            }
        }
    }

    #[test]
    fn finish_work_is_idempotent_while_syncing() {
        let mut r = system(2, 5);
        assert!(r.process_mut(p(0)).finish_work());
        assert!(!r.process_mut(p(0)).finish_work());
        assert_eq!(r.process(p(0)).pif.request(), RequestState::Wait);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut proc = BarrierProcess::new(p(1), 3);
        let mut rng = SimRng::seed_from(6);
        proc.corrupt(&mut rng);
        let snap = proc.snapshot();
        proc.corrupt(&mut rng);
        proc.restore(snap.clone());
        assert_eq!(proc.snapshot(), snap);
    }
}
