//! Snap-stabilizing leader election: one IDs-Learning wave names the
//! minimum-ID process — and, unlike self-stabilizing election, the *first*
//! requested election after faults is already correct.
//!
//! This is the application the mutual-exclusion protocol (Algorithm 3)
//! performs implicitly in its phase 0/1; here it is exposed directly: the
//! elected value is the smallest identity in the system, together with the
//! process that holds it.

use snapstab_core::idl::{Id, IdlCore, IdlQuery, IdlState};
use snapstab_core::pif::{PifCore, PifEvent, PifMsg, PifState};
use snapstab_core::request::RequestState;
use snapstab_sim::{ArbitraryState, Context, ProcessId, Protocol, SimRng};

/// Events of a leader-election process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LeaderEvent {
    /// An election started.
    Started,
    /// The election decided.
    Elected {
        /// The winning (minimum) identity.
        id: Id,
        /// The process holding it.
        at: ProcessId,
    },
    /// An event of the underlying PIF.
    Pif(PifEvent<IdlQuery, Id>),
}

impl From<PifEvent<IdlQuery, Id>> for LeaderEvent {
    fn from(e: PifEvent<IdlQuery, Id>) -> Self {
        LeaderEvent::Pif(e)
    }
}

/// The state projection of a leader-election process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LeaderState {
    /// The embedded IDL state.
    pub idl: IdlState,
    /// The cached election result.
    pub elected: Option<(Id, usize)>,
    /// The underlying PIF state.
    pub pif: PifState<IdlQuery, Id>,
}

/// A leader-election process.
#[derive(Clone, Debug)]
pub struct LeaderProcess {
    me: ProcessId,
    n: usize,
    idl: IdlCore,
    pif: PifCore<IdlQuery, Id>,
    /// The last completed election's result: `(leader id, leader process)`.
    elected: Option<(Id, ProcessId)>,
}

impl LeaderProcess {
    /// Creates a process with constant identity `my_id`.
    pub fn new(me: ProcessId, n: usize, my_id: Id) -> Self {
        LeaderProcess {
            me,
            n,
            idl: IdlCore::new(me, n, my_id),
            pif: PifCore::new(me, n, IdlQuery, 0),
            elected: None,
        }
    }

    /// Current request state of the election layer.
    pub fn request(&self) -> RequestState {
        self.idl.request()
    }

    /// This process's constant identity.
    pub fn my_id(&self) -> Id {
        self.idl.my_id()
    }

    /// Externally requests an election.
    pub fn request_election(&mut self) -> bool {
        self.idl.try_request()
    }

    /// The last completed election's result.
    pub fn elected(&self) -> Option<(Id, ProcessId)> {
        self.elected
    }

    /// True if the last completed election elected this process.
    pub fn is_leader(&self) -> bool {
        matches!(self.elected, Some((_, at)) if at == self.me)
    }

    fn compute_result(&self) -> (Id, ProcessId) {
        let mut best = (self.idl.my_id(), self.me);
        for i in 0..self.n {
            if i == self.me.index() {
                continue;
            }
            let q = ProcessId::new(i);
            let qid = self.idl.id_of(q);
            if qid < best.0 {
                best = (qid, q);
            }
        }
        best
    }
}

impl Protocol for LeaderProcess {
    type Msg = PifMsg<IdlQuery, Id>;
    type Event = LeaderEvent;
    type State = LeaderState;

    fn activate(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Event>) -> bool {
        let mut acted = false;
        if self.idl.action_a1(&mut self.pif, IdlQuery) {
            ctx.emit(LeaderEvent::Started);
            acted = true;
        }
        if self.idl.action_a2(&self.pif) {
            let (id, at) = self.compute_result();
            self.elected = Some((id, at));
            ctx.emit(LeaderEvent::Elected { id, at });
            acted = true;
        }
        acted |= self.pif.activate(ctx);
        acted
    }

    fn on_receive(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Event>,
    ) {
        self.pif.handle_receive(from, msg, &mut self.idl, ctx);
    }

    fn has_enabled_action(&self) -> bool {
        self.idl.has_enabled_action(&self.pif) || self.pif.has_enabled_action()
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        self.idl.corrupt(rng);
        self.pif.corrupt(rng);
        // The cached result is a variable like any other.
        self.elected = if bool::arbitrary(rng) {
            Some((Id::arbitrary(rng), ProcessId::new(rng.gen_range(0..self.n))))
        } else {
            None
        };
    }

    fn snapshot(&self) -> LeaderState {
        LeaderState {
            idl: self.idl.snapshot(),
            elected: self.elected.map(|(id, at)| (id, at.index())),
            pif: self.pif.snapshot(),
        }
    }

    fn restore(&mut self, s: LeaderState) {
        self.idl.restore(s.idl);
        self.elected = s.elected.map(|(id, at)| (id, ProcessId::new(at)));
        self.pif.restore(s.pif);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_sim::{Capacity, CorruptionPlan, NetworkBuilder, RandomScheduler, Runner};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn system(ids: &[Id], seed: u64) -> Runner<LeaderProcess, RandomScheduler> {
        let n = ids.len();
        let processes = (0..n)
            .map(|i| LeaderProcess::new(p(i), n, ids[i]))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RandomScheduler::new(), seed)
    }

    #[test]
    fn election_finds_min_and_location() {
        let mut r = system(&[42, 7, 99], 1);
        r.process_mut(p(0)).request_election();
        r.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(0)).elected(), Some((7, p(1))));
        assert!(!r.process(p(0)).is_leader());
    }

    #[test]
    fn the_leader_knows_it_is_leader() {
        let mut r = system(&[3, 8, 5], 2);
        r.process_mut(p(0)).request_election();
        r.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert!(r.process(p(0)).is_leader());
        assert_eq!(r.process(p(0)).elected(), Some((3, p(0))));
    }

    #[test]
    fn first_election_after_corruption_is_exact() {
        for seed in 0..10 {
            let mut r = system(&[400, 20, 310, 55], seed);
            let mut rng = SimRng::seed_from(seed + 9);
            CorruptionPlan::full().apply(&mut r, &mut rng);
            let _ = r.run_until(500_000, |r| r.process(p(3)).request() == RequestState::Done);
            assert!(r.process_mut(p(3)).request_election());
            r.run_until(1_000_000, |r| {
                r.process(p(3)).request() == RequestState::Done
            })
            .unwrap();
            assert_eq!(
                r.process(p(3)).elected(),
                Some((20, p(1))),
                "seed {seed}: first post-fault election must be exact"
            );
        }
    }

    #[test]
    fn all_processes_elect_the_same_leader() {
        let mut r = system(&[30, 11, 25], 4);
        for i in 0..3 {
            r.process_mut(p(i)).request_election();
        }
        r.run_until(1_000_000, |r| {
            (0..3).all(|i| r.process(p(i)).request() == RequestState::Done)
        })
        .unwrap();
        for i in 0..3 {
            assert_eq!(r.process(p(i)).elected(), Some((11, p(1))), "elector {i}");
        }
        assert!(r.process(p(1)).is_leader());
    }

    #[test]
    fn elected_event_carries_result() {
        let mut r = system(&[9, 14], 6);
        r.process_mut(p(1)).request_election();
        r.run_until(200_000, |r| r.process(p(1)).request() == RequestState::Done)
            .unwrap();
        let got: Vec<_> = r
            .trace()
            .protocol_events_of(p(1))
            .filter_map(|(_, e)| match e {
                LeaderEvent::Elected { id, at } => Some((*id, *at)),
                _ => None,
            })
            .collect();
        assert_eq!(got, vec![(9, p(0))]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut proc = LeaderProcess::new(p(1), 3, 88);
        let mut rng = SimRng::seed_from(0);
        proc.corrupt(&mut rng);
        let snap = proc.snapshot();
        proc.corrupt(&mut rng);
        proc.restore(snap.clone());
        assert_eq!(proc.snapshot(), snap);
    }
}
