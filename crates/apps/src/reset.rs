//! Snap-stabilizing global reset: a requested wave drives every process's
//! application layer through its `reset` handler, and the initiator's
//! decision certifies that all of them executed it during the wave.
//!
//! Reset is the classic remedy a *self*-stabilizing system applies after
//! detecting an inconsistency; making the reset protocol itself
//! snap-stabilizing closes the loop — even with arbitrarily corrupted
//! protocol state, a requested reset resets everybody, exactly once per
//! wave, before the initiator proceeds.

use snapstab_core::pif::{PifApp, PifCore, PifEvent, PifMsg, PifState};
use snapstab_core::request::RequestState;
use snapstab_sim::{ArbitraryState, Context, ProcessId, Protocol, SimRng};

/// The application layer a reset wave acts on.
pub trait Resettable {
    /// Re-initializes the application state. Called exactly once per
    /// received reset wave (on `receive-brd`), and once at the initiator
    /// when its own wave decides.
    fn reset(&mut self);
}

/// The reset broadcast.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ResetCmd;

impl ArbitraryState for ResetCmd {
    fn arbitrary(_rng: &mut SimRng) -> Self {
        ResetCmd
    }
}

/// The acknowledgment feedback.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ResetAck;

impl ArbitraryState for ResetAck {
    fn arbitrary(_rng: &mut SimRng) -> Self {
        ResetAck
    }
}

/// Events of a reset process.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ResetEvent {
    /// A reset computation started at this process.
    Started,
    /// This process's application was reset (by a received wave or by the
    /// local decision).
    WasReset,
    /// The initiator's wave decided: every process acknowledged its reset.
    Completed,
    /// An event of the underlying PIF.
    Pif(PifEvent<ResetCmd, ResetAck>),
}

impl From<PifEvent<ResetCmd, ResetAck>> for ResetEvent {
    fn from(e: PifEvent<ResetCmd, ResetAck>) -> Self {
        ResetEvent::Pif(e)
    }
}

/// Adapter giving the PIF upcalls access to the application.
#[derive(Clone, Debug)]
struct ResetVars<A> {
    app: A,
    /// Resets performed (instrumentation).
    resets: u64,
}

impl<A: Resettable> PifApp<ResetCmd, ResetAck> for ResetVars<A> {
    fn on_broadcast(&mut self, _from: ProcessId, _cmd: &ResetCmd) -> ResetAck {
        self.app.reset();
        self.resets += 1;
        ResetAck
    }
    fn on_feedback(&mut self, _from: ProcessId, _ack: &ResetAck) {}
}

/// The state projection of a reset process (the application state is the
/// app's own business; the protocol variables are here).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResetState {
    /// The request variable.
    pub request: RequestState,
    /// The underlying PIF state.
    pub pif: PifState<ResetCmd, ResetAck>,
}

/// A process participating in snap-stabilizing global resets, wrapping an
/// application `A`.
#[derive(Clone, Debug)]
pub struct ResetProcess<A> {
    request: RequestState,
    vars: ResetVars<A>,
    pif: PifCore<ResetCmd, ResetAck>,
}

impl<A: Resettable> ResetProcess<A> {
    /// Creates a process wrapping application `app`.
    pub fn new(me: ProcessId, n: usize, app: A) -> Self {
        ResetProcess {
            request: RequestState::Done,
            vars: ResetVars { app, resets: 0 },
            pif: PifCore::new(me, n, ResetCmd, ResetAck),
        }
    }

    /// Current request state.
    pub fn request(&self) -> RequestState {
        self.request
    }

    /// The wrapped application.
    pub fn app(&self) -> &A {
        &self.vars.app
    }

    /// Exclusive access to the wrapped application.
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.vars.app
    }

    /// Number of resets this process performed.
    pub fn resets_performed(&self) -> u64 {
        self.vars.resets
    }

    /// Externally requests a global reset.
    pub fn request_reset(&mut self) -> bool {
        self.request.try_request()
    }
}

impl<A> Protocol for ResetProcess<A>
where
    A: Resettable + Clone + std::fmt::Debug + 'static,
{
    type Msg = PifMsg<ResetCmd, ResetAck>;
    type Event = ResetEvent;
    type State = ResetState;

    fn activate(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Event>) -> bool {
        let mut acted = false;
        if self.request == RequestState::Wait {
            self.request = RequestState::In;
            self.pif.force_request(ResetCmd);
            ctx.emit(ResetEvent::Started);
            acted = true;
        }
        if self.request == RequestState::In && self.pif.request() == RequestState::Done {
            // The initiator resets itself at the decision: afterwards the
            // whole system has passed through `reset` within this wave.
            self.vars.app.reset();
            self.vars.resets += 1;
            self.request = RequestState::Done;
            ctx.emit(ResetEvent::WasReset);
            ctx.emit(ResetEvent::Completed);
            acted = true;
        }
        acted |= self.pif.activate(ctx);
        acted
    }

    fn on_receive(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Event>,
    ) {
        let before = self.vars.resets;
        self.pif.handle_receive(from, msg, &mut self.vars, ctx);
        if self.vars.resets > before {
            ctx.emit(ResetEvent::WasReset);
        }
    }

    fn has_enabled_action(&self) -> bool {
        self.request == RequestState::Wait
            || (self.request == RequestState::In && self.pif.request() == RequestState::Done)
            || self.pif.has_enabled_action()
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        self.request = RequestState::arbitrary(rng);
        self.pif.corrupt(rng);
        // The application's own corruption policy is the application's
        // business (tests corrupt it through `app_mut`).
    }

    fn snapshot(&self) -> ResetState {
        ResetState {
            request: self.request,
            pif: self.pif.snapshot(),
        }
    }

    fn restore(&mut self, s: ResetState) {
        self.request = s.request;
        self.pif.restore(s.pif);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_sim::{Capacity, CorruptionPlan, NetworkBuilder, RandomScheduler, Runner};

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// A counter that resets to zero.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Counter(u32);

    impl Resettable for Counter {
        fn reset(&mut self) {
            self.0 = 0;
        }
    }

    fn system(n: usize, seed: u64) -> Runner<ResetProcess<Counter>, RandomScheduler> {
        let processes = (0..n)
            .map(|i| ResetProcess::new(p(i), n, Counter(100 + i as u32)))
            .collect();
        let network = NetworkBuilder::new(n)
            .capacity(Capacity::Bounded(1))
            .build();
        Runner::new(processes, network, RandomScheduler::new(), seed)
    }

    #[test]
    fn reset_wave_resets_everyone() {
        let mut r = system(4, 1);
        assert!(r.process_mut(p(0)).request_reset());
        r.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        for i in 0..4 {
            assert_eq!(r.process(p(i)).app(), &Counter(0), "P{i} must be reset");
            assert!(r.process(p(i)).resets_performed() >= 1);
        }
    }

    #[test]
    fn reset_works_from_corrupted_protocol_state() {
        for seed in 0..8 {
            let mut r = system(3, seed);
            let mut rng = SimRng::seed_from(seed);
            CorruptionPlan::full().apply(&mut r, &mut rng);
            // Application state dirty again after the burst.
            for i in 0..3 {
                r.process_mut(p(i)).app_mut().0 = 999;
            }
            let _ = r.run_until(500_000, |r| r.process(p(1)).request() == RequestState::Done);
            assert!(r.process_mut(p(1)).request_reset());
            r.run_until(1_000_000, |r| {
                r.process(p(1)).request() == RequestState::Done
            })
            .unwrap();
            for i in 0..3 {
                assert_eq!(
                    r.process(p(i)).app(),
                    &Counter(0),
                    "seed {seed}: P{i} reset by the first requested wave"
                );
            }
        }
    }

    #[test]
    fn each_wave_resets_receivers_once() {
        let mut r = system(2, 3);
        r.process_mut(p(0)).request_reset();
        r.run_until(200_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(1)).resets_performed(), 1);
        r.process_mut(p(0)).request_reset();
        r.run_until(200_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        assert_eq!(r.process(p(1)).resets_performed(), 2, "one reset per wave");
    }

    #[test]
    fn was_reset_events_match_counts() {
        let mut r = system(3, 4);
        r.process_mut(p(0)).request_reset();
        r.run_until(500_000, |r| r.process(p(0)).request() == RequestState::Done)
            .unwrap();
        for i in 0..3 {
            let events = r
                .trace()
                .protocol_events_of(p(i))
                .filter(|(_, e)| matches!(e, ResetEvent::WasReset))
                .count() as u64;
            assert_eq!(events, r.process(p(i)).resets_performed(), "P{i}");
        }
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut proc = ResetProcess::new(p(0), 3, Counter(5));
        let mut rng = SimRng::seed_from(1);
        proc.corrupt(&mut rng);
        let snap = proc.snapshot();
        proc.corrupt(&mut rng);
        proc.restore(snap.clone());
        assert_eq!(proc.snapshot(), snap);
    }
}
