//! # snapstab-apps — snap-stabilizing applications of the PIF
//!
//! The paper motivates the PIF as "a basic tool allowing us to solve"
//! higher-level problems: *"many fundamental protocols, e.g., Reset,
//! Snapshot, Leader Election, and Termination Detection, can be solved
//! using a PIF-based solution"* (§4.1). The paper itself builds two such
//! applications (IDs-Learning, Mutual Exclusion); this crate completes the
//! list it names, each protocol inheriting snap-stabilization from
//! Theorem 2 by construction:
//!
//! * [`snapshot`] — collect every process's application value in one
//!   requested wave (the feedbacks of a single PIF are, by Specification
//!   1, exactly the peers' answers to *this* broadcast);
//! * [`leader`] — leader election: one IDs-Learning wave names the
//!   minimum-ID process and where it lives;
//! * [`reset`] — global application reset: every process re-initializes
//!   its application state upon the requested wave's `receive-brd`, and
//!   the initiator's decision certifies that every process did so;
//! * [`barrier`] — phase synchronization: a process passes barrier `k`
//!   only once a wave it started returned feedback `≥ k` from everyone
//!   (re-asking until stragglers catch up), so corrupted state can never
//!   fake a barrier crossing;
//! * [`termination`] — termination detection of a diffusing computation:
//!   two consecutive waves with per-process quiet bits; a `terminated`
//!   verdict certifies that no underlying step happened in any process's
//!   inter-wave window.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod leader;
pub mod reset;
pub mod snapshot;
pub mod termination;

pub use barrier::{BarrierEvent, BarrierProcess};
pub use leader::{LeaderEvent, LeaderProcess};
pub use reset::{ResetEvent, ResetProcess, Resettable};
pub use snapshot::{SnapQuery, SnapshotEvent, SnapshotProcess, SnapshotState};
pub use termination::{check_detection, DetectionVerdict, TdEvent, TdMsg, TerminationProcess};
