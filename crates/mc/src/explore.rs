//! Exhaustive breadth-first exploration of the model.
//!
//! The seed set is the *universal* arbitrary initial configuration with
//! the verified wave just started: action A1 applied to every member of
//! `I = C` (see the crate docs for why this loses no generality). From
//! the seeds, every interleaving of activations, deliveries and losses is
//! enumerated; a [`Violation`] on any transition is reported with its full
//! move sequence (the counterexample).

use std::collections::{HashMap, HashSet, VecDeque};

use snapstab_sim::SimRng;

use crate::model::{successors, McMove, Violation};
use crate::params::Params;
use crate::state::{Config, Fifo, MsgPq, MsgQp, ReqP, ReqQ};

/// Which initial configurations to seed the exploration with.
#[derive(Clone, Debug)]
pub enum SeedSet {
    /// Every initial configuration: all values of `p`'s `NeigState`, all
    /// of `q`'s variables, and all stale channel contents up to the
    /// capacity. Feasible at capacity 1 (≈ 2.5 × 10⁵ seeds for the paper's
    /// domain); the capacity-2 seed space is ≈ 10¹⁰ and must be sampled.
    Exhaustive,
    /// `count` seeds drawn uniformly from the seed space.
    Sampled {
        /// How many seeds to draw.
        count: usize,
        /// RNG seed for the draw.
        rng_seed: u64,
    },
    /// An explicit list (e.g. the canonical capacity adversary).
    Explicit(Vec<Config>),
}

/// A violating execution: a seed, the move sequence from it, and the
/// violation its last move triggered.
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// The initial configuration.
    pub seed: Config,
    /// The moves from the seed; the **last** move triggers the violation.
    pub moves: Vec<McMove>,
    /// What went wrong.
    pub violation: Violation,
    /// The configuration after the violating move.
    pub final_config: Config,
}

/// Outcome of an exploration.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Parameters explored.
    pub params: Params,
    /// Seeds enqueued.
    pub seed_count: usize,
    /// Distinct configurations reached (including seeds).
    pub states_explored: usize,
    /// True if the frontier drained before `max_states` was hit — the
    /// verdict is then *exhaustive* for the seed set.
    pub exhausted: bool,
    /// The first violation found, if any (exploration stops there).
    pub violation: Option<CounterExample>,
    /// Configurations with no applicable move and an unfinished wave
    /// (must be zero: retransmission keeps `p` enabled until the decision).
    pub deadlocks: usize,
}

impl ExploreReport {
    /// True if the protocol was verified safe over the explored space.
    pub fn verified_safe(&self) -> bool {
        self.violation.is_none() && self.deadlocks == 0
    }
}

/// Enumerates every stale `p → q` message kind.
fn all_pq_msgs(params: Params) -> Vec<MsgPq> {
    let mut v = Vec::new();
    for sender in 0..params.m {
        for echoed in 0..params.m {
            v.push(MsgPq {
                sender,
                echoed,
                genuine: false,
            });
        }
    }
    v
}

/// Enumerates every stale `q → p` message kind.
fn all_qp_msgs(params: Params) -> Vec<MsgQp> {
    let mut v = Vec::new();
    for sender in 0..params.m {
        for echoed in 0..params.m {
            v.push(MsgQp {
                sender,
                echoed,
                echo_genuine: false,
                fb_genuine: false,
            });
        }
    }
    v
}

/// Enumerates every stale channel content up to the capacity.
fn all_channels<M: Copy>(msgs: &[M], cap: usize) -> Vec<Fifo<M>> {
    let mut v = vec![Fifo::empty()];
    for &m1 in msgs {
        v.push(Fifo::from_slice(&[m1]));
    }
    if cap >= 2 {
        for &m1 in msgs {
            for &m2 in msgs {
                v.push(Fifo::from_slice(&[m1, m2]));
            }
        }
    }
    v
}

/// Enumerates the full seed space (post-A1 universal initial set).
pub fn exhaustive_seeds(params: Params) -> Vec<Config> {
    let mut seeds = Vec::new();
    let pq_channels = all_channels(&all_pq_msgs(params), params.cap);
    let qp_channels = all_channels(&all_qp_msgs(params), params.cap);
    for neig_p in 0..params.m {
        for req_q in [ReqQ::Wait, ReqQ::In, ReqQ::Done] {
            for state_q in 0..params.m {
                for neig_q in 0..params.m {
                    for pq in &pq_channels {
                        for qp in &qp_channels {
                            seeds.push(Config {
                                req_p: ReqP::In,
                                state_p: 0,
                                neig_p,
                                req_q,
                                state_q,
                                neig_q,
                                g_neig_q: false,
                                g_fmes_q: false,
                                pq: *pq,
                                qp: *qp,
                            });
                        }
                    }
                }
            }
        }
    }
    seeds
}

/// Draws one random seed.
fn sample_seed(params: Params, rng: &mut SimRng) -> Config {
    let flag = |rng: &mut SimRng| rng.gen_range(0..params.m as usize) as u8;
    let pq_len = rng.gen_range(0..params.cap + 1);
    let qp_len = rng.gen_range(0..params.cap + 1);
    let mut pq = Fifo::empty();
    for _ in 0..pq_len {
        let m = MsgPq {
            sender: flag(rng),
            echoed: flag(rng),
            genuine: false,
        };
        let _ = pq.push(m, params.cap);
    }
    let mut qp = Fifo::empty();
    for _ in 0..qp_len {
        let m = MsgQp {
            sender: flag(rng),
            echoed: flag(rng),
            echo_genuine: false,
            fb_genuine: false,
        };
        let _ = qp.push(m, params.cap);
    }
    Config {
        req_p: ReqP::In,
        state_p: 0,
        neig_p: flag(rng),
        req_q: match rng.gen_range(0..3) {
            0 => ReqQ::Wait,
            1 => ReqQ::In,
            _ => ReqQ::Done,
        },
        state_q: flag(rng),
        neig_q: flag(rng),
        g_neig_q: false,
        g_fmes_q: false,
        pq,
        qp,
    }
}

/// Materializes a seed set.
pub fn seeds_of(set: &SeedSet, params: Params) -> Vec<Config> {
    match set {
        SeedSet::Exhaustive => exhaustive_seeds(params),
        SeedSet::Sampled { count, rng_seed } => {
            let mut rng = SimRng::seed_from(*rng_seed);
            (0..*count).map(|_| sample_seed(params, &mut rng)).collect()
        }
        SeedSet::Explicit(v) => v.clone(),
    }
}

/// Exhaustive BFS from `seed_set` under `params`.
///
/// Stops at the first violation (returning its counterexample path) or
/// when the frontier drains; `max_states` bounds memory — if hit, the
/// report's `exhausted` is `false` and the verdict is only partial.
pub fn explore(params: Params, seed_set: &SeedSet, max_states: usize) -> ExploreReport {
    let seeds = seeds_of(seed_set, params);
    let seed_count = seeds.len();
    let mut visited: HashSet<u64> = HashSet::with_capacity(seeds.len() * 4);
    // parent: state -> (predecessor, move). Seeds have no entry.
    let mut parent: HashMap<u64, (u64, McMove)> = HashMap::new();
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut deadlocks = 0usize;

    for s in &seeds {
        let code = s.pack(params);
        if visited.insert(code) {
            queue.push_back(code);
        }
    }

    let reconstruct = |code: u64,
                       mv: McMove,
                       violation: Violation,
                       final_config: Config,
                       parent: &HashMap<u64, (u64, McMove)>|
     -> CounterExample {
        let mut moves = vec![mv];
        let mut cur = code;
        while let Some(&(prev, pmv)) = parent.get(&cur) {
            moves.push(pmv);
            cur = prev;
        }
        moves.reverse();
        CounterExample {
            seed: Config::unpack(cur, params),
            moves,
            violation,
            final_config,
        }
    };

    while let Some(code) = queue.pop_front() {
        let config = Config::unpack(code, params);
        let succ = successors(&config, params);
        if succ.is_empty() && config.req_p != ReqP::Done {
            deadlocks += 1;
        }
        for (mv, step) in succ {
            if let Some(v) = step.violation {
                let cex = reconstruct(code, mv, v, step.next, &parent);
                return ExploreReport {
                    params,
                    seed_count,
                    states_explored: visited.len(),
                    exhausted: false,
                    violation: Some(cex),
                    deadlocks,
                };
            }
            let next_code = step.next.pack(params);
            if visited.len() >= max_states && !visited.contains(&next_code) {
                // Memory bound hit: report a partial, violation-free result.
                return ExploreReport {
                    params,
                    seed_count,
                    states_explored: visited.len(),
                    exhausted: false,
                    violation: None,
                    deadlocks,
                };
            }
            if visited.insert(next_code) {
                parent.insert(next_code, (code, mv));
                queue.push_back(next_code);
            }
        }
    }

    ExploreReport {
        params,
        seed_count,
        states_explored: visited.len(),
        exhausted: true,
        violation: None,
        deadlocks,
    }
}

/// Like [`explore`], but also returns the full reachable set (for the
/// termination analysis). Only meaningful when no violation occurs.
pub fn explore_collect(
    params: Params,
    seed_set: &SeedSet,
    max_states: usize,
) -> (ExploreReport, HashSet<u64>) {
    let seeds = seeds_of(seed_set, params);
    let seed_count = seeds.len();
    let mut visited: HashSet<u64> = HashSet::with_capacity(seeds.len() * 4);
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut deadlocks = 0usize;
    let mut violation = None;

    for s in &seeds {
        let code = s.pack(params);
        if visited.insert(code) {
            queue.push_back(code);
        }
    }

    'bfs: while let Some(code) = queue.pop_front() {
        let config = Config::unpack(code, params);
        let succ = successors(&config, params);
        if succ.is_empty() && config.req_p != ReqP::Done {
            deadlocks += 1;
        }
        for (mv, step) in succ {
            if let Some(v) = step.violation {
                violation = Some(CounterExample {
                    seed: config,
                    moves: vec![mv],
                    violation: v,
                    final_config: step.next,
                });
                break 'bfs;
            }
            let next_code = step.next.pack(params);
            if visited.len() >= max_states && !visited.contains(&next_code) {
                return (
                    ExploreReport {
                        params,
                        seed_count,
                        states_explored: visited.len(),
                        exhausted: false,
                        violation: None,
                        deadlocks,
                    },
                    visited,
                );
            }
            if visited.insert(next_code) {
                queue.push_back(next_code);
            }
        }
    }

    let exhausted = violation.is_none();
    (
        ExploreReport {
            params,
            seed_count,
            states_explored: visited.len(),
            exhausted,
            violation,
            deadlocks,
        },
        visited,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_seed_count_matches_the_formula() {
        let params = Params::paper();
        let seeds = exhaustive_seeds(params);
        // neig_p(5) × req_q(3) × state_q(5) × neig_q(5) × pq(1+25) × qp(1+25)
        assert_eq!(seeds.len(), 5 * 3 * 5 * 5 * 26 * 26);
    }

    #[test]
    fn seeds_are_distinct_after_packing() {
        let params = Params::new(3, 1);
        let seeds = exhaustive_seeds(params);
        let codes: HashSet<u64> = seeds.iter().map(|s| s.pack(params)).collect();
        assert_eq!(codes.len(), seeds.len());
    }

    #[test]
    fn sampled_seeds_are_in_the_seed_space() {
        let params = Params::new(5, 2);
        for s in seeds_of(
            &SeedSet::Sampled {
                count: 50,
                rng_seed: 3,
            },
            params,
        ) {
            assert_eq!(s.req_p, ReqP::In);
            assert_eq!(s.state_p, 0);
            assert!(!s.g_neig_q && !s.g_fmes_q);
            assert!(s.pq.iter().all(|m| !m.genuine));
            assert!(s.qp.iter().all(|m| !m.echo_genuine && !m.fb_genuine));
        }
    }

    #[test]
    fn tiny_domain_violation_is_found_with_a_short_path() {
        // m = 3 (max = 2): one stale echo + the corrupted NeigState beat
        // two increments easily.
        let report = explore(Params::new(3, 1), &SeedSet::Exhaustive, 10_000_000);
        let cex = report.violation.expect("m = 3 must break");
        assert!(!cex.moves.is_empty());
        // Replay the counterexample and confirm the violation fires.
        let mut c = cex.seed;
        let mut seen = None;
        for (i, &mv) in cex.moves.iter().enumerate() {
            let step = crate::model::apply(&c, mv, Params::new(3, 1))
                .unwrap_or_else(|| panic!("move {i} inapplicable in replay"));
            c = step.next;
            if let Some(v) = step.violation {
                seen = Some(v);
                assert_eq!(i, cex.moves.len() - 1, "violation on the last move");
            }
        }
        assert_eq!(seen, Some(cex.violation));
        assert_eq!(c, cex.final_config);
    }

    #[test]
    fn explicit_seed_exploration_is_bounded_and_clean() {
        let params = Params::paper();
        let seed = Config {
            req_p: ReqP::In,
            state_p: 0,
            neig_p: 0,
            req_q: ReqQ::Done,
            state_q: 4,
            neig_q: 4,
            g_neig_q: false,
            g_fmes_q: false,
            pq: Fifo::empty(),
            qp: Fifo::empty(),
        };
        let report = explore(params, &SeedSet::Explicit(vec![seed]), 1_000_000);
        assert!(report.exhausted);
        assert!(report.verified_safe());
        // From the quiet seed: p retransmits, q echoes, four increments,
        // decision — a small graph.
        assert!(report.states_explored < 2_000, "{}", report.states_explored);
    }

    #[test]
    fn max_states_bound_reports_partial() {
        let report = explore(Params::paper(), &SeedSet::Exhaustive, 1_000);
        assert!(!report.exhausted);
        assert!(report.states_explored >= 1_000);
    }
}
