//! The model configuration and its packed `u64` representation.

use crate::params::Params;

/// A message in flight from `p` (the verified initiator) to `q`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MsgPq {
    /// `State_p[q]` as carried by the message (`sender_state`).
    pub sender: u8,
    /// `NeigState_p[q]` as carried (`echoed_state`).
    pub echoed: u8,
    /// Ghost bit: `true` iff `p` sent this message after its start (action
    /// A1 of the verified wave). Initial-configuration messages are stale
    /// (`false`).
    pub genuine: bool,
}

/// A message in flight from `q` to `p`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MsgQp {
    /// `State_q[p]` as carried.
    pub sender: u8,
    /// `NeigState_q[p]` as carried — the echo that drives `p`'s increments.
    pub echoed: u8,
    /// Ghost bit: `true` iff the echoed value derives from a post-start
    /// message of `p` (i.e. `NeigState_q[p]` was last written by a genuine
    /// delivery when `q` sent this message).
    pub echo_genuine: bool,
    /// Ghost bit: `true` iff `F-Mes_q[p]` derived from a genuine broadcast
    /// of `p` when `q` sent this message (the `receive-brd` that computed
    /// it consumed a genuine message).
    pub fb_genuine: bool,
}

/// `p`'s request variable in the model. The wave under verification has
/// already started (action A1 is applied to every seed — see the module
/// docs of [`crate`] for why this is without loss of generality), so
/// `Wait` never occurs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReqP {
    /// Mid-wave.
    In,
    /// Decided.
    Done,
}

/// `q`'s request variable (arbitrary at initialization).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReqQ {
    /// A request is pending at `q` (it will start its own wave).
    Wait,
    /// `q` is mid-wave (possibly never started — a corrupted state).
    In,
    /// `q` is idle.
    Done,
}

/// A fixed-capacity FIFO of at most 2 messages (the supported capacities).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fifo<M: Copy> {
    slots: [Option<M>; 2],
    len: u8,
}

impl<M: Copy> Fifo<M> {
    /// The empty FIFO.
    pub fn empty() -> Self {
        Fifo {
            slots: [None, None],
            len: 0,
        }
    }

    /// Builds from a head-first slice.
    ///
    /// # Panics
    ///
    /// Panics if more than 2 messages are given.
    pub fn from_slice(msgs: &[M]) -> Self {
        assert!(msgs.len() <= 2, "model channels hold at most 2 messages");
        let mut f = Fifo::empty();
        for &m in msgs {
            f.slots[f.len as usize] = Some(m);
            f.len += 1;
        }
        f
    }

    /// Number of messages in flight.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The head message, if any.
    pub fn head(&self) -> Option<M> {
        self.slots[0]
    }

    /// Removes and returns the head.
    pub fn pop(&mut self) -> Option<M> {
        let h = self.slots[0]?;
        self.slots[0] = self.slots[1];
        self.slots[1] = None;
        self.len -= 1;
        Some(h)
    }

    /// Appends `m` if capacity (`cap`) allows; returns `false` (drop-on-
    /// full, the §4 rule) otherwise.
    pub fn push(&mut self, m: M, cap: usize) -> bool {
        if (self.len as usize) < cap {
            self.slots[self.len as usize] = Some(m);
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Head-first contents.
    pub fn iter(&self) -> impl Iterator<Item = M> + '_ {
        self.slots.iter().filter_map(|s| *s)
    }
}

/// One configuration of the 2-process model: both processes' protocol
/// variables, `q`'s ghost provenance bits, and both channel contents.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Config {
    /// `p`'s request variable.
    pub req_p: ReqP,
    /// `State_p[q]`.
    pub state_p: u8,
    /// `NeigState_p[q]`.
    pub neig_p: u8,
    /// `q`'s request variable.
    pub req_q: ReqQ,
    /// `State_q[p]`.
    pub state_q: u8,
    /// `NeigState_q[p]`.
    pub neig_q: u8,
    /// Ghost: `NeigState_q[p]` was last written by a genuine delivery.
    pub g_neig_q: bool,
    /// Ghost: `F-Mes_q[p]` derives from a genuine broadcast.
    pub g_fmes_q: bool,
    /// The channel `p → q`.
    pub pq: Fifo<MsgPq>,
    /// The channel `q → p`.
    pub qp: Fifo<MsgQp>,
}

fn pack_msg_pq(m: &MsgPq, params: Params) -> u64 {
    (u64::from(m.sender) * u64::from(params.m) + u64::from(m.echoed)) * 2 + m.genuine as u64
}

fn unpack_msg_pq(v: u64, params: Params) -> MsgPq {
    let genuine = v % 2 == 1;
    let rest = v / 2;
    MsgPq {
        sender: (rest / u64::from(params.m)) as u8,
        echoed: (rest % u64::from(params.m)) as u8,
        genuine,
    }
}

fn pack_msg_qp(m: &MsgQp, params: Params) -> u64 {
    ((u64::from(m.sender) * u64::from(params.m) + u64::from(m.echoed)) * 2 + m.echo_genuine as u64)
        * 2
        + m.fb_genuine as u64
}

fn unpack_msg_qp(v: u64, params: Params) -> MsgQp {
    let fb_genuine = v % 2 == 1;
    let v = v / 2;
    let echo_genuine = v % 2 == 1;
    let rest = v / 2;
    MsgQp {
        sender: (rest / u64::from(params.m)) as u8,
        echoed: (rest % u64::from(params.m)) as u8,
        echo_genuine,
        fb_genuine,
    }
}

fn pack_fifo<M: Copy>(f: &Fifo<M>, kinds: u64, pack: impl Fn(&M) -> u64) -> u64 {
    // Encoding: 0 = empty; 1 + k = one message of kind k;
    // 1 + kinds + head_kind * kinds + second_kind = two messages.
    match f.len() {
        0 => 0,
        1 => 1 + pack(&f.head().expect("len 1")),
        2 => {
            let msgs: Vec<u64> = f.iter().map(|m| pack(&m)).collect();
            1 + kinds + msgs[0] * kinds + msgs[1]
        }
        _ => unreachable!("fifo holds at most 2"),
    }
}

fn unpack_fifo<M: Copy>(v: u64, kinds: u64, unpack: impl Fn(u64) -> M) -> Fifo<M> {
    if v == 0 {
        Fifo::empty()
    } else if v <= kinds {
        Fifo::from_slice(&[unpack(v - 1)])
    } else {
        let rest = v - 1 - kinds;
        Fifo::from_slice(&[unpack(rest / kinds), unpack(rest % kinds)])
    }
}

impl Config {
    /// Packs this configuration into a `u64` (mixed radix).
    pub fn pack(&self, params: Params) -> u64 {
        let m = u64::from(params.m);
        let mut v = 0u64;
        let mut push = |field: u64, radix: u64| {
            debug_assert!(field < radix, "field {field} out of radix {radix}");
            v = v * radix + field;
        };
        push(matches!(self.req_p, ReqP::Done) as u64, 2);
        push(u64::from(self.state_p), m);
        push(u64::from(self.neig_p), m);
        push(
            match self.req_q {
                ReqQ::Wait => 0,
                ReqQ::In => 1,
                ReqQ::Done => 2,
            },
            3,
        );
        push(u64::from(self.state_q), m);
        push(u64::from(self.neig_q), m);
        push(self.g_neig_q as u64, 2);
        push(self.g_fmes_q as u64, 2);
        push(
            pack_fifo(&self.pq, params.pq_msg_kinds(), |msg| {
                pack_msg_pq(msg, params)
            }),
            params.channel_kinds(params.pq_msg_kinds()),
        );
        push(
            pack_fifo(&self.qp, params.qp_msg_kinds(), |msg| {
                pack_msg_qp(msg, params)
            }),
            params.channel_kinds(params.qp_msg_kinds()),
        );
        v
    }

    /// Unpacks a configuration previously packed with the same parameters.
    pub fn unpack(mut v: u64, params: Params) -> Config {
        let m = u64::from(params.m);
        let mut pop = |radix: u64| -> u64 {
            let f = v % radix;
            v /= radix;
            f
        };
        // Pop in reverse push order.
        let qp_code = pop(params.channel_kinds(params.qp_msg_kinds()));
        let pq_code = pop(params.channel_kinds(params.pq_msg_kinds()));
        let g_fmes_q = pop(2) == 1;
        let g_neig_q = pop(2) == 1;
        let neig_q = pop(m) as u8;
        let state_q = pop(m) as u8;
        let req_q = match pop(3) {
            0 => ReqQ::Wait,
            1 => ReqQ::In,
            _ => ReqQ::Done,
        };
        let neig_p = pop(m) as u8;
        let state_p = pop(m) as u8;
        let req_p = if pop(2) == 1 { ReqP::Done } else { ReqP::In };
        Config {
            req_p,
            state_p,
            neig_p,
            req_q,
            state_q,
            neig_q,
            g_neig_q,
            g_fmes_q,
            pq: unpack_fifo(pq_code, params.pq_msg_kinds(), |c| unpack_msg_pq(c, params)),
            qp: unpack_fifo(qp_code, params.qp_msg_kinds(), |c| unpack_msg_qp(c, params)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(c: Config, params: Params) {
        let packed = c.pack(params);
        assert_eq!(Config::unpack(packed, params), c, "roundtrip for {c:?}");
    }

    #[test]
    fn pack_unpack_roundtrip_exhaustive_fields() {
        let params = Params::paper();
        for state_p in 0..5u8 {
            for neig_q in 0..5u8 {
                for req_q in [ReqQ::Wait, ReqQ::In, ReqQ::Done] {
                    roundtrip(
                        Config {
                            req_p: ReqP::In,
                            state_p,
                            neig_p: 4 - state_p,
                            req_q,
                            state_q: neig_q,
                            neig_q,
                            g_neig_q: state_p % 2 == 0,
                            g_fmes_q: neig_q % 2 == 1,
                            pq: Fifo::empty(),
                            qp: Fifo::empty(),
                        },
                        params,
                    );
                }
            }
        }
    }

    #[test]
    fn pack_unpack_with_messages() {
        let params = Params::new(7, 2);
        let pq = Fifo::from_slice(&[
            MsgPq {
                sender: 6,
                echoed: 0,
                genuine: false,
            },
            MsgPq {
                sender: 3,
                echoed: 5,
                genuine: true,
            },
        ]);
        let qp = Fifo::from_slice(&[MsgQp {
            sender: 1,
            echoed: 6,
            echo_genuine: true,
            fb_genuine: false,
        }]);
        roundtrip(
            Config {
                req_p: ReqP::Done,
                state_p: 6,
                neig_p: 2,
                req_q: ReqQ::In,
                state_q: 4,
                neig_q: 5,
                g_neig_q: true,
                g_fmes_q: true,
                pq,
                qp,
            },
            params,
        );
    }

    #[test]
    fn fifo_is_fifo() {
        let mut f: Fifo<u8> = Fifo::empty();
        assert!(f.push(1, 2));
        assert!(f.push(2, 2));
        assert!(!f.push(3, 2), "drop on full");
        assert_eq!(f.pop(), Some(1));
        assert!(f.push(3, 2));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn fifo_respects_capacity_one() {
        let mut f: Fifo<u8> = Fifo::empty();
        assert!(f.push(1, 1));
        assert!(!f.push(2, 1));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn distinct_configs_pack_distinctly() {
        let params = Params::paper();
        let base = Config {
            req_p: ReqP::In,
            state_p: 0,
            neig_p: 0,
            req_q: ReqQ::Done,
            state_q: 0,
            neig_q: 0,
            g_neig_q: false,
            g_fmes_q: false,
            pq: Fifo::empty(),
            qp: Fifo::empty(),
        };
        let mut other = base;
        other.state_p = 1;
        assert_ne!(base.pack(params), other.pack(params));
        let mut ghost = base;
        ghost.g_neig_q = true;
        assert_ne!(base.pack(params), ghost.pack(params));
    }
}
