//! Model parameters and the mixed-radix state encoding.
//!
//! A configuration of the 2-process model is packed into a single `u64`
//! so that reachability sets of tens of millions of states fit in memory.
//! The radices are derived from the flag-domain size `m` and the channel
//! capacity `cap`; [`Params::state_space_bound`] reports the product (the
//! enumeration is only attempted when it fits `u64`, which holds for every
//! supported parameterization).

/// Parameters of the model: flag-domain size and channel capacity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Params {
    /// Number of flag values (`m`): flags range over `0 ..= m-1`, the
    /// completion value is `m-1`, the broadcast-trigger value `m-2`.
    /// The paper's protocol is `m = 5`; capacity `c` requires `2c + 3`.
    pub m: u8,
    /// Channel capacity (`1` or `2`; the state space at higher capacities
    /// exceeds exhaustive reach).
    pub cap: usize,
}

impl Params {
    /// Creates parameters.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` (the handshake needs at least one increment) or
    /// `cap` is not 1 or 2 (larger capacities are out of exhaustive reach).
    pub fn new(m: u8, cap: usize) -> Self {
        assert!(m >= 2, "flag domain needs at least two values");
        assert!(
            (1..=2).contains(&cap),
            "exhaustive checking supports capacity 1 or 2"
        );
        Params { m, cap }
    }

    /// The paper's protocol at capacity 1: `m = 5`.
    pub fn paper() -> Self {
        Params::new(5, 1)
    }

    /// The completion flag value (`m − 1`, the paper's 4).
    pub fn max_flag(self) -> u8 {
        self.m - 1
    }

    /// The broadcast-trigger value (`m − 2`, the paper's 3).
    pub fn bcast_flag(self) -> u8 {
        self.m.saturating_sub(2)
    }

    /// Distinct `p → q` message kinds: `sender × echoed × genuine-bit`.
    pub fn pq_msg_kinds(self) -> u64 {
        u64::from(self.m) * u64::from(self.m) * 2
    }

    /// Distinct `q → p` message kinds:
    /// `sender × echoed × echo-genuine × feedback-genuine`.
    pub fn qp_msg_kinds(self) -> u64 {
        u64::from(self.m) * u64::from(self.m) * 4
    }

    /// Distinct channel contents for a channel of `kinds` message kinds:
    /// `1 + kinds + kinds² + …` up to the capacity.
    pub fn channel_kinds(self, kinds: u64) -> u64 {
        let mut total = 1u64;
        let mut level = 1u64;
        for _ in 0..self.cap {
            level *= kinds;
            total += level;
        }
        total
    }

    /// Upper bound on the packed state space (all radices multiplied).
    pub fn state_space_bound(self) -> u64 {
        let p_vars = 2 * u64::from(self.m) * u64::from(self.m); // req_p × state_p × neig_p
        let q_vars = 3 * u64::from(self.m) * u64::from(self.m) * 2 * 2;
        p_vars
            .saturating_mul(q_vars)
            .saturating_mul(self.channel_kinds(self.pq_msg_kinds()))
            .saturating_mul(self.channel_kinds(self.qp_msg_kinds()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params() {
        let p = Params::paper();
        assert_eq!(p.max_flag(), 4);
        assert_eq!(p.bcast_flag(), 3);
        assert_eq!(p.pq_msg_kinds(), 50);
        assert_eq!(p.qp_msg_kinds(), 100);
        assert_eq!(p.channel_kinds(50), 51);
        assert_eq!(p.channel_kinds(100), 101);
    }

    #[test]
    fn state_space_fits_u64_for_supported_params() {
        for m in 2..=9u8 {
            for cap in 1..=2usize {
                let p = Params::new(m, cap);
                assert!(p.state_space_bound() < u64::MAX / 2, "{p:?}");
            }
        }
    }

    #[test]
    fn capacity_two_channel_kinds() {
        let p = Params::new(5, 2);
        assert_eq!(p.channel_kinds(50), 1 + 50 + 2500);
    }

    #[test]
    #[should_panic(expected = "capacity 1 or 2")]
    fn capacity_three_rejected() {
        let _ = Params::new(5, 3);
    }

    #[test]
    #[should_panic(expected = "at least two values")]
    fn tiny_domain_rejected() {
        let _ = Params::new(1, 1);
    }
}
