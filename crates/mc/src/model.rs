//! The transition relation of the 2-process PIF model.
//!
//! Each move mirrors one atomic step of the simulator exactly (the
//! conformance test `tests/mc_integration.rs` replays random walks against
//! the real `PifCore` to certify the bisimulation):
//!
//! * `ActivateP` / `ActivateQ` — actions A1 + A2 in textual order;
//! * `DeliverPq` / `DeliverQp` — action A3 for the head message;
//! * `LosePq` / `LoseQp` — fair-lossy channels: the head message vanishes.
//!
//! The ghost provenance bits (never visible to the protocol) flow as
//! follows: every message `p` sends after its start is `genuine`; a
//! delivery of a genuine message at `q` makes `NeigState_q[p]`
//! genuine-derived, and if it fires `receive-brd` it makes `F-Mes_q[p]`
//! genuine-derived; `q`'s replies carry both bits. A **violation** is a
//! completion increment at `p` (the `receive-fck` that lets `p` decide)
//! whose consumed message is not genuine-derived — exactly a breach of
//! Specification 1's Correctness (stale echo: the "round trip" never
//! happened) or Decision (stale feedback: the acknowledgment is garbage).

use crate::params::Params;
use crate::state::{Config, MsgPq, MsgQp, ReqP, ReqQ};

/// One scheduler move of the model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum McMove {
    /// Activate `p` (actions A1 + A2).
    ActivateP,
    /// Activate `q`.
    ActivateQ,
    /// Deliver the head of `p → q`.
    DeliverPq,
    /// Deliver the head of `q → p`.
    DeliverQp,
    /// Lose the head of `p → q` in transit.
    LosePq,
    /// Lose the head of `q → p` in transit.
    LoseQp,
}

impl McMove {
    /// All six moves, in a fixed order.
    pub const ALL: [McMove; 6] = [
        McMove::ActivateP,
        McMove::ActivateQ,
        McMove::DeliverPq,
        McMove::DeliverQp,
        McMove::LosePq,
        McMove::LoseQp,
    ];
}

/// A safety violation detected on a transition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Violation {
    /// `p`'s completing increment consumed an echo that does not derive
    /// from any post-start message of `p`: the causal round trip of
    /// Lemma 4 never happened.
    StaleEcho,
    /// `p`'s completing increment consumed a feedback value computed from
    /// a stale broadcast: the decision counts garbage (breach of
    /// Specification 1's Decision property).
    StaleFeedback,
}

/// Result of applying a move: the successor (if the move was applicable
/// and changed anything) and any violation it triggered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Step {
    /// The successor configuration.
    pub next: Config,
    /// A violation triggered by this step, if any.
    pub violation: Option<Violation>,
}

/// Applies `mv` to `config`. Returns `None` if the move is inapplicable
/// (empty channel) or a guaranteed no-op (activating a process with no
/// enabled action), keeping the transition graph free of self-loops.
pub fn apply(config: &Config, mv: McMove, params: Params) -> Option<Step> {
    let max = params.max_flag();
    let bcast = params.bcast_flag();
    let mut c = *config;
    let mut violation = None;
    match mv {
        McMove::ActivateP => {
            // A1 never fires here (the wave already started: ReqP has no
            // Wait state); A2 fires while In.
            if c.req_p != ReqP::In {
                return None;
            }
            if c.state_p == max {
                c.req_p = ReqP::Done; // the decision
            } else {
                // Retransmit to q (drop-on-full).
                let msg = MsgPq {
                    sender: c.state_p,
                    echoed: c.neig_p,
                    genuine: true,
                };
                let _ = c.pq.push(msg, params.cap);
            }
        }
        McMove::ActivateQ => {
            // q's A1: Wait → In, reset its flag.
            let mut acted = false;
            if c.req_q == ReqQ::Wait {
                c.req_q = ReqQ::In;
                c.state_q = 0;
                acted = true;
            }
            // q's A2.
            if c.req_q == ReqQ::In {
                if c.state_q == max {
                    c.req_q = ReqQ::Done;
                } else {
                    let msg = MsgQp {
                        sender: c.state_q,
                        echoed: c.neig_q,
                        echo_genuine: c.g_neig_q,
                        fb_genuine: c.g_fmes_q,
                    };
                    let _ = c.qp.push(msg, params.cap);
                }
                acted = true;
            }
            if !acted {
                return None;
            }
        }
        McMove::DeliverPq => {
            let msg = c.pq.pop()?;
            // q's A3. (1) receive-brd: first sight of p's flag at bcast.
            if c.neig_q != bcast && msg.sender == bcast {
                c.g_fmes_q = msg.genuine;
            }
            // (2) NeigState update.
            c.neig_q = msg.sender;
            c.g_neig_q = msg.genuine;
            // (3) echo check: q's own wave progresses.
            if c.state_q == msg.echoed && c.state_q < max {
                c.state_q += 1;
            }
            // (4) reply while p is still waving.
            if msg.sender < max {
                let reply = MsgQp {
                    sender: c.state_q,
                    echoed: c.neig_q,
                    echo_genuine: c.g_neig_q,
                    fb_genuine: c.g_fmes_q,
                };
                let _ = c.qp.push(reply, params.cap);
            }
        }
        McMove::DeliverQp => {
            let msg = c.qp.pop()?;
            // p's A3. (1) receive-brd at p (no ghost tracked for p's view
            // of q's wave — q's waves are not under verification).
            // (2) NeigState update.
            c.neig_p = msg.sender;
            // (3) echo check — the verified increment.
            if c.state_p == msg.echoed && c.state_p < max {
                c.state_p += 1;
                if c.state_p == max && c.req_p == ReqP::In {
                    // The receive-fck that will let p decide: both ghost
                    // bits must certify genuineness.
                    if !msg.echo_genuine {
                        violation = Some(Violation::StaleEcho);
                    } else if !msg.fb_genuine {
                        violation = Some(Violation::StaleFeedback);
                    }
                }
            }
            // (4) reply while q is still waving.
            if msg.sender < max {
                let reply = MsgPq {
                    sender: c.state_p,
                    echoed: c.neig_p,
                    genuine: true,
                };
                let _ = c.pq.push(reply, params.cap);
            }
        }
        McMove::LosePq => {
            c.pq.pop()?;
        }
        McMove::LoseQp => {
            c.qp.pop()?;
        }
    }
    Some(Step { next: c, violation })
}

/// All applicable successor steps of `config`, paired with their moves.
pub fn successors(config: &Config, params: Params) -> Vec<(McMove, Step)> {
    McMove::ALL
        .iter()
        .filter_map(|&mv| apply(config, mv, params).map(|s| (mv, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Fifo;

    fn params() -> Params {
        Params::paper()
    }

    fn quiet() -> Config {
        Config {
            req_p: ReqP::In,
            state_p: 0,
            neig_p: 0,
            req_q: ReqQ::Done,
            state_q: 4,
            neig_q: 4,
            g_neig_q: false,
            g_fmes_q: false,
            pq: Fifo::empty(),
            qp: Fifo::empty(),
        }
    }

    #[test]
    fn activate_p_retransmits_while_in() {
        let c = quiet();
        let s = apply(&c, McMove::ActivateP, params()).expect("applicable");
        assert_eq!(s.next.pq.len(), 1);
        let msg = s.next.pq.head().expect("sent");
        assert_eq!((msg.sender, msg.echoed, msg.genuine), (0, 0, true));
    }

    #[test]
    fn activate_p_decides_at_max() {
        let mut c = quiet();
        c.state_p = 4;
        let s = apply(&c, McMove::ActivateP, params()).expect("applicable");
        assert_eq!(s.next.req_p, ReqP::Done);
        assert!(
            s.violation.is_none(),
            "the decision itself is not the violation"
        );
    }

    #[test]
    fn activate_p_noop_when_done() {
        let mut c = quiet();
        c.req_p = ReqP::Done;
        assert!(apply(&c, McMove::ActivateP, params()).is_none());
    }

    #[test]
    fn activate_q_starts_a_pending_wave() {
        let mut c = quiet();
        c.req_q = ReqQ::Wait;
        c.state_q = 3;
        let s = apply(&c, McMove::ActivateQ, params()).expect("applicable");
        assert_eq!(s.next.req_q, ReqQ::In);
        assert_eq!(s.next.state_q, 0, "A1 reset");
        assert_eq!(s.next.qp.len(), 1, "A2 sent");
    }

    #[test]
    fn deliver_qp_increments_on_matching_echo() {
        let mut c = quiet();
        c.qp = Fifo::from_slice(&[MsgQp {
            sender: 0,
            echoed: 0,
            echo_genuine: false,
            fb_genuine: false,
        }]);
        let s = apply(&c, McMove::DeliverQp, params()).expect("applicable");
        assert_eq!(s.next.state_p, 1);
        assert!(
            s.violation.is_none(),
            "non-completing increments carry no verdict"
        );
        assert_eq!(s.next.pq.len(), 1, "replied: sender 0 < max");
    }

    #[test]
    fn completing_on_stale_echo_is_a_violation() {
        let mut c = quiet();
        c.state_p = 3;
        c.qp = Fifo::from_slice(&[MsgQp {
            sender: 4,
            echoed: 3,
            echo_genuine: false,
            fb_genuine: true,
        }]);
        let s = apply(&c, McMove::DeliverQp, params()).expect("applicable");
        assert_eq!(s.next.state_p, 4);
        assert_eq!(s.violation, Some(Violation::StaleEcho));
    }

    #[test]
    fn completing_on_stale_feedback_is_a_violation() {
        let mut c = quiet();
        c.state_p = 3;
        c.qp = Fifo::from_slice(&[MsgQp {
            sender: 4,
            echoed: 3,
            echo_genuine: true,
            fb_genuine: false,
        }]);
        let s = apply(&c, McMove::DeliverQp, params()).expect("applicable");
        assert_eq!(s.violation, Some(Violation::StaleFeedback));
    }

    #[test]
    fn completing_genuinely_is_clean() {
        let mut c = quiet();
        c.state_p = 3;
        c.qp = Fifo::from_slice(&[MsgQp {
            sender: 4,
            echoed: 3,
            echo_genuine: true,
            fb_genuine: true,
        }]);
        let s = apply(&c, McMove::DeliverQp, params()).expect("applicable");
        assert_eq!(s.next.state_p, 4);
        assert!(s.violation.is_none());
    }

    #[test]
    fn deliver_pq_fires_receive_brd_and_tracks_ghosts() {
        let mut c = quiet();
        c.req_q = ReqQ::Done;
        c.neig_q = 0;
        c.pq = Fifo::from_slice(&[MsgPq {
            sender: 3,
            echoed: 4,
            genuine: true,
        }]);
        let s = apply(&c, McMove::DeliverPq, params()).expect("applicable");
        assert_eq!(s.next.neig_q, 3);
        assert!(s.next.g_neig_q);
        assert!(s.next.g_fmes_q, "receive-brd consumed a genuine broadcast");
        assert_eq!(s.next.qp.len(), 1, "replied");
        let reply = s.next.qp.head().expect("reply");
        assert!(reply.echo_genuine && reply.fb_genuine);
        assert_eq!(reply.echoed, 3);
    }

    #[test]
    fn receive_brd_does_not_refire_when_neig_already_bcast() {
        // The poison scenario: NeigState_q already 3 (stale), so a genuine
        // flag-3 message does NOT rewrite F-Mes — g_fmes stays stale.
        let mut c = quiet();
        c.neig_q = 3;
        c.g_neig_q = false;
        c.g_fmes_q = false;
        c.pq = Fifo::from_slice(&[MsgPq {
            sender: 3,
            echoed: 4,
            genuine: true,
        }]);
        let s = apply(&c, McMove::DeliverPq, params()).expect("applicable");
        assert!(s.next.g_neig_q, "NeigState is now genuine-derived");
        assert!(
            !s.next.g_fmes_q,
            "but F-Mes still derives from the stale brd"
        );
    }

    #[test]
    fn loss_moves_discard_heads() {
        let mut c = quiet();
        c.pq = Fifo::from_slice(&[MsgPq {
            sender: 0,
            echoed: 0,
            genuine: false,
        }]);
        let s = apply(&c, McMove::LosePq, params()).expect("applicable");
        assert!(s.next.pq.is_empty());
        assert!(apply(&s.next, McMove::LosePq, params()).is_none());
    }

    #[test]
    fn drop_on_full_in_replies() {
        let mut c = quiet();
        c.qp = Fifo::from_slice(&[MsgQp {
            sender: 0,
            echoed: 4,
            echo_genuine: false,
            fb_genuine: false,
        }]);
        // p replies to sender 0 < max, but we refill qp first? qp is empty
        // after pop; the reply goes to pq. Fill pq to the brim instead.
        c.pq = Fifo::from_slice(&[MsgPq {
            sender: 0,
            echoed: 0,
            genuine: false,
        }]);
        let s = apply(&c, McMove::DeliverQp, params()).expect("applicable");
        assert_eq!(s.next.pq.len(), 1, "reply dropped on full channel (cap 1)");
        assert!(
            !s.next.pq.head().expect("head").genuine,
            "the stale head survived"
        );
    }

    #[test]
    fn successors_exclude_inapplicable_moves() {
        let c = quiet();
        let succ = successors(&c, params());
        let moves: Vec<McMove> = succ.iter().map(|(m, _)| *m).collect();
        assert_eq!(moves, vec![McMove::ActivateP], "{moves:?}");
    }
}
