//! Possible-termination analysis: from every reachable configuration,
//! some execution decides the wave.
//!
//! Specification 1's Termination property says every wave terminates under
//! the fairness assumptions. The graph-level counterpart checked here is
//! **possible termination**: every reachable configuration has *some* path
//! to `Request_p = Done`. Its failure would exhibit a reachable sink
//! component from which no scheduler — however kind — could ever finish
//! the wave (a deadlock or an inescapable livelock); its success, combined
//! with `p`'s unconditional retransmission (action A2 keeps `p` enabled
//! until the decision), is what the paper's fairness hypotheses convert
//! into the almost-sure termination the experiments measure.

use std::collections::HashSet;

use crate::model::successors;
use crate::params::Params;
use crate::state::{Config, ReqP};

/// Outcome of the possible-termination analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TerminationReport {
    /// Reachable configurations analyzed.
    pub states: usize,
    /// Configurations already decided (`Request_p = Done`).
    pub decided: usize,
    /// Configurations from which a decision is reachable.
    pub can_terminate: usize,
    /// Configurations from which **no** path decides — must be zero.
    pub stuck: usize,
    /// Fixpoint sweeps executed.
    pub sweeps: usize,
}

impl TerminationReport {
    /// True if every reachable configuration can still terminate.
    pub fn holds(&self) -> bool {
        self.stuck == 0
    }
}

/// Computes possible termination over `reachable` (a set produced by
/// [`crate::explore::explore_collect`]).
///
/// Fixpoint: `good₀` = decided configurations; `goodₖ₊₁` adds every
/// configuration with a successor in `goodₖ`; `stuck` = reachable \ good∞.
///
/// `reachable` must be **successor-closed** (an *exhausted*, violation-free
/// exploration): paths through states missing from the set cannot be seen,
/// so a truncated set reports spurious `stuck` states.
pub fn possible_termination(params: Params, reachable: &HashSet<u64>) -> TerminationReport {
    let mut good: HashSet<u64> = HashSet::new();
    let mut pending: Vec<u64> = Vec::new();
    for &code in reachable {
        let c = Config::unpack(code, params);
        if c.req_p == ReqP::Done {
            good.insert(code);
        } else {
            pending.push(code);
        }
    }
    let decided = good.len();

    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        let before = pending.len();
        pending.retain(|&code| {
            let c = Config::unpack(code, params);
            let escapes = successors(&c, params)
                .into_iter()
                .any(|(_, step)| good.contains(&step.next.pack(params)));
            if escapes {
                good.insert(code);
                false
            } else {
                true
            }
        });
        if pending.len() == before {
            break;
        }
    }

    TerminationReport {
        states: reachable.len(),
        decided,
        can_terminate: good.len(),
        stuck: pending.len(),
        sweeps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore_collect, SeedSet};

    #[test]
    fn termination_holds_on_a_sampled_subspace() {
        let params = Params::paper();
        let (report, reachable) = explore_collect(
            params,
            &SeedSet::Sampled {
                count: 300,
                rng_seed: 9,
            },
            5_000_000,
        );
        assert!(report.verified_safe(), "{report:?}");
        assert!(report.exhausted);
        let term = possible_termination(params, &reachable);
        assert!(term.holds(), "{term:?}");
        assert_eq!(term.can_terminate, term.states);
    }

    #[test]
    fn termination_holds_exhaustively_from_empty_channel_seeds() {
        // Every corrupted-variable seed with empty channels, closed under
        // all moves: a fully enumerable, successor-closed subspace.
        let params = Params::paper();
        let mut seeds = Vec::new();
        for neig_p in 0..5u8 {
            for req_q in [
                crate::state::ReqQ::Wait,
                crate::state::ReqQ::In,
                crate::state::ReqQ::Done,
            ] {
                for state_q in 0..5u8 {
                    for neig_q in 0..5u8 {
                        seeds.push(crate::state::Config {
                            req_p: crate::state::ReqP::In,
                            state_p: 0,
                            neig_p,
                            req_q,
                            state_q,
                            neig_q,
                            g_neig_q: false,
                            g_fmes_q: false,
                            pq: crate::state::Fifo::empty(),
                            qp: crate::state::Fifo::empty(),
                        });
                    }
                }
            }
        }
        let (report, reachable) = explore_collect(params, &SeedSet::Explicit(seeds), 10_000_000);
        assert!(report.exhausted, "{report:?}");
        assert!(report.verified_safe(), "{report:?}");
        let term = possible_termination(params, &reachable);
        assert!(term.holds(), "{term:?}");
        assert!(term.decided > 0, "some executions decided");
    }
}
