//! The live chaos engine and the self-healing supervisor.
//!
//! Snap-stabilization (Definition 1) promises the specification from
//! *any* configuration — which includes configurations a transient fault
//! creates **mid-run**, not just corrupted starts. This module makes that
//! claim executable against a *running* service:
//!
//! * [`ChaosPlan`] — a seeded schedule of fault bursts with quiet
//!   periods, grouped into named mixes ([`ChaosMix`]).
//! * [`ChaosEngine`] — injects the bursts into a live backend (any
//!   [`RuntimeBackend`]: the thread-per-process [`crate::LiveRunner`] or
//!   the multiplexed [`crate::MuxRunner`]): worker **state corruption**
//!   (the [`Protocol::corrupt`] hook run atomically against a paused
//!   instance, marked `chaos:corrupt`), **crash storms**
//!   ([`RuntimeBackend::crash`] — a dead thread on one backend, a parked
//!   instance on the other, healed by the supervisor either way),
//!   **link partitions** with heal cycles and **drop storms**, both
//!   pushed through [`FaultPlane`] wrappers around the [`Transport`]
//!   abstraction so in-memory lanes and UDP sockets degrade identically.
//! * [`Supervisor`] — the watchdog: detects crashed workers and *wedged*
//!   ones (no effective activations within a deadline, read from the
//!   per-instance [`RuntimeBackend::activity`] counter), restarts them
//!   with **adversarially corrupted** state (marked
//!   `chaos:restart-corrupt` — a restart is a transient fault, and a
//!   snap-stabilizing protocol must not care), under bounded exponential
//!   backoff reusing the
//!   [`LiveConfig::min_backoff`]/[`LiveConfig::max_backoff`] knobs.
//! * [`ChaosHarness`] — engine + supervisor + recovery-time bookkeeping,
//!   driven from a service poll loop; [`ChaosHarness::finish`] yields the
//!   [`ChaosReport`] whose `fault_steps` are the *authoritative* fault
//!   marks that `snapstab_core::spec::analyze_me_epochs` /
//!   `analyze_forwarding_epochs` split the merged trace at.
//!
//! Every fault the engine or supervisor injects draws a global step and a
//! `chaos:`-prefixed marker; the epoch checkers reject any such marker
//! *not* vouched for by the report (forged fault marks), so the chaos
//! machinery cannot be abused to excuse genuine violations.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::Thread;
use std::time::{Duration, Instant};

use snapstab_sim::{ProcessId, Protocol, SendFate, SimRng};

use crate::link::{LaneOf, LinkStats};
use crate::runner::{LiveConfig, RuntimeBackend};
use crate::transport::{link_seed, Link, LinkMatrix, Transport};

/// Salt mixed into the runtime seed for the per-link chaos-drop RNG
/// streams, so they are independent of the transport's own loss streams.
const CHAOS_LINK_SALT: u64 = 0x5EED_0C4A_0D15_EA5E;

/// Salt for the supervisor's adversarial-restart RNG stream.
const SUPERVISOR_SALT: u64 = 0xBAD5_EED5_0F0F_5157;

/// Basis points per unit probability (the drop knob's fixed-point scale).
const BP_SCALE: u64 = 10_000;

/// A named fault mix: which burst kinds a [`ChaosPlan`] rotates through.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosMix {
    /// Mid-run worker state corruption only.
    Corrupt,
    /// Crash storms only (healed by the supervisor's corrupted restarts).
    Crash,
    /// Link partition / heal cycles only.
    Partition,
    /// Link drop storms only.
    Storm,
    /// All of the above, round-robin.
    All,
}

impl ChaosMix {
    /// Every valid profile name, in display order — the CLI's `--chaos`
    /// contract lists exactly these.
    pub const NAMES: [&'static str; 5] = ["corrupt", "crash", "partition", "storm", "all"];

    /// Parses a profile name (the CLI's `--chaos` argument).
    pub fn parse(name: &str) -> Option<ChaosMix> {
        match name {
            "corrupt" => Some(ChaosMix::Corrupt),
            "crash" => Some(ChaosMix::Crash),
            "partition" => Some(ChaosMix::Partition),
            "storm" => Some(ChaosMix::Storm),
            "all" => Some(ChaosMix::All),
            _ => None,
        }
    }

    /// The profile's name.
    pub fn as_str(&self) -> &'static str {
        match self {
            ChaosMix::Corrupt => "corrupt",
            ChaosMix::Crash => "crash",
            ChaosMix::Partition => "partition",
            ChaosMix::Storm => "storm",
            ChaosMix::All => "all",
        }
    }

    /// The burst kinds this mix rotates through.
    fn kinds(&self) -> &'static [BurstKind] {
        match self {
            ChaosMix::Corrupt => &[BurstKind::Corrupt],
            ChaosMix::Crash => &[BurstKind::Crash],
            ChaosMix::Partition => &[BurstKind::Partition],
            ChaosMix::Storm => &[BurstKind::Storm],
            ChaosMix::All => &[
                BurstKind::Corrupt,
                BurstKind::Crash,
                BurstKind::Partition,
                BurstKind::Storm,
            ],
        }
    }
}

/// One kind of fault burst.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BurstKind {
    /// Corrupt the variables of a random subset of workers.
    Corrupt,
    /// Crash a random subset of workers.
    Crash,
    /// Cut the links across a random bipartition for the disruption
    /// window, then heal.
    Partition,
    /// Raise every link's drop probability for the disruption window,
    /// then calm.
    Storm,
}

/// A seeded schedule of fault bursts with quiet periods.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Which fault kinds to inject.
    pub mix: ChaosMix,
    /// Number of bursts to fire.
    pub bursts: u32,
    /// Quiet period before the first burst and between bursts.
    pub quiet: Duration,
    /// How long a partition or storm lasts before healing.
    pub disruption: Duration,
    /// Extra per-message drop probability during a storm, in `[0, 1]`.
    /// May reach 1 — a total outage is a *transient* violation of the
    /// fair-loss assumption, restored when the storm calms.
    pub storm_drop: f64,
    /// Seed of the burst schedule, target choices and corruption draws.
    pub seed: u64,
}

impl ChaosPlan {
    /// The default profile for a mix: 3 bursts, 300 ms quiet periods,
    /// 150 ms disruptions, 80% storm drop — what `snapstab live --chaos`
    /// runs.
    pub fn profile(mix: ChaosMix, seed: u64) -> Self {
        ChaosPlan {
            mix,
            bursts: 3,
            quiet: Duration::from_millis(300),
            disruption: Duration::from_millis(150),
            storm_drop: 0.8,
            seed,
        }
    }
}

/// Mutable fault state of one directed link.
#[derive(Default)]
struct LinkFault {
    /// Partitioned: every send is destroyed.
    cut: AtomicBool,
    /// Extra in-transit drop probability in basis points (storms).
    drop_bp: AtomicU32,
    /// Messages this wrapper destroyed (partition + storm drops).
    dropped: AtomicU64,
}

/// Shared handle to the fault state of every link of a topology — the
/// chaos engine's control surface over a [`ChaosTransport`]. Cloning is
/// cheap and every clone controls the same links.
#[derive(Clone)]
pub struct FaultPlane {
    n: usize,
    faults: Arc<Vec<LinkFault>>,
}

impl FaultPlane {
    /// A healthy plane for an `n`-process topology.
    pub fn new(n: usize) -> Self {
        FaultPlane {
            n,
            faults: Arc::new((0..n * n).map(|_| LinkFault::default()).collect()),
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    fn fault(&self, from: ProcessId, to: ProcessId) -> &LinkFault {
        &self.faults[from.index() * self.n + to.index()]
    }

    /// Cuts (or restores) the directed link `from → to`.
    pub fn set_cut(&self, from: ProcessId, to: ProcessId, cut: bool) {
        self.fault(from, to).cut.store(cut, Ordering::Relaxed);
    }

    /// True if the directed link `from → to` is currently cut.
    pub fn is_cut(&self, from: ProcessId, to: ProcessId) -> bool {
        self.fault(from, to).cut.load(Ordering::Relaxed)
    }

    /// Cuts every link crossing the bipartition (`side[i]` names `i`'s
    /// side), both directions. Links within a side are untouched.
    pub fn partition(&self, side: &[bool]) {
        assert_eq!(side.len(), self.n, "one side bit per process");
        for from in 0..self.n {
            for to in 0..self.n {
                if from != to && side[from] != side[to] {
                    self.set_cut(ProcessId::new(from), ProcessId::new(to), true);
                }
            }
        }
    }

    /// Restores every cut link.
    pub fn heal(&self) {
        for f in self.faults.iter() {
            f.cut.store(false, Ordering::Relaxed);
        }
    }

    /// Raises every link's extra drop probability to `prob` (clamped to
    /// `[0, 1]`).
    pub fn storm(&self, prob: f64) {
        let bp = ((prob.clamp(0.0, 1.0) * BP_SCALE as f64) as u32).min(BP_SCALE as u32);
        for f in self.faults.iter() {
            f.drop_bp.store(bp, Ordering::Relaxed);
        }
    }

    /// Clears every link's extra drop probability.
    pub fn calm(&self) {
        for f in self.faults.iter() {
            f.drop_bp.store(0, Ordering::Relaxed);
        }
    }

    /// Total messages destroyed by partitions and storms so far.
    pub fn chaos_drops(&self) -> u64 {
        self.faults
            .iter()
            .map(|f| f.dropped.load(Ordering::Relaxed))
            .sum()
    }
}

/// A [`Link`] wrapper consulting a [`FaultPlane`] on every send: cut
/// links and storm drops destroy the message *before* it reaches the
/// inner backend, so an in-memory lane and a UDP socket degrade
/// identically. Destroyed messages are [`SendFate::LostInTransit`] — the
/// sender learns nothing, exactly the §4 fair-loss story, just with a
/// temporarily unfair adversary.
struct FaultLink<M> {
    inner: Arc<dyn Link<M>>,
    plane: FaultPlane,
    /// xorshift state for the storm-drop rolls (racy updates are fine —
    /// this stream only needs to be noise, reproducibility comes from
    /// the seeded schedule, not from per-message interleaving).
    rng: AtomicU64,
}

impl<M> FaultLink<M> {
    fn roll(&self) -> u64 {
        let mut x = self.rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.store(x, Ordering::Relaxed);
        x
    }
}

impl<M: Send + 'static> Link<M> for FaultLink<M> {
    fn from(&self) -> ProcessId {
        self.inner.from()
    }

    fn to(&self) -> ProcessId {
        self.inner.to()
    }

    fn register_receiver(&self, receiver: Thread) {
        self.inner.register_receiver(receiver);
    }

    fn send(&self, msg: M) -> SendFate {
        let fault = self.plane.fault(self.inner.from(), self.inner.to());
        let bp = fault.drop_bp.load(Ordering::Relaxed) as u64;
        if fault.cut.load(Ordering::Relaxed) || (bp > 0 && self.roll() % BP_SCALE < bp) {
            fault.dropped.fetch_add(1, Ordering::Relaxed);
            return SendFate::LostInTransit;
        }
        self.inner.send(msg)
    }

    fn try_recv(&self) -> Option<M> {
        self.inner.try_recv()
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn stats(&self) -> LinkStats {
        // The inner backend never saw the destroyed sends; account for
        // them here so the run's aggregate counters stay truthful.
        let mut s = self.inner.stats();
        let dropped = self
            .plane
            .fault(self.inner.from(), self.inner.to())
            .dropped
            .load(Ordering::Relaxed);
        s.sends += dropped;
        s.lost_in_transit += dropped;
        s
    }
}

/// A [`Transport`] decorator wrapping every link of an inner backend in a
/// fault injector controlled by one shared [`FaultPlane`] — the
/// degradation path is identical for [`crate::InMemory`] and UDP
/// backends because it sits *above* them.
pub struct ChaosTransport<'a, M> {
    inner: &'a dyn Transport<M>,
    plane: FaultPlane,
}

impl<'a, M: Send + 'static> ChaosTransport<'a, M> {
    /// Wraps `inner` for an `n`-process topology.
    pub fn new(inner: &'a dyn Transport<M>, n: usize) -> Self {
        ChaosTransport {
            inner,
            plane: FaultPlane::new(n),
        }
    }

    /// A control handle over the wrapped links.
    pub fn plane(&self) -> FaultPlane {
        self.plane.clone()
    }
}

impl<M: Send + 'static> Transport<M> for ChaosTransport<'_, M> {
    fn connect(
        &self,
        n: usize,
        config: &LiveConfig,
        lanes: Option<(usize, LaneOf<M>)>,
    ) -> std::io::Result<LinkMatrix<M>> {
        assert_eq!(n, self.plane.n, "plane sized for a different topology");
        let inner = self.inner.connect(n, config, lanes)?;
        Ok(inner
            .into_iter()
            .map(|slot| {
                slot.map(|link| {
                    let seed = link_seed(config.seed ^ CHAOS_LINK_SALT, link.from(), link.to());
                    let wrapped: Arc<dyn Link<M>> = Arc::new(FaultLink {
                        inner: link,
                        plane: self.plane.clone(),
                        rng: AtomicU64::new(seed | 1),
                    });
                    wrapped
                })
            })
            .collect())
    }
}

/// Why the supervisor intervened on a worker.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InterventionKind {
    /// The worker's thread was dead (crashed by the chaos engine or the
    /// harness).
    RestartCrashed,
    /// The worker was alive but wedged: no effective activations within
    /// the watchdog deadline. It was crashed and respawned.
    RestartWedged,
}

/// One supervisor intervention, recorded for the run report (the restart
/// itself also leaves `crash`/`restart`/`chaos:restart-corrupt` marks in
/// the trace).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Intervention {
    /// The healed worker.
    pub p: ProcessId,
    /// What the watchdog saw.
    pub kind: InterventionKind,
    /// The global step of the adversarial corruption applied before the
    /// restart (or the current step count, when corruption is off).
    pub step: u64,
}

/// Configuration of the [`Supervisor`] watchdog.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// A live worker with no effective activations for this long is
    /// declared wedged and recycled.
    pub wedge_deadline: Duration,
    /// Initial restart backoff (bounds how fast a crash-looping worker
    /// is respawned). Reused from [`LiveConfig::min_backoff`].
    pub min_backoff: Duration,
    /// Restart backoff ceiling. Reused from [`LiveConfig::max_backoff`].
    pub max_backoff: Duration,
    /// Restart with adversarially corrupted state (the default): a
    /// restart is a transient fault, and snap-stabilization must hold
    /// from whatever configuration it leaves behind.
    pub corrupt_restarts: bool,
    /// Seed of the adversarial-restart corruption stream.
    pub seed: u64,
}

impl SupervisorConfig {
    /// Derives the watchdog configuration from a run's [`LiveConfig`]:
    /// backoff knobs reused as restart backoff, a 1 s wedge deadline,
    /// corrupted restarts on.
    pub fn from_live(live: &LiveConfig) -> Self {
        SupervisorConfig {
            wedge_deadline: Duration::from_secs(1),
            min_backoff: live.min_backoff,
            max_backoff: live.max_backoff,
            corrupt_restarts: true,
            seed: live.seed ^ SUPERVISOR_SALT,
        }
    }
}

/// Per-worker watchdog state.
struct WorkerWatch {
    last_activity: u64,
    last_progress: Instant,
    backoff: Duration,
    next_restart: Instant,
}

/// The self-healing watchdog: polls every worker for crashes and wedges
/// and restarts offenders with adversarially corrupted state under
/// bounded exponential backoff. Drive it from a poll loop via
/// [`Supervisor::tick`]; it owns no thread — the loop's cadence is the
/// watchdog's resolution.
pub struct Supervisor {
    cfg: SupervisorConfig,
    rng: SimRng,
    watches: Vec<WorkerWatch>,
    interventions: Vec<Intervention>,
    fault_steps: Vec<u64>,
}

impl Supervisor {
    /// A watchdog for `n` workers.
    pub fn new(n: usize, cfg: SupervisorConfig) -> Self {
        let now = Instant::now();
        let min = cfg.min_backoff;
        Supervisor {
            rng: SimRng::seed_from(cfg.seed),
            watches: (0..n)
                .map(|_| WorkerWatch {
                    last_activity: 0,
                    last_progress: now,
                    backoff: min,
                    next_restart: now,
                })
                .collect(),
            interventions: Vec::new(),
            fault_steps: Vec::new(),
            cfg,
        }
    }

    /// Every intervention so far, chronological.
    pub fn interventions(&self) -> &[Intervention] {
        &self.interventions
    }

    /// Global steps of the adversarial corruptions this supervisor
    /// applied — authoritative fault marks for the epoch checkers.
    pub fn fault_steps(&self) -> &[u64] {
        &self.fault_steps
    }

    /// One watchdog pass: restarts crashed workers whose backoff has
    /// elapsed and recycles wedged ones. Returns the number of
    /// interventions made.
    ///
    /// Generic over the execution backend: on the thread-per-process
    /// runner "crashed" means a dead OS thread, on the mux pool it means
    /// a parked instance — either way the wedge detector reads the same
    /// per-instance activity counter.
    pub fn tick<P, B>(&mut self, runner: &mut B) -> usize
    where
        P: Protocol + Send + 'static,
        P::Msg: Send,
        P::Event: Send,
        B: RuntimeBackend<P>,
    {
        let now = Instant::now();
        let mut healed = 0;
        for i in 0..self.watches.len() {
            let p = ProcessId::new(i);
            if runner.is_crashed(p) {
                if now >= self.watches[i].next_restart {
                    self.heal(runner, p, InterventionKind::RestartCrashed, now);
                    healed += 1;
                }
            } else {
                let activity = runner.activity(p);
                let watch = &mut self.watches[i];
                if activity != watch.last_activity {
                    watch.last_activity = activity;
                    watch.last_progress = now;
                    watch.backoff = self.cfg.min_backoff;
                } else if now.duration_since(watch.last_progress) >= self.cfg.wedge_deadline {
                    // Wedged: alive but making no effective progress.
                    runner.crash(p);
                    self.heal(runner, p, InterventionKind::RestartWedged, now);
                    healed += 1;
                }
            }
        }
        healed
    }

    /// Heals one crashed worker immediately (ignoring backoff) — used by
    /// [`ChaosHarness::finish`] to leave the system fully healed.
    pub fn force_heal<P, B>(&mut self, runner: &mut B, p: ProcessId)
    where
        P: Protocol + Send + 'static,
        P::Msg: Send,
        P::Event: Send,
        B: RuntimeBackend<P>,
    {
        if runner.is_crashed(p) {
            self.heal(runner, p, InterventionKind::RestartCrashed, Instant::now());
        }
    }

    /// Flags one worker as suspected-wedged from an *external* signal:
    /// backdates its progress deadline so the next [`Supervisor::tick`]
    /// recycles it — unless the worker shows fresh activity first, which
    /// clears the suspicion through the ordinary activity check. The
    /// telemetry pipeline feeds stalled-served alerts
    /// (`snapstab_runtime::telemetry::AlertKind::StalledServed`) through
    /// here, turning monitoring cuts into an additional wedge signal.
    pub fn suspect(&mut self, p: ProcessId) {
        if let Some(past) = Instant::now().checked_sub(self.cfg.wedge_deadline) {
            self.watches[p.index()].last_progress = past;
        }
    }

    /// [`Supervisor::suspect`] applied to every watched worker — for
    /// alert sources (like a stalled global served counter) that cannot
    /// name the culprit.
    pub fn suspect_all(&mut self) {
        for i in 0..self.watches.len() {
            self.suspect(ProcessId::new(i));
        }
    }

    fn heal<P, B>(&mut self, runner: &mut B, p: ProcessId, kind: InterventionKind, now: Instant)
    where
        P: Protocol + Send + 'static,
        P::Msg: Send,
        P::Event: Send,
        B: RuntimeBackend<P>,
    {
        let step = if self.cfg.corrupt_restarts {
            // The worker is crashed, so this runs directly on the parked
            // state: corrupt it *before* the new thread sees it, and
            // vouch for the fault mark.
            let mut rng = SimRng::seed_from(self.rng.gen_u64());
            let step = runner.with_process_ctx(p, move |proc, scribe| {
                let step = scribe.mark("chaos:restart-corrupt");
                proc.corrupt(&mut rng);
                step
            });
            self.fault_steps.push(step);
            step
        } else {
            runner.step_count()
        };
        runner.restart(p);
        self.interventions.push(Intervention { p, kind, step });
        let watch = &mut self.watches[p.index()];
        watch.next_restart = now + watch.backoff;
        watch.backoff = (watch.backoff * 2).min(self.cfg.max_backoff);
        watch.last_progress = now;
        watch.last_activity = runner.activity(p);
    }
}

/// What a chaos run did to the system — fault bookkeeping for reports,
/// benches and the epoch-segmented spec checkers.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Global steps of every state corruption (engine bursts and
    /// supervisor restarts) — the *authoritative* fault marks; pass them
    /// to `analyze_me_epochs` / `analyze_forwarding_epochs`.
    pub fault_steps: Vec<u64>,
    /// Bursts actually fired.
    pub bursts_fired: u32,
    /// Workers corrupted by corrupt bursts.
    pub corruptions: u64,
    /// Workers crashed by crash bursts.
    pub crashes: u64,
    /// Partition bursts fired.
    pub partitions: u64,
    /// Storm bursts fired.
    pub storms: u64,
    /// Every supervisor intervention.
    pub interventions: Vec<Intervention>,
    /// Messages destroyed by partitions and storms.
    pub chaos_drops: u64,
    /// Per burst (in firing order, where observed): time from the burst
    /// to the next end-to-end completion — grant or delivery — the
    /// service reported. A burst so late that nothing completes after it
    /// contributes no sample.
    pub recovery: Vec<Duration>,
}

impl ChaosReport {
    /// The `q`-quantile (`0 ≤ q ≤ 1`, nearest-rank) of the recovery
    /// times, or `None` if no burst had a completion after it.
    pub fn recovery_quantile(&self, q: f64) -> Option<Duration> {
        if self.recovery.is_empty() {
            return None;
        }
        let mut sorted = self.recovery.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx.min(sorted.len() - 1)])
    }
}

/// The burst injector: walks a [`ChaosPlan`]'s schedule against a live
/// runner. Services normally drive it through [`ChaosHarness`]; it is
/// public for custom harnesses.
pub struct ChaosEngine {
    plan: ChaosPlan,
    plane: FaultPlane,
    n: usize,
    rng: SimRng,
    next_burst: Instant,
    kind_cursor: usize,
    heal_at: Option<Instant>,
    calm_at: Option<Instant>,
    fault_steps: Vec<u64>,
    bursts_fired: u32,
    corruptions: u64,
    crashes: u64,
    partitions: u64,
    storms: u64,
}

impl ChaosEngine {
    /// An engine for `n` workers over the given fault plane.
    pub fn new(plan: ChaosPlan, plane: FaultPlane, n: usize) -> Self {
        assert_eq!(plane.n(), n, "plane sized for a different topology");
        ChaosEngine {
            rng: SimRng::seed_from(plan.seed),
            next_burst: Instant::now() + plan.quiet,
            plan,
            plane,
            n,
            kind_cursor: 0,
            heal_at: None,
            calm_at: None,
            fault_steps: Vec::new(),
            bursts_fired: 0,
            corruptions: 0,
            crashes: 0,
            partitions: 0,
            storms: 0,
        }
    }

    /// Global steps of the engine's state corruptions so far.
    pub fn fault_steps(&self) -> &[u64] {
        &self.fault_steps
    }

    /// True once every burst has fired and every disruption has healed.
    pub fn done(&self) -> bool {
        self.bursts_fired >= self.plan.bursts && self.heal_at.is_none() && self.calm_at.is_none()
    }

    /// Heals any active partition/storm immediately.
    pub fn heal_now(&mut self) {
        self.plane.heal();
        self.plane.calm();
        self.heal_at = None;
        self.calm_at = None;
    }

    /// One scheduler pass: heals expired disruptions and fires the next
    /// burst when its quiet period has elapsed. Returns `true` if a
    /// burst fired.
    pub fn tick<P, B>(&mut self, runner: &mut B) -> bool
    where
        P: Protocol + Send + 'static,
        P::Msg: Send,
        P::Event: Send,
        B: RuntimeBackend<P>,
    {
        let now = Instant::now();
        if self.heal_at.is_some_and(|t| now >= t) {
            self.plane.heal();
            self.heal_at = None;
            runner.mark(ProcessId::new(0), "link:heal");
        }
        if self.calm_at.is_some_and(|t| now >= t) {
            self.plane.calm();
            self.calm_at = None;
            runner.mark(ProcessId::new(0), "link:calm");
        }
        if self.bursts_fired < self.plan.bursts && now >= self.next_burst {
            self.fire(runner, now);
            self.next_burst = now + self.plan.quiet;
            return true;
        }
        false
    }

    /// Draws `k` distinct process ids.
    fn pick(&mut self, k: usize) -> Vec<ProcessId> {
        let mut ids: Vec<usize> = (0..self.n).collect();
        // Partial Fisher–Yates: the first k slots end up uniform.
        for i in 0..k.min(self.n) {
            let j = i + self.rng.gen_range(0..self.n - i);
            ids.swap(i, j);
        }
        ids.truncate(k.min(self.n));
        ids.into_iter().map(ProcessId::new).collect()
    }

    fn fire<P, B>(&mut self, runner: &mut B, now: Instant)
    where
        P: Protocol + Send + 'static,
        P::Msg: Send,
        P::Event: Send,
        B: RuntimeBackend<P>,
    {
        let kinds = self.plan.mix.kinds();
        let kind = kinds[self.kind_cursor % kinds.len()];
        self.kind_cursor += 1;
        self.bursts_fired += 1;
        match kind {
            BurstKind::Corrupt => {
                let k = 1 + self.rng.gen_range(0..self.n);
                for p in self.pick(k) {
                    let mut rng = SimRng::seed_from(self.rng.gen_u64());
                    // Atomic w.r.t. the worker's protocol actions: the
                    // live rendering of a transient fault. Crashed
                    // workers are corrupted in their parked state.
                    let step = runner.with_process_ctx(p, move |proc, scribe| {
                        let step = scribe.mark("chaos:corrupt");
                        proc.corrupt(&mut rng);
                        step
                    });
                    self.fault_steps.push(step);
                    self.corruptions += 1;
                }
            }
            BurstKind::Crash => {
                // At most half the fleet per burst; the supervisor's
                // corrupted restarts bring them back.
                let k = 1 + self.rng.gen_range(0..self.n.div_ceil(2));
                for p in self.pick(k) {
                    if runner.crash(p) {
                        self.crashes += 1;
                    }
                }
            }
            BurstKind::Partition => {
                let mut side = vec![false; self.n];
                for s in side.iter_mut() {
                    *s = self.rng.gen_bool(0.5);
                }
                // Force both sides nonempty so links actually cut.
                let a = self.rng.gen_range(0..self.n);
                let b = (a + 1 + self.rng.gen_range(0..self.n - 1)) % self.n;
                side[a] = true;
                side[b] = false;
                self.plane.partition(&side);
                self.heal_at = Some(now + self.plan.disruption);
                self.partitions += 1;
                runner.mark(ProcessId::new(0), "link:partition");
            }
            BurstKind::Storm => {
                self.plane.storm(self.plan.storm_drop);
                self.calm_at = Some(now + self.plan.disruption);
                self.storms += 1;
                runner.mark(ProcessId::new(0), "link:storm");
            }
        }
    }
}

/// Engine + supervisor + recovery-time bookkeeping, packaged for a
/// service poll loop:
///
/// ```ignore
/// let chaos_t = ChaosTransport::new(&InMemory, n);
/// let plane = chaos_t.plane();
/// let mut runner = LiveRunner::spawn_with_transport(procs, drivers, cfg, &chaos_t)?;
/// let mut harness = ChaosHarness::new(&plan, plane, n, &cfg);
/// while !(done && harness.done(&runner)) {
///     std::thread::sleep(Duration::from_millis(2));
///     harness.tick(&mut runner, served_so_far);
/// }
/// let chaos_report = harness.finish(&mut runner);
/// ```
pub struct ChaosHarness {
    engine: ChaosEngine,
    supervisor: Supervisor,
    /// `(burst instant, completions at burst time)` awaiting recovery.
    pending_recovery: Vec<(Instant, u64)>,
    recovery: Vec<Duration>,
}

impl ChaosHarness {
    /// A harness for `n` workers: engine from `plan`, supervisor derived
    /// from the run's [`LiveConfig`] (1 s wedge deadline, corrupted
    /// restarts, backoff from the config's knobs).
    pub fn new(plan: &ChaosPlan, plane: FaultPlane, n: usize, live: &LiveConfig) -> Self {
        ChaosHarness {
            engine: ChaosEngine::new(plan.clone(), plane, n),
            supervisor: Supervisor::new(n, SupervisorConfig::from_live(live)),
            pending_recovery: Vec::new(),
            recovery: Vec::new(),
        }
    }

    /// One pass: resolve recovery samples against the service's
    /// completion counter (`completed` = grants or deliveries so far),
    /// run the engine's schedule, run the watchdog.
    pub fn tick<P, B>(&mut self, runner: &mut B, completed: u64)
    where
        P: Protocol + Send + 'static,
        P::Msg: Send,
        P::Event: Send,
        B: RuntimeBackend<P>,
    {
        let now = Instant::now();
        let mut i = 0;
        while i < self.pending_recovery.len() {
            let (at, snapshot) = self.pending_recovery[i];
            if completed > snapshot {
                self.recovery.push(now.duration_since(at));
                self.pending_recovery.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if self.engine.tick(runner) {
            self.pending_recovery.push((Instant::now(), completed));
        }
        self.supervisor.tick(runner);
    }

    /// Marks every worker suspected-wedged (see [`Supervisor::suspect`]):
    /// the next [`ChaosHarness::tick`] recycles any worker that shows no
    /// fresh activity by then. The monitored services call this when the
    /// telemetry plane raises a stalled-served alert.
    pub fn suspect_all(&mut self) {
        self.supervisor.suspect_all();
    }

    /// True once the schedule is exhausted, every disruption healed and
    /// every worker alive — the poll loop should run until this *and*
    /// its own completion condition hold, so every planned fault really
    /// lands mid-run.
    pub fn done<P, B>(&self, runner: &B) -> bool
    where
        P: Protocol + Send + 'static,
        P::Msg: Send,
        P::Event: Send,
        B: RuntimeBackend<P>,
    {
        self.engine.done() && (0..self.engine.n).all(|i| !runner.is_crashed(ProcessId::new(i)))
    }

    /// Heals everything (plane and crashed workers) and assembles the
    /// [`ChaosReport`]. Call right after the poll loop, before the
    /// backend's `stop`.
    pub fn finish<P, B>(mut self, runner: &mut B) -> ChaosReport
    where
        P: Protocol + Send + 'static,
        P::Msg: Send,
        P::Event: Send,
        B: RuntimeBackend<P>,
    {
        self.engine.heal_now();
        for i in 0..self.engine.n {
            self.supervisor.force_heal(runner, ProcessId::new(i));
        }
        let mut fault_steps = self.engine.fault_steps.clone();
        fault_steps.extend_from_slice(self.supervisor.fault_steps());
        fault_steps.sort_unstable();
        fault_steps.dedup();
        ChaosReport {
            fault_steps,
            bursts_fired: self.engine.bursts_fired,
            corruptions: self.engine.corruptions,
            crashes: self.engine.crashes,
            partitions: self.engine.partitions,
            storms: self.engine.storms,
            interventions: self.supervisor.interventions.clone(),
            chaos_drops: self.engine.plane.chaos_drops(),
            recovery: self.recovery,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::LiveRunner;
    use crate::transport::InMemory;
    use snapstab_core::idl::IdlProcess;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn chaos_mix_parse_round_trips() {
        for name in ChaosMix::NAMES {
            assert_eq!(ChaosMix::parse(name).expect("valid").as_str(), name);
        }
        assert!(ChaosMix::parse("explode").is_none());
    }

    #[test]
    fn fault_link_cut_destroys_sends_and_heal_restores() {
        let cfg = LiveConfig {
            capacity: 8,
            ..LiveConfig::default()
        };
        let chaos = ChaosTransport::new(&InMemory, 2);
        let plane = chaos.plane();
        let links = Transport::<u32>::connect(&chaos, 2, &cfg, None).expect("infallible");
        let link = links[1].as_ref().expect("0 -> 1");

        assert_eq!(link.send(1), SendFate::Enqueued);
        plane.set_cut(p(0), p(1), true);
        assert!(plane.is_cut(p(0), p(1)));
        assert_eq!(link.send(2), SendFate::LostInTransit, "cut link destroys");
        plane.heal();
        assert_eq!(link.send(3), SendFate::Enqueued);

        assert_eq!(link.try_recv(), Some(1));
        assert_eq!(link.try_recv(), Some(3), "nothing of the cut send");
        assert_eq!(plane.chaos_drops(), 1);
        // The wrapper's stats account for the destroyed send.
        let stats = link.stats();
        assert_eq!(stats.sends, 3);
        assert_eq!(stats.lost_in_transit, 1);
    }

    #[test]
    fn storm_at_full_probability_drops_everything() {
        let cfg = LiveConfig::default();
        let chaos = ChaosTransport::new(&InMemory, 2);
        let plane = chaos.plane();
        let links = Transport::<u32>::connect(&chaos, 2, &cfg, None).expect("infallible");
        let link = links[1].as_ref().expect("0 -> 1");
        plane.storm(1.0);
        for k in 0..10 {
            assert_eq!(link.send(k), SendFate::LostInTransit);
        }
        plane.calm();
        assert_eq!(link.send(99), SendFate::Enqueued);
        assert_eq!(plane.chaos_drops(), 10);
    }

    #[test]
    fn partition_cuts_only_crossing_links() {
        let plane = FaultPlane::new(3);
        plane.partition(&[true, false, true]);
        assert!(plane.is_cut(p(0), p(1)));
        assert!(plane.is_cut(p(1), p(0)));
        assert!(plane.is_cut(p(1), p(2)));
        assert!(!plane.is_cut(p(0), p(2)), "same side survives");
        plane.heal();
        assert!(!plane.is_cut(p(0), p(1)));
    }

    fn idl_fleet(n: usize) -> Vec<IdlProcess> {
        (0..n)
            .map(|i| IdlProcess::new(p(i), n, 10 + i as u64))
            .collect()
    }

    #[test]
    fn supervisor_heals_crashed_worker_with_corrupted_state() {
        let cfg = LiveConfig::default();
        let mut runner = LiveRunner::spawn(idl_fleet(3), cfg.clone());
        let mut sup = Supervisor::new(3, SupervisorConfig::from_live(&cfg));
        runner.crash(p(1));
        assert!(runner.is_crashed(p(1)));
        // Backoff starts at min_backoff (µs scale); one short sleep is
        // plenty.
        std::thread::sleep(Duration::from_millis(5));
        let healed = sup.tick(&mut runner);
        assert_eq!(healed, 1);
        assert!(!runner.is_crashed(p(1)));
        assert_eq!(sup.interventions().len(), 1);
        assert_eq!(
            sup.interventions()[0].kind,
            InterventionKind::RestartCrashed
        );
        assert_eq!(
            sup.fault_steps().len(),
            1,
            "adversarial restart recorded as an authoritative fault"
        );
        let report = runner.stop();
        let labels: Vec<&str> = report.trace.markers().map(|(_, _, l)| l).collect();
        assert!(labels.contains(&"chaos:restart-corrupt"));
        assert!(labels.contains(&"restart"));
    }

    #[test]
    fn supervisor_detects_wedged_idle_worker() {
        // An idle IDL fleet makes no effective progress: with a tiny
        // wedge deadline the watchdog must recycle every worker.
        let cfg = LiveConfig::default();
        let mut runner = LiveRunner::spawn(idl_fleet(2), cfg.clone());
        let mut sup = Supervisor::new(
            2,
            SupervisorConfig {
                wedge_deadline: Duration::from_millis(20),
                ..SupervisorConfig::from_live(&cfg)
            },
        );
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut healed = 0;
        while healed == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
            healed = sup.tick(&mut runner);
        }
        assert!(healed > 0, "watchdog never fired");
        assert!(sup
            .interventions()
            .iter()
            .any(|iv| iv.kind == InterventionKind::RestartWedged));
        assert!(!runner.is_crashed(p(0)));
        assert!(!runner.is_crashed(p(1)));
        runner.stop();
    }

    #[test]
    fn recovery_quantiles_nearest_rank() {
        let report = ChaosReport {
            recovery: vec![
                Duration::from_millis(10),
                Duration::from_millis(30),
                Duration::from_millis(20),
            ],
            ..ChaosReport::default()
        };
        assert_eq!(
            report.recovery_quantile(0.5),
            Some(Duration::from_millis(20))
        );
        assert_eq!(
            report.recovery_quantile(0.99),
            Some(Duration::from_millis(30))
        );
        assert_eq!(
            report.recovery_quantile(0.0),
            Some(Duration::from_millis(10))
        );
        assert_eq!(ChaosReport::default().recovery_quantile(0.5), None);
    }

    #[test]
    fn engine_fires_planned_bursts_and_heals() {
        let cfg = LiveConfig {
            seed: 7,
            ..LiveConfig::default()
        };
        let chaos = ChaosTransport::new(&InMemory, 3);
        let plane = chaos.plane();
        let mut runner = LiveRunner::spawn_with_transport(
            idl_fleet(3),
            vec![None, None, None],
            cfg.clone(),
            &chaos,
        )
        .expect("in-memory");
        let plan = ChaosPlan {
            bursts: 4,
            quiet: Duration::from_millis(10),
            disruption: Duration::from_millis(10),
            ..ChaosPlan::profile(ChaosMix::All, 7)
        };
        let mut harness = ChaosHarness::new(&plan, plane, 3, &cfg);
        let deadline = Instant::now() + Duration::from_secs(30);
        while !harness.done(&runner) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
            harness.tick(&mut runner, 0);
        }
        assert!(harness.done(&runner), "schedule must drain");
        let report = harness.finish(&mut runner);
        assert_eq!(report.bursts_fired, 4, "all four kinds fired");
        assert!(report.corruptions >= 1);
        assert!(report.crashes >= 1);
        assert_eq!(report.partitions, 1);
        assert_eq!(report.storms, 1);
        assert!(!report.fault_steps.is_empty());
        assert!(
            !report.interventions.is_empty(),
            "the supervisor healed the crash burst"
        );
        let live = runner.stop();
        // Every chaos-prefixed marker in the trace is vouched for.
        let chaos_marks: Vec<u64> = live
            .trace
            .markers()
            .filter(|(_, _, l)| l.starts_with("chaos:"))
            .map(|(s, _, _)| s)
            .collect();
        for s in chaos_marks {
            assert!(report.fault_steps.contains(&s), "unvouched mark at {s}");
        }
    }
}
