//! `runtime::monitor` — live observability via snap-stabilizing
//! snapshot waves.
//!
//! A [`Monitored<P>`] process runs the paper's §4.1 PIF-based snapshot
//! ([`snapstab_apps::SnapshotProcess`]) *alongside* a service protocol
//! `P` on the same transport: every wire message is a
//! [`MonitoredMsg`] (service or monitor plane), and the composite is
//! itself a [`Protocol`], so the existing runtime backends — the
//! thread-per-process [`crate::LiveRunner`] and the multiplexed
//! [`crate::MuxRunner`], through the [`RuntimeBackend`] seam — plus
//! the supervisor and chaos engine drive it unchanged. Each
//! initiator's driver periodically requests a cut
//! ([`Monitored::request_cut`]); one snapshot wave then collects a
//! [`ProbeDigest`] per process — a digest of the live service state
//! plus the instrumentation gauges each worker's driver maintains —
//! **without pausing any worker**: digests are captured inside the
//! ordinary atomic receive actions of the wave's broadcast, exactly
//! where the paper's snapshot reads its value. The §4.1 protocol lets
//! any process initiate, so [`MonitorConfig::initiators`] may run K
//! concurrent wave schedules; every decided cut is attributed to the
//! ledger that requested it.
//!
//! Each decided cut is stamped into the merged trace as a
//! [`MonitorEvent`] and judged post-hoc by executable Specification 5
//! ([`snapstab_core::spec::analyze_snapshot_trace`]): one value per
//! live process, causal consistency with the surrounding service
//! trace, and refusal — never fabrication — of cuts from corrupted
//! monitor state. Because the §4.1 snapshot collects *values*, not
//! channel contents, the per-link half of a cut is sampled as counters
//! ([`crate::LinkSample`]) rather than recorded Chandy–Lamport style.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use snapstab_apps::{SnapQuery, SnapshotProcess, SnapshotState};
use snapstab_core::forward::{forward_workload, ForwardConfig, ForwardProcess, STALE_ID_BIT};
use snapstab_core::me::{MeConfig, MeEvent, MeMsg, MeProcess};
use snapstab_core::pif::PifMsg;
use snapstab_core::probe::{state_digest, MonitorEvent, MonitorEventView, ProbeDigest};
use snapstab_core::request::RequestState;
use snapstab_sim::{Context, ProcessId, Protocol, SimRng, Trace, TraceEvent};

use crate::chaos::{ChaosHarness, ChaosPlan, ChaosReport, ChaosTransport};
use crate::runner::{Driver, LinkSample, LiveConfig, LiveStats, RuntimeBackend, Scribe};
use crate::service::{spawn_mux, spawn_threads, ForwardingServiceConfig, MutexServiceConfig};
use crate::telemetry::{Alert, AlertConfig, AlertKind, AlertMonitor};
use crate::transport::{InMemory, Transport};

/// Wire message of a monitored service: the service plane carries the
/// wrapped protocol's own messages, the monitor plane the snapshot
/// wave's PIF handshake. One transport, two multiplexed protocols.
#[derive(Clone, PartialEq, Debug)]
pub enum MonitoredMsg<M> {
    /// A message of the wrapped service protocol.
    Service(M),
    /// A message of the monitoring snapshot instance.
    Monitor(PifMsg<SnapQuery, ProbeDigest>),
}

/// Trace event of a monitored service: the wrapped protocol's events
/// interleaved with the monitor's cut-level [`MonitorEvent`]s. The
/// embedded snapshot's own low-level events are deliberately dropped —
/// Specification 5 judges cuts, and the service checkers judge the
/// service projection ([`project_service_trace`]).
#[derive(Clone, PartialEq, Debug)]
pub enum MonitoredEvent<E> {
    /// An event of the wrapped service protocol.
    Service(E),
    /// A cut-level event of the monitor.
    Monitor(MonitorEvent),
}

impl<E> MonitorEventView for MonitoredEvent<E> {
    fn as_monitor(&self) -> Option<&MonitorEvent> {
        match self {
            MonitoredEvent::Monitor(m) => Some(m),
            MonitoredEvent::Service(_) => None,
        }
    }
}

/// The state projection of a [`Monitored`] process (both planes).
#[derive(Clone, PartialEq, Debug)]
pub struct MonitoredState<S> {
    /// The wrapped service protocol's state.
    pub service: S,
    /// The monitoring snapshot instance's state.
    pub monitor: SnapshotState<ProbeDigest>,
}

/// What one requested cut came to — drained by the initiator's driver
/// via [`Monitored::take_cuts`].
#[derive(Clone, PartialEq, Debug)]
pub enum CutOutcome {
    /// The wave decided; `values[i]` is process `i`'s digest.
    Decided {
        /// Requester-assigned wave id.
        cut: u64,
        /// Global step of the decision.
        step: u64,
        /// The validated global cut.
        values: Vec<ProbeDigest>,
    },
    /// The wave was refused: the monitor's request state was corrupted
    /// at start, or the collected vector failed local validation. Never
    /// silently dropped — refusal is the honest outcome.
    Refused {
        /// Requester-assigned wave id.
        cut: u64,
    },
}

/// A service protocol `P` composed with a monitoring snapshot instance
/// on the same transport. See the module docs for the contract.
///
/// The cut ledger (`pending`/`in_cut`/`finished`) and the gauges are
/// *requester-side* state — like the driver closures, they are never
/// corrupted by [`Protocol::corrupt`]; only the two protocol planes
/// are. That asymmetry is what lets Specification 5 demand
/// refuse-never-fabricate: a corrupted monitor can lose a wave (the
/// ledger then refuses it) but cannot mint a decision the ledger never
/// requested.
#[derive(Clone, Debug)]
pub struct Monitored<P: Protocol> {
    service: P,
    monitor: SnapshotProcess<ProbeDigest>,
    me: ProcessId,
    n: usize,
    queue_depth: u32,
    in_flight: u32,
    served: u64,
    /// Cut requested by the driver, not yet handed to the monitor.
    pending: Option<u64>,
    /// Cut whose wave is in progress.
    in_cut: Option<u64>,
    /// Next requester-assigned cut id.
    next_cut: u64,
    /// Outcomes awaiting [`Monitored::take_cuts`].
    finished: Vec<CutOutcome>,
    /// Reusable inner-context buffers: the wrapper runs both planes
    /// against these on every activation and receive, and the hot path
    /// (millions of service messages per second) must not pay a heap
    /// allocation per step just because a monitor rides along. Always
    /// drained before a call returns.
    scratch_sends: Vec<(ProcessId, P::Msg)>,
    scratch_events: Vec<P::Event>,
    scratch_msends: Vec<(ProcessId, PifMsg<SnapQuery, ProbeDigest>)>,
    scratch_mevents: Vec<snapstab_apps::SnapshotEvent<ProbeDigest>>,
}

impl<P: Protocol> Monitored<P> {
    /// Wraps `service` with a monitoring instance.
    pub fn new(me: ProcessId, n: usize, service: P) -> Self {
        let digest = ProbeDigest {
            proc: me.index() as u16,
            ..ProbeDigest::default()
        };
        Monitored {
            service,
            monitor: SnapshotProcess::new(me, n, digest),
            me,
            n,
            queue_depth: 0,
            in_flight: 0,
            served: 0,
            pending: None,
            in_cut: None,
            next_cut: 0,
            finished: Vec::new(),
            scratch_sends: Vec::new(),
            scratch_events: Vec::new(),
            scratch_msends: Vec::new(),
            scratch_mevents: Vec::new(),
        }
    }

    /// The wrapped service protocol.
    pub fn service(&self) -> &P {
        &self.service
    }

    /// The wrapped service protocol, mutably (driver workload hooks).
    pub fn service_mut(&mut self) -> &mut P {
        &mut self.service
    }

    /// Updates the instrumentation gauges the next digest will carry.
    /// Drivers call this every iteration so a wave passing through
    /// observes current workload facts (queue depth, in-flight work,
    /// requests served so far at this process).
    pub fn set_gauges(&mut self, queue_depth: u32, in_flight: u32, served: u64) {
        self.queue_depth = queue_depth;
        self.in_flight = in_flight;
        self.served = served;
    }

    /// Requests a monitoring cut; returns its id, or `None` while one
    /// is already pending or in progress (at most one wave per
    /// initiator at a time).
    pub fn request_cut(&mut self) -> Option<u64> {
        if self.pending.is_some() || self.in_cut.is_some() {
            return None;
        }
        let cut = self.next_cut;
        self.next_cut += 1;
        self.pending = Some(cut);
        Some(cut)
    }

    /// Drains the finished cut outcomes (decisions and refusals).
    pub fn take_cuts(&mut self) -> Vec<CutOutcome> {
        std::mem::take(&mut self.finished)
    }

    /// Re-captures this process's digest from the live service state
    /// and current gauges, so the value the snapshot answers (or the
    /// initiator contributes) is fresh at capture time.
    fn refresh_digest(&mut self) {
        self.monitor.set_value(ProbeDigest {
            proc: self.me.index() as u16,
            state_hash: state_digest(&self.service.snapshot()),
            queue_depth: self.queue_depth,
            in_flight: self.in_flight,
            served: self.served,
        });
    }

    /// The collected vector if it passes local validation: full arity
    /// and each slot claimed by the right process. A corrupted
    /// collection fails here and the cut is refused — never published.
    fn validated_vector(&self) -> Option<Vec<ProbeDigest>> {
        let values = self.monitor.snapshot_vector()?;
        (values.len() == self.n && values.iter().enumerate().all(|(i, v)| v.proc as usize == i))
            .then_some(values)
    }
}

impl<P> Protocol for Monitored<P>
where
    P: Protocol,
{
    type Msg = MonitoredMsg<P::Msg>;
    type Event = MonitoredEvent<P::Event>;
    type State = MonitoredState<P::State>;

    fn activate(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Event>) -> bool {
        let mut acted = false;

        // Service plane: run the wrapped protocol against an inner
        // context, then translate its sends/events onto the wire.
        let mut sends = std::mem::take(&mut self.scratch_sends);
        let mut events = std::mem::take(&mut self.scratch_events);
        {
            let mut inner = Context::new(
                self.me,
                self.n,
                ctx.step(),
                ctx.rng(),
                &mut sends,
                &mut events,
            );
            acted |= self.service.activate(&mut inner);
        }
        for (to, m) in sends.drain(..) {
            ctx.send(to, MonitoredMsg::Service(m));
        }
        for e in events.drain(..) {
            ctx.emit(MonitoredEvent::Service(e));
        }
        self.scratch_sends = sends;
        self.scratch_events = events;

        // Hand a driver-requested cut to the monitor. `request_snapshot`
        // refuses while the monitor's request variable is corrupted
        // mid-computation (`Wait`/`In`) — the cut is then refused, not
        // forced: fabrication is structurally impossible from here.
        if let Some(cut) = self.pending.take() {
            self.refresh_digest();
            if self.monitor.request_snapshot() {
                self.in_cut = Some(cut);
                ctx.emit(MonitoredEvent::Monitor(MonitorEvent::CutStarted { cut }));
            } else {
                self.finished.push(CutOutcome::Refused { cut });
                ctx.emit(MonitoredEvent::Monitor(MonitorEvent::CutRefused { cut }));
            }
            acted = true;
        }

        // Monitor plane: drive the snapshot instance. Its own low-level
        // events are dropped (cut-level events are emitted by this
        // wrapper); its sends go out on the monitor plane.
        let mut msends = std::mem::take(&mut self.scratch_msends);
        let mut mevents = std::mem::take(&mut self.scratch_mevents);
        {
            let mut inner = Context::new(
                self.me,
                self.n,
                ctx.step(),
                ctx.rng(),
                &mut msends,
                &mut mevents,
            );
            acted |= self.monitor.activate(&mut inner);
        }
        for (to, m) in msends.drain(..) {
            ctx.send(to, MonitoredMsg::Monitor(m));
        }
        mevents.clear();
        self.scratch_msends = msends;
        self.scratch_mevents = mevents;

        // Decision: the ledger vouches for the wave, the collection is
        // locally validated, and only then is a cut published.
        if let Some(cut) = self.in_cut {
            if self.monitor.request() == RequestState::Done {
                match self.validated_vector() {
                    Some(values) => {
                        ctx.emit(MonitoredEvent::Monitor(MonitorEvent::CutDecided {
                            cut,
                            values: values.clone(),
                        }));
                        self.finished.push(CutOutcome::Decided {
                            cut,
                            step: ctx.step(),
                            values,
                        });
                    }
                    None => {
                        ctx.emit(MonitoredEvent::Monitor(MonitorEvent::CutRefused { cut }));
                        self.finished.push(CutOutcome::Refused { cut });
                    }
                }
                self.in_cut = None;
                acted = true;
            }
        }
        acted
    }

    fn on_receive(
        &mut self,
        from: ProcessId,
        msg: Self::Msg,
        ctx: &mut Context<'_, Self::Msg, Self::Event>,
    ) {
        match msg {
            MonitoredMsg::Service(m) => {
                let mut sends = std::mem::take(&mut self.scratch_sends);
                let mut events = std::mem::take(&mut self.scratch_events);
                {
                    let mut inner = Context::new(
                        self.me,
                        self.n,
                        ctx.step(),
                        ctx.rng(),
                        &mut sends,
                        &mut events,
                    );
                    self.service.on_receive(from, m, &mut inner);
                }
                for (to, m) in sends.drain(..) {
                    ctx.send(to, MonitoredMsg::Service(m));
                }
                for e in events.drain(..) {
                    ctx.emit(MonitoredEvent::Service(e));
                }
                self.scratch_sends = sends;
                self.scratch_events = events;
            }
            MonitoredMsg::Monitor(m) => {
                // Capture-on-receive: the digest a passing wave reads is
                // refreshed *inside* this atomic receive action, so the
                // answered value reflects the service state at exactly
                // this step — the paper's §4.1 read point.
                self.refresh_digest();
                let mut msends = std::mem::take(&mut self.scratch_msends);
                let mut mevents = std::mem::take(&mut self.scratch_mevents);
                {
                    let mut inner = Context::new(
                        self.me,
                        self.n,
                        ctx.step(),
                        ctx.rng(),
                        &mut msends,
                        &mut mevents,
                    );
                    self.monitor.on_receive(from, m, &mut inner);
                }
                for (to, m) in msends.drain(..) {
                    ctx.send(to, MonitoredMsg::Monitor(m));
                }
                mevents.clear();
                self.scratch_msends = msends;
                self.scratch_mevents = mevents;
            }
        }
    }

    fn has_enabled_action(&self) -> bool {
        self.service.has_enabled_action()
            || self.monitor.has_enabled_action()
            || self.pending.is_some()
            || (self.in_cut.is_some() && self.monitor.request() == RequestState::Done)
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        // Both protocol planes are fair game; the requester-side cut
        // ledger and gauges are harness state (see the type docs).
        self.service.corrupt(rng);
        self.monitor.corrupt(rng);
    }

    fn snapshot(&self) -> Self::State {
        MonitoredState {
            service: self.service.snapshot(),
            monitor: self.monitor.snapshot(),
        }
    }

    fn restore(&mut self, s: Self::State) {
        self.service.restore(s.service);
        self.monitor.restore(s.monitor);
    }
}

/// Projects a monitored run's merged trace onto the service plane:
/// service events unwrapped, monitor cut events dropped, everything
/// else (activations, sends, deliveries, markers) kept verbatim. The
/// result feeds the service-level checkers — e.g.
/// `snapstab_core::spec::analyze_me_epochs` over a monitored mutex run
/// — which are generic over the message type, so the wire messages
/// stay wrapped.
pub fn project_service_trace<M, E>(
    trace: &Trace<MonitoredMsg<M>, MonitoredEvent<E>>,
) -> Trace<MonitoredMsg<M>, E>
where
    M: Clone,
    E: Clone,
{
    let mut out = Trace::new();
    for te in trace.iter() {
        let event = match &te.event {
            TraceEvent::Protocol { p, event } => match event {
                MonitoredEvent::Service(e) => TraceEvent::Protocol {
                    p: *p,
                    event: e.clone(),
                },
                MonitoredEvent::Monitor(_) => continue,
            },
            TraceEvent::Activated { p, acted } => TraceEvent::Activated {
                p: *p,
                acted: *acted,
            },
            TraceEvent::Sent {
                from,
                to,
                msg,
                fate,
            } => TraceEvent::Sent {
                from: *from,
                to: *to,
                msg: msg.clone(),
                fate: *fate,
            },
            TraceEvent::Delivered { from, to, msg } => TraceEvent::Delivered {
                from: *from,
                to: *to,
                msg: msg.clone(),
            },
            TraceEvent::Corrupted { p } => TraceEvent::Corrupted { p: *p },
            TraceEvent::Marker { p, label } => TraceEvent::Marker {
                p: *p,
                label: label.clone(),
            },
        };
        out.push(te.step, event);
    }
    out
}

/// Configuration of the monitoring side of a monitored service run.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Target period between cut requests at each initiator.
    pub interval: Duration,
    /// How many initiators run concurrent snapshot waves: processes
    /// `0..initiators`, each on its own schedule (phase-staggered by
    /// `interval * i / K` so the waves desynchronize). The §4.1
    /// protocol lets any process initiate; every initiator keeps its
    /// own single-flight cut ledger, and Specification 5 attributes
    /// each decided cut to the ledger that requested it.
    pub initiators: usize,
    /// Alert thresholds evaluated on each initiator's cut chain.
    pub alerts: AlertConfig,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            interval: Duration::from_millis(100),
            initiators: 1,
            alerts: AlertConfig::default(),
        }
    }
}

/// One cut observed live: the decided values plus the harness-side
/// measurements attached when the cut surfaced.
#[derive(Clone, Debug)]
pub struct LiveCut {
    /// Requester-assigned wave id (per initiator).
    pub cut: u64,
    /// The initiator whose ledger requested this cut.
    pub initiator: ProcessId,
    /// Global step of the decision.
    pub step: u64,
    /// `values[i]` is process `i`'s digest.
    pub values: Vec<ProbeDigest>,
    /// Wall-clock time from the cut request to the moment the decided
    /// cut surfaced at the harness — how stale a cut is by the time an
    /// operator sees it.
    pub staleness: Duration,
    /// Wall-clock offset from run start when the cut surfaced — the
    /// time axis `telemetry::Series` differences against.
    pub at: Duration,
    /// Per-link counters sampled when the cut surfaced (drops,
    /// `lost_reorder`, in-transit) — the channel half of the cut.
    pub links: Vec<LinkSample>,
}

impl LiveCut {
    /// Sum of the per-process `served` gauges in this cut.
    pub fn served_total(&self) -> u64 {
        self.values.iter().map(|v| v.served).sum()
    }

    /// Sum of the per-process queue-depth gauges in this cut.
    pub fn queue_total(&self) -> u64 {
        self.values.iter().map(|v| u64::from(v.queue_depth)).sum()
    }

    /// Sum of the per-process in-flight gauges in this cut.
    pub fn in_flight_total(&self) -> u64 {
        self.values.iter().map(|v| u64::from(v.in_flight)).sum()
    }

    /// Messages currently in transit, summed over all links.
    pub fn in_transit_total(&self) -> u64 {
        self.links.iter().map(|l| l.in_transit as u64).sum()
    }
}

/// One initiator's share of a monitored run's outcome.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct InitiatorStats {
    /// The initiating process.
    pub initiator: ProcessId,
    /// Cuts this initiator's ledger decided.
    pub cuts: u64,
    /// Waves this initiator's ledger refused.
    pub refused: u64,
}

/// The monitoring half of a monitored run's outcome.
#[derive(Clone, Debug, Default)]
pub struct MonitorReport {
    /// Every decided cut, in decision order (cuts from concurrent
    /// initiators interleave; each carries its `initiator`).
    pub cuts: Vec<LiveCut>,
    /// Waves refused across all initiators (corrupted monitor state or
    /// failed validation).
    pub refused: u64,
    /// Refusals per initiator (`refused_by[i]` is initiator `i`'s).
    pub refused_by: Vec<u64>,
    /// How many initiators ran concurrent wave schedules.
    pub initiators: usize,
    /// Alerts fired by the initiators' threshold monitors, in firing
    /// order (each is also a trace mark under
    /// [`crate::telemetry::ALERT_MARK_PREFIX`]).
    pub alerts: Vec<Alert>,
    /// Wall-clock duration of the run (denominator for cut rates).
    pub wall: Duration,
}

impl MonitorReport {
    /// Decided cuts per second, all initiators combined.
    pub fn cuts_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.cuts.len() as f64 / self.wall.as_secs_f64()
        }
    }

    /// Decided cuts per second on one initiator's chain.
    pub fn cuts_per_sec_of(&self, initiator: ProcessId) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.cuts
                .iter()
                .filter(|c| c.initiator == initiator)
                .count() as f64
                / self.wall.as_secs_f64()
        }
    }

    /// Per-initiator cut/refusal attribution, in initiator order.
    pub fn per_initiator(&self) -> Vec<InitiatorStats> {
        (0..self.initiators)
            .map(|i| InitiatorStats {
                initiator: ProcessId::new(i),
                cuts: self
                    .cuts
                    .iter()
                    .filter(|c| c.initiator.index() == i)
                    .count() as u64,
                refused: self.refused_by.get(i).copied().unwrap_or(0),
            })
            .collect()
    }

    /// Mean cut staleness, if any cut decided.
    pub fn mean_staleness(&self) -> Option<Duration> {
        if self.cuts.is_empty() {
            return None;
        }
        Some(self.cuts.iter().map(|c| c.staleness).sum::<Duration>() / self.cuts.len() as u32)
    }
}

/// Outcome of a monitored mutex-service run: the service-side counters
/// of [`crate::ServiceReport`] plus the [`MonitorReport`].
pub struct MonitoredMutexReport {
    /// Requests handed to the protocol.
    pub injected: u64,
    /// Requests served end-to-end.
    pub served: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Aggregate runtime counters.
    pub stats: LiveStats,
    /// The merged composite trace (`None` when recording was off) —
    /// feed it to `analyze_snapshot_trace` directly and to the service
    /// checkers via [`project_service_trace`].
    pub trace: Option<Trace<MonitoredMsg<MeMsg>, MonitoredEvent<MeEvent>>>,
    /// Per-request service latencies.
    pub latencies: Vec<Duration>,
    /// Per-link counters sampled just before shutdown (same table as
    /// the unmonitored services).
    pub link_samples: Vec<LinkSample>,
    /// The monitoring half.
    pub monitor: MonitorReport,
}

impl MonitoredMutexReport {
    /// Served requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        self.served as f64 / self.wall.as_secs_f64()
    }

    /// Nearest-rank latency quantiles (each in 0.0–1.0), if any request
    /// was served.
    pub fn latency_quantiles(&self, qs: &[f64]) -> Option<Vec<Duration>> {
        quantiles(&self.latencies, qs)
    }
}

/// Outcome of a monitored forwarding-service run.
pub struct MonitoredForwardingReport {
    /// Genuine payloads handed to the protocol.
    pub injected: u64,
    /// Genuine payloads delivered end-to-end.
    pub delivered: u64,
    /// Stale pre-filled entries flushed end-to-end.
    pub spurious: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Aggregate runtime counters.
    pub stats: LiveStats,
    /// The merged composite trace (`None` when recording was off).
    pub trace: Option<
        Trace<
            MonitoredMsg<snapstab_core::forward::ForwardMsg>,
            MonitoredEvent<snapstab_core::forward::ForwardEvent>,
        >,
    >,
    /// Per-payload end-to-end latencies.
    pub latencies: Vec<Duration>,
    /// Per-link counters sampled just before shutdown (same table as
    /// the unmonitored services).
    pub link_samples: Vec<LinkSample>,
    /// The monitoring half.
    pub monitor: MonitorReport,
}

impl MonitoredForwardingReport {
    /// Genuine payloads delivered per second.
    pub fn payloads_per_sec(&self) -> f64 {
        self.delivered as f64 / self.wall.as_secs_f64()
    }
}

fn quantiles(latencies: &[Duration], qs: &[f64]) -> Option<Vec<Duration>> {
    if latencies.is_empty() {
        return None;
    }
    let mut v = latencies.to_vec();
    v.sort_unstable();
    Some(
        qs.iter()
            .map(|q| v[((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize])
            .collect(),
    )
}

/// Shared plumbing of the monitoring drivers: the per-initiator cut
/// schedules and the feed the harness loop drains. `requested_at`
/// lives here (not in the driver closures) so the post-stop drain can
/// still timestamp the staleness of a cut that decided after its
/// initiator driver's last pass; with K concurrent initiators each
/// ledger needs its own request-time slot.
struct MonitorFeed {
    started: Instant,
    cuts: Mutex<Vec<LiveCut>>,
    refused: AtomicU64,
    refused_by: Vec<AtomicU64>,
    requested_at: Vec<Mutex<Option<Instant>>>,
    alerts: Mutex<Vec<Alert>>,
}

impl MonitorFeed {
    fn new(n: usize) -> Self {
        MonitorFeed {
            started: Instant::now(),
            cuts: Mutex::new(Vec::new()),
            refused: AtomicU64::new(0),
            refused_by: (0..n).map(|_| AtomicU64::new(0)).collect(),
            requested_at: (0..n).map(|_| Mutex::new(None)).collect(),
            alerts: Mutex::new(Vec::new()),
        }
    }
}

/// Books one finished outcome of `initiator`'s ledger into the feed:
/// a decision becomes a [`LiveCut`] stamped with its staleness
/// (request to drain) and run offset; a refusal clears the request
/// slot and counts against the initiator.
fn record_outcome(feed: &MonitorFeed, initiator: ProcessId, outcome: CutOutcome) {
    match outcome {
        CutOutcome::Decided { cut, step, values } => {
            let staleness = feed.requested_at[initiator.index()]
                .lock()
                .expect("requested_at")
                .take()
                .map(|t| t.elapsed())
                .unwrap_or_default();
            feed.cuts.lock().expect("cut feed").push(LiveCut {
                cut,
                initiator,
                step,
                values,
                staleness,
                at: feed.started.elapsed(),
                links: Vec::new(),
            });
        }
        CutOutcome::Refused { .. } => {
            feed.requested_at[initiator.index()]
                .lock()
                .expect("requested_at")
                .take();
            feed.refused.fetch_add(1, Ordering::Relaxed);
            feed.refused_by[initiator.index()].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Moves finished cut outcomes out of the `Monitored` ledger into the
/// feed. Returns whether anything moved. Called post-stop on the
/// protocol states the stopped runner hands back (the in-run path is
/// [`drive_monitor`], which additionally evaluates alerts).
fn drain_outcomes<P: Protocol>(
    proc: &mut Monitored<P>,
    feed: &MonitorFeed,
    initiator: ProcessId,
) -> bool {
    let mut progressed = false;
    for outcome in proc.take_cuts() {
        record_outcome(feed, initiator, outcome);
        progressed = true;
    }
    progressed
}

/// Builds the monitoring half of an initiator's driver hook: requests
/// cuts on the interval, drains outcomes, timestamps staleness, and
/// runs the alert thresholds — a fired alert is stamped into the trace
/// *by this driver, inside the run* (so alert behavior is part of what
/// the specifications judge) and pushed to the feed for the harness.
/// Returns whether it progressed. Link samples are attached
/// harness-side (the driver runs inside a worker and has no view of
/// the link matrix).
fn drive_monitor<P: Protocol>(
    proc: &mut Monitored<P>,
    scribe: &mut Scribe<'_, MonitoredMsg<P::Msg>, MonitoredEvent<P::Event>>,
    feed: &MonitorFeed,
    initiator: ProcessId,
    interval: Duration,
    next_due: &mut Instant,
    alerts: &mut AlertMonitor,
) -> bool {
    let mut progressed = false;
    for outcome in proc.take_cuts() {
        let fired: Vec<Alert> = match &outcome {
            CutOutcome::Decided { cut, values, .. } => {
                let served: u64 = values.iter().map(|v| v.served).sum();
                let queue: u64 = values.iter().map(|v| u64::from(v.queue_depth)).sum();
                alerts.on_decided(*cut, served, queue)
            }
            CutOutcome::Refused { cut } => alerts.on_refused(*cut).into_iter().collect(),
        };
        record_outcome(feed, initiator, outcome);
        for alert in fired {
            scribe.mark(alert.mark());
            feed.alerts.lock().expect("alert feed").push(alert);
        }
        progressed = true;
    }
    let now = Instant::now();
    if now >= *next_due && proc.request_cut().is_some() {
        *feed.requested_at[initiator.index()]
            .lock()
            .expect("requested_at") = Some(now);
        *next_due = now + interval;
        progressed = true;
    }
    progressed
}

/// Drains the feed, attaches `links` to each cut, reports them to
/// `on_cut`, and appends them to `cuts`.
fn flush_feed(
    feed: &MonitorFeed,
    links: &[LinkSample],
    cuts: &mut Vec<LiveCut>,
    on_cut: &mut Option<&mut dyn FnMut(&LiveCut)>,
) {
    let fresh: Vec<LiveCut> = {
        let mut feed = feed.cuts.lock().expect("cut feed");
        feed.drain(..).collect()
    };
    for mut cut in fresh {
        cut.links = links.to_vec();
        if let Some(cb) = on_cut.as_mut() {
            cb(&cut);
        }
        cuts.push(cut);
    }
}

/// Drains newly surfaced cuts from the feed, attaches the current link
/// samples, reports them to `on_cut`, and appends them to `cuts`.
/// Generic over the runtime backend: the thread-per-process
/// [`LiveRunner`](crate::LiveRunner) and the multiplexed
/// [`MuxRunner`](crate::MuxRunner) expose the same link table through
/// the [`RuntimeBackend`] seam.
fn absorb_cuts<P, B>(
    runner: &B,
    feed: &MonitorFeed,
    cuts: &mut Vec<LiveCut>,
    on_cut: &mut Option<&mut dyn FnMut(&LiveCut)>,
) where
    P: Protocol + Send + 'static,
    P::Msg: Send,
    P::Event: Send,
    B: RuntimeBackend<P>,
{
    if feed.cuts.lock().expect("cut feed").is_empty() {
        return;
    }
    let links = runner.link_samples();
    flush_feed(feed, &links, cuts, on_cut);
}

/// Feeds newly fired stalled-served alerts to the chaos supervisor as
/// a wedge signal: the whole service showing zero progress across
/// consecutive consistent cuts (with work queued) marks every worker
/// suspect, so the watchdog recycles any that show no fresh activity
/// by its next pass instead of waiting out the full wedge deadline.
/// Returns the new alert-feed cursor.
fn feed_wedge_alerts(feed: &MonitorFeed, harness: &mut ChaosHarness, seen: usize) -> usize {
    let alerts = feed.alerts.lock().expect("alert feed");
    let stalled = alerts[seen.min(alerts.len())..]
        .iter()
        .any(|a| a.kind == AlertKind::StalledServed);
    let len = alerts.len();
    drop(alerts);
    if stalled {
        harness.suspect_all();
    }
    len
}

/// Assembles the [`MonitorReport`] from the drained feed.
fn monitor_report(
    feed: &MonitorFeed,
    cuts: Vec<LiveCut>,
    initiators: usize,
    wall: Duration,
) -> MonitorReport {
    MonitorReport {
        cuts,
        refused: feed.refused.load(Ordering::Relaxed),
        refused_by: feed
            .refused_by
            .iter()
            .take(initiators)
            .map(|a| a.load(Ordering::Relaxed))
            .collect(),
        initiators,
        alerts: std::mem::take(&mut *feed.alerts.lock().expect("alert feed")),
        wall,
    }
}

/// Runs the mutex service with a monitoring instance alongside, over
/// the in-memory transport.
///
/// ```
/// use snapstab_runtime::{run_monitored_mutex_service, MonitorConfig, MutexServiceConfig};
/// use snapstab_core::spec::analyze_snapshot_trace;
/// use std::time::Duration;
///
/// let cfg = MutexServiceConfig {
///     n: 3,
///     requests_per_process: 2,
///     time_budget: Duration::from_secs(30),
///     ..MutexServiceConfig::default()
/// };
/// let mon = MonitorConfig {
///     interval: Duration::from_millis(5),
///     ..MonitorConfig::default()
/// };
/// let report = run_monitored_mutex_service(&cfg, &mon);
/// assert_eq!(report.served, 6);
/// let spec = analyze_snapshot_trace(&report.trace.unwrap(), 3, &[]);
/// assert!(spec.holds());
/// ```
pub fn run_monitored_mutex_service(
    cfg: &MutexServiceConfig,
    mon: &MonitorConfig,
) -> MonitoredMutexReport {
    run_monitored_mutex_service_on(cfg, mon, &InMemory)
        .expect("the in-memory transport is infallible")
}

/// [`run_monitored_mutex_service`] over an arbitrary [`Transport`].
pub fn run_monitored_mutex_service_on(
    cfg: &MutexServiceConfig,
    mon: &MonitorConfig,
    transport: &dyn Transport<MonitoredMsg<MeMsg>>,
) -> std::io::Result<MonitoredMutexReport> {
    monitored_mutex_impl(cfg, mon, transport, None, &mut None, spawn_threads).map(|(r, _)| r)
}

/// [`run_monitored_mutex_service`] on the [`crate::MuxRunner`]
/// backend: the same composite processes multiplexed over a
/// `workers`-thread pool, in-memory links. One consistent cut spans
/// every instance — digests are captured inside the same atomic
/// per-instance step the mux scheduler serializes, so scaling the
/// instance count past the thread backend's ceiling does not weaken
/// the cut's §4.1 semantics.
pub fn run_monitored_mutex_service_mux(
    cfg: &MutexServiceConfig,
    mon: &MonitorConfig,
    workers: usize,
) -> MonitoredMutexReport {
    run_monitored_mutex_service_mux_on(cfg, mon, workers, &InMemory)
        .expect("the in-memory transport is infallible")
}

/// [`run_monitored_mutex_service_mux`] over an arbitrary [`Transport`].
pub fn run_monitored_mutex_service_mux_on(
    cfg: &MutexServiceConfig,
    mon: &MonitorConfig,
    workers: usize,
    transport: &dyn Transport<MonitoredMsg<MeMsg>>,
) -> std::io::Result<MonitoredMutexReport> {
    monitored_mutex_impl(cfg, mon, transport, None, &mut None, spawn_mux(workers)).map(|(r, _)| r)
}

/// [`run_monitored_mutex_service_on`] under a live chaos schedule: the
/// composite process (service *and* monitor plane) is corrupted,
/// crashed and partitioned mid-run; Specification 5 must still hold on
/// the merged trace with the report's authoritative fault steps.
pub fn run_monitored_mutex_service_chaos_on(
    cfg: &MutexServiceConfig,
    mon: &MonitorConfig,
    transport: &dyn Transport<MonitoredMsg<MeMsg>>,
    plan: &ChaosPlan,
) -> std::io::Result<(MonitoredMutexReport, ChaosReport)> {
    monitored_mutex_impl(cfg, mon, transport, Some(plan), &mut None, spawn_threads)
        .map(|(r, c)| (r, c.expect("chaos plan was given")))
}

/// [`run_monitored_mutex_service_chaos_on`] on the mux backend.
pub fn run_monitored_mutex_service_chaos_mux_on(
    cfg: &MutexServiceConfig,
    mon: &MonitorConfig,
    workers: usize,
    transport: &dyn Transport<MonitoredMsg<MeMsg>>,
    plan: &ChaosPlan,
) -> std::io::Result<(MonitoredMutexReport, ChaosReport)> {
    monitored_mutex_impl(
        cfg,
        mon,
        transport,
        Some(plan),
        &mut None,
        spawn_mux(workers),
    )
    .map(|(r, c)| (r, c.expect("chaos plan was given")))
}

/// The full-control variant: optional chaos plan plus an `on_cut`
/// callback invoked as each decided cut surfaces (the CLI's streaming
/// summaries).
pub fn run_monitored_mutex_service_with(
    cfg: &MutexServiceConfig,
    mon: &MonitorConfig,
    transport: &dyn Transport<MonitoredMsg<MeMsg>>,
    plan: Option<&ChaosPlan>,
    mut on_cut: Option<&mut dyn FnMut(&LiveCut)>,
) -> std::io::Result<(MonitoredMutexReport, Option<ChaosReport>)> {
    monitored_mutex_impl(cfg, mon, transport, plan, &mut on_cut, spawn_threads)
}

/// [`run_monitored_mutex_service_with`] on the mux backend.
pub fn run_monitored_mutex_service_mux_with(
    cfg: &MutexServiceConfig,
    mon: &MonitorConfig,
    workers: usize,
    transport: &dyn Transport<MonitoredMsg<MeMsg>>,
    plan: Option<&ChaosPlan>,
    mut on_cut: Option<&mut dyn FnMut(&LiveCut)>,
) -> std::io::Result<(MonitoredMutexReport, Option<ChaosReport>)> {
    monitored_mutex_impl(cfg, mon, transport, plan, &mut on_cut, spawn_mux(workers))
}

fn monitored_mutex_impl<B>(
    cfg: &MutexServiceConfig,
    mon: &MonitorConfig,
    transport: &dyn Transport<MonitoredMsg<MeMsg>>,
    plan: Option<&ChaosPlan>,
    on_cut: &mut Option<&mut dyn FnMut(&LiveCut)>,
    spawn: impl FnOnce(
        Vec<Monitored<MeProcess>>,
        Vec<Option<Driver<Monitored<MeProcess>>>>,
        LiveConfig,
        &dyn Transport<MonitoredMsg<MeMsg>>,
    ) -> std::io::Result<B>,
) -> std::io::Result<(MonitoredMutexReport, Option<ChaosReport>)>
where
    B: RuntimeBackend<Monitored<MeProcess>>,
{
    let n = cfg.n;
    assert!(
        mon.initiators >= 1 && mon.initiators <= n,
        "1 ≤ initiators ≤ n"
    );
    let processes: Vec<Monitored<MeProcess>> = (0..n)
        .map(|i| {
            let me = ProcessId::new(i);
            let service = MeProcess::with_config(
                me,
                n,
                100 + i as u64,
                MeConfig {
                    cs_duration: cfg.cs_duration,
                    ..MeConfig::default()
                },
            );
            Monitored::new(me, n, service)
        })
        .collect();

    let total = cfg.requests_per_process * n as u64;
    let injected = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let feed = Arc::new(MonitorFeed::new(n));

    let drivers: Vec<Option<Driver<Monitored<MeProcess>>>> = (0..n)
        .map(|i| {
            let mut remaining = cfg.requests_per_process;
            let mut outstanding: Option<Instant> = None;
            let mut served_here: u64 = 0;
            let injected = injected.clone();
            let served = served.clone();
            let latencies = latencies.clone();
            let is_initiator = i < mon.initiators;
            let me_id = ProcessId::new(i);
            let interval = mon.interval;
            let feed = feed.clone();
            let mut alert_mon = AlertMonitor::new(me_id, mon.alerts);
            // Initiator `i`'s schedule is phase-offset by `i/K` of an
            // interval so concurrent waves desynchronize; with one
            // initiator this is the phase-zero schedule (first cut on
            // the first driver pass, subsequent ones every `interval`).
            let mut next_due = Instant::now() + interval.mul_f64(i as f64 / mon.initiators as f64);
            let hook: Driver<Monitored<MeProcess>> = Box::new(move |proc, scribe| {
                let mut progressed = false;
                if let Some(since) = outstanding {
                    if proc.service().request() == RequestState::Done {
                        served.fetch_add(1, Ordering::Relaxed);
                        served_here += 1;
                        // The "served" marker is what Specification 5's
                        // causal check bounds the cut gauges against.
                        scribe.mark("served");
                        latencies.lock().expect("latency log").push(since.elapsed());
                        outstanding = None;
                        progressed = true;
                    }
                }
                if outstanding.is_none()
                    && remaining > 0
                    && proc.service().request() == RequestState::Done
                {
                    scribe.mark("request");
                    if proc.service_mut().request_cs() {
                        remaining -= 1;
                        outstanding = Some(Instant::now());
                        injected.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                }
                proc.set_gauges(
                    remaining.min(u64::from(u32::MAX)) as u32,
                    u32::from(outstanding.is_some()),
                    served_here,
                );
                if is_initiator {
                    progressed |= drive_monitor(
                        proc,
                        scribe,
                        &feed,
                        me_id,
                        interval,
                        &mut next_due,
                        &mut alert_mon,
                    );
                }
                progressed
            });
            Some(hook)
        })
        .collect();

    let record = cfg.live.record_trace;
    let chaos_transport = plan.map(|_| ChaosTransport::new(transport, n));
    let mut runner = match &chaos_transport {
        Some(ct) => spawn(processes, drivers, cfg.live.clone(), ct)?,
        None => spawn(processes, drivers, cfg.live.clone(), transport)?,
    };
    let mut harness = plan.map(|p| {
        let plane = chaos_transport.as_ref().expect("wrapped above").plane();
        ChaosHarness::new(p, plane, n, &cfg.live)
    });
    let mut cuts: Vec<LiveCut> = Vec::new();
    let mut alerts_fed = 0;
    let deadline = Instant::now() + cfg.time_budget;
    loop {
        absorb_cuts(&runner, &feed, &mut cuts, on_cut);
        let work_done = served.load(Ordering::Relaxed) >= total;
        let chaos_done = harness.as_ref().is_none_or(|h| h.done(&runner));
        if (work_done && chaos_done) || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
        if let Some(h) = harness.as_mut() {
            h.tick(&mut runner, served.load(Ordering::Relaxed));
            alerts_fed = feed_wedge_alerts(&feed, h, alerts_fed);
        }
    }
    let chaos_report = harness.map(|h| h.finish(&mut runner));
    // Sample the link table while the matrix is still alive; cuts
    // surfacing from here on get this final table as their channel half.
    let link_samples = runner.link_samples();
    let mut report = runner.stop();
    // Post-stop drain: a wave can decide after the initiator driver's
    // last pass, leaving its outcome in the `Monitored` ledger (or a
    // driver can feed a cut after the harness's last poll). The trace
    // records those decisions, so the harness must collect them too —
    // drain the returned protocol states, then flush the feed.
    for (i, proc) in report.processes.iter_mut().enumerate() {
        drain_outcomes(proc, &feed, ProcessId::new(i));
    }
    flush_feed(&feed, &link_samples, &mut cuts, on_cut);

    let latencies = std::mem::take(&mut *latencies.lock().expect("latency log"));
    let monitor = monitor_report(&feed, cuts, mon.initiators, report.wall);
    Ok((
        MonitoredMutexReport {
            injected: injected.load(Ordering::Relaxed),
            served: served.load(Ordering::Relaxed),
            wall: report.wall,
            stats: report.stats,
            trace: record.then_some(report.trace),
            latencies,
            link_samples,
            monitor,
        },
        chaos_report,
    ))
}

/// Runs the forwarding service with a monitoring instance alongside,
/// over the in-memory transport.
pub fn run_monitored_forwarding_service(
    cfg: &ForwardingServiceConfig,
    mon: &MonitorConfig,
) -> MonitoredForwardingReport {
    run_monitored_forwarding_service_on(cfg, mon, &InMemory)
        .expect("the in-memory transport is infallible")
}

/// [`run_monitored_forwarding_service`] over an arbitrary [`Transport`].
pub fn run_monitored_forwarding_service_on(
    cfg: &ForwardingServiceConfig,
    mon: &MonitorConfig,
    transport: &dyn Transport<MonitoredMsg<snapstab_core::forward::ForwardMsg>>,
) -> std::io::Result<MonitoredForwardingReport> {
    monitored_forwarding_impl(cfg, mon, transport, None, &mut None, spawn_threads).map(|(r, _)| r)
}

/// [`run_monitored_forwarding_service`] on the [`crate::MuxRunner`]
/// backend with a `workers`-thread pool, in-memory links.
pub fn run_monitored_forwarding_service_mux(
    cfg: &ForwardingServiceConfig,
    mon: &MonitorConfig,
    workers: usize,
) -> MonitoredForwardingReport {
    run_monitored_forwarding_service_mux_on(cfg, mon, workers, &InMemory)
        .expect("the in-memory transport is infallible")
}

/// [`run_monitored_forwarding_service_mux`] over an arbitrary
/// [`Transport`].
pub fn run_monitored_forwarding_service_mux_on(
    cfg: &ForwardingServiceConfig,
    mon: &MonitorConfig,
    workers: usize,
    transport: &dyn Transport<MonitoredMsg<snapstab_core::forward::ForwardMsg>>,
) -> std::io::Result<MonitoredForwardingReport> {
    monitored_forwarding_impl(cfg, mon, transport, None, &mut None, spawn_mux(workers))
        .map(|(r, _)| r)
}

/// [`run_monitored_forwarding_service_on`] under a live chaos schedule.
pub fn run_monitored_forwarding_service_chaos_on(
    cfg: &ForwardingServiceConfig,
    mon: &MonitorConfig,
    transport: &dyn Transport<MonitoredMsg<snapstab_core::forward::ForwardMsg>>,
    plan: &ChaosPlan,
) -> std::io::Result<(MonitoredForwardingReport, ChaosReport)> {
    monitored_forwarding_impl(cfg, mon, transport, Some(plan), &mut None, spawn_threads)
        .map(|(r, c)| (r, c.expect("chaos plan was given")))
}

/// [`run_monitored_forwarding_service_chaos_on`] on the mux backend.
pub fn run_monitored_forwarding_service_chaos_mux_on(
    cfg: &ForwardingServiceConfig,
    mon: &MonitorConfig,
    workers: usize,
    transport: &dyn Transport<MonitoredMsg<snapstab_core::forward::ForwardMsg>>,
    plan: &ChaosPlan,
) -> std::io::Result<(MonitoredForwardingReport, ChaosReport)> {
    monitored_forwarding_impl(
        cfg,
        mon,
        transport,
        Some(plan),
        &mut None,
        spawn_mux(workers),
    )
    .map(|(r, c)| (r, c.expect("chaos plan was given")))
}

/// The full-control variant with an `on_cut` streaming callback.
pub fn run_monitored_forwarding_service_with(
    cfg: &ForwardingServiceConfig,
    mon: &MonitorConfig,
    transport: &dyn Transport<MonitoredMsg<snapstab_core::forward::ForwardMsg>>,
    plan: Option<&ChaosPlan>,
    mut on_cut: Option<&mut dyn FnMut(&LiveCut)>,
) -> std::io::Result<(MonitoredForwardingReport, Option<ChaosReport>)> {
    monitored_forwarding_impl(cfg, mon, transport, plan, &mut on_cut, spawn_threads)
}

/// [`run_monitored_forwarding_service_with`] on the mux backend.
pub fn run_monitored_forwarding_service_mux_with(
    cfg: &ForwardingServiceConfig,
    mon: &MonitorConfig,
    workers: usize,
    transport: &dyn Transport<MonitoredMsg<snapstab_core::forward::ForwardMsg>>,
    plan: Option<&ChaosPlan>,
    mut on_cut: Option<&mut dyn FnMut(&LiveCut)>,
) -> std::io::Result<(MonitoredForwardingReport, Option<ChaosReport>)> {
    monitored_forwarding_impl(cfg, mon, transport, plan, &mut on_cut, spawn_mux(workers))
}

fn monitored_forwarding_impl<B>(
    cfg: &ForwardingServiceConfig,
    mon: &MonitorConfig,
    transport: &dyn Transport<MonitoredMsg<snapstab_core::forward::ForwardMsg>>,
    plan: Option<&ChaosPlan>,
    on_cut: &mut Option<&mut dyn FnMut(&LiveCut)>,
    spawn: impl FnOnce(
        Vec<Monitored<ForwardProcess>>,
        Vec<Option<Driver<Monitored<ForwardProcess>>>>,
        LiveConfig,
        &dyn Transport<MonitoredMsg<snapstab_core::forward::ForwardMsg>>,
    ) -> std::io::Result<B>,
) -> std::io::Result<(MonitoredForwardingReport, Option<ChaosReport>)>
where
    B: RuntimeBackend<Monitored<ForwardProcess>>,
{
    let n = cfg.n;
    assert!(
        mon.initiators >= 1 && mon.initiators <= n,
        "1 ≤ initiators ≤ n"
    );
    let config = ForwardConfig {
        buffer_cap: cfg.buffer_cap,
        flag_domain: snapstab_core::flag::FlagDomain::for_capacity(cfg.live.capacity.max(1)),
    };
    let mut services: Vec<ForwardProcess> = (0..n)
        .map(|i| ForwardProcess::new(ProcessId::new(i), n, config))
        .collect();
    if cfg.prefill_stale {
        let mut rng = SimRng::seed_from(cfg.live.seed ^ 0x57A1_EB0F);
        for proc in &mut services {
            proc.prefill_stale(&mut rng);
        }
    }
    let processes: Vec<Monitored<ForwardProcess>> = services
        .into_iter()
        .enumerate()
        .map(|(i, svc)| Monitored::new(ProcessId::new(i), n, svc))
        .collect();

    let workload = forward_workload(n, cfg.payloads_per_process, cfg.live.seed);
    let total: u64 = workload.iter().map(|w| w.len() as u64).sum();
    let injected = Arc::new(AtomicU64::new(0));
    let delivered = Arc::new(AtomicU64::new(0));
    let spurious = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
    let inject_times: Arc<Mutex<std::collections::HashMap<u64, Instant>>> =
        Arc::new(Mutex::new(std::collections::HashMap::new()));
    let feed = Arc::new(MonitorFeed::new(n));

    let drivers: Vec<Option<Driver<Monitored<ForwardProcess>>>> = workload
        .into_iter()
        .enumerate()
        .map(|(i, stream)| {
            let mut queue: VecDeque<_> = stream.into();
            let mut collected_here: u64 = 0;
            let injected = injected.clone();
            let delivered = delivered.clone();
            let spurious = spurious.clone();
            let inject_times = inject_times.clone();
            let latencies = latencies.clone();
            let is_initiator = i < mon.initiators;
            let me_id = ProcessId::new(i);
            let interval = mon.interval;
            let feed = feed.clone();
            let mut alert_mon = AlertMonitor::new(me_id, mon.alerts);
            // Initiator `i`'s schedule is phase-offset by `i/K` of an
            // interval (see the mutex impl).
            let mut next_due = Instant::now() + interval.mul_f64(i as f64 / mon.initiators as f64);
            let hook: Driver<Monitored<ForwardProcess>> = Box::new(move |proc, scribe| {
                let mut progressed = false;
                for payload in proc.service_mut().take_delivered() {
                    // Every end-to-end collection counts for the gauge
                    // and gets a "served" marker — stale flushes too, so
                    // the cut's causal bound matches what it counts.
                    collected_here += 1;
                    scribe.mark("served");
                    if payload.id & STALE_ID_BIT == 0 {
                        delivered.fetch_add(1, Ordering::Relaxed);
                        let since = inject_times.lock().expect("timestamps").remove(&payload.id);
                        if let Some(since) = since {
                            latencies.lock().expect("latency log").push(since.elapsed());
                        }
                    } else {
                        spurious.fetch_add(1, Ordering::Relaxed);
                    }
                    progressed = true;
                }
                if proc.service().can_inject() {
                    if let Some(&payload) = queue.front() {
                        inject_times
                            .lock()
                            .expect("timestamps")
                            .insert(payload.id, Instant::now());
                        assert!(
                            proc.service_mut().request_send(payload),
                            "workload stays in domain"
                        );
                        queue.pop_front();
                        injected.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                }
                let buffered = proc.service().buffered().min(u32::MAX as usize) as u32;
                proc.set_gauges(
                    queue.len().min(u32::MAX as usize) as u32,
                    buffered,
                    collected_here,
                );
                if is_initiator {
                    progressed |= drive_monitor(
                        proc,
                        scribe,
                        &feed,
                        me_id,
                        interval,
                        &mut next_due,
                        &mut alert_mon,
                    );
                }
                progressed
            });
            Some(hook)
        })
        .collect();

    let record = cfg.live.record_trace;
    let chaos_transport = plan.map(|_| ChaosTransport::new(transport, n));
    let mut runner = match &chaos_transport {
        Some(ct) => spawn(processes, drivers, cfg.live.clone(), ct)?,
        None => spawn(processes, drivers, cfg.live.clone(), transport)?,
    };
    let mut harness = plan.map(|p| {
        let plane = chaos_transport.as_ref().expect("wrapped above").plane();
        ChaosHarness::new(p, plane, n, &cfg.live)
    });
    let mut cuts: Vec<LiveCut> = Vec::new();
    let mut alerts_fed = 0;
    let deadline = Instant::now() + cfg.time_budget;
    loop {
        absorb_cuts(&runner, &feed, &mut cuts, on_cut);
        let completed = delivered.load(Ordering::Relaxed) + spurious.load(Ordering::Relaxed);
        let work_done = delivered.load(Ordering::Relaxed) >= total;
        let chaos_done = harness.as_ref().is_none_or(|h| h.done(&runner));
        if (work_done && chaos_done) || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
        if let Some(h) = harness.as_mut() {
            h.tick(&mut runner, completed);
            alerts_fed = feed_wedge_alerts(&feed, h, alerts_fed);
        }
    }
    let chaos_report = harness.map(|h| h.finish(&mut runner));
    // Sample the link table while the matrix is still alive; cuts
    // surfacing from here on get this final table as their channel half.
    let link_samples = runner.link_samples();
    let mut report = runner.stop();
    // Post-stop drain: a wave can decide after the initiator driver's
    // last pass, leaving its outcome in the `Monitored` ledger (or a
    // driver can feed a cut after the harness's last poll). The trace
    // records those decisions, so the harness must collect them too —
    // drain the returned protocol states, then flush the feed.
    for (i, proc) in report.processes.iter_mut().enumerate() {
        drain_outcomes(proc, &feed, ProcessId::new(i));
    }
    flush_feed(&feed, &link_samples, &mut cuts, on_cut);

    let latencies = std::mem::take(&mut *latencies.lock().expect("latency log"));
    let monitor = monitor_report(&feed, cuts, mon.initiators, report.wall);
    Ok((
        MonitoredForwardingReport {
            injected: injected.load(Ordering::Relaxed),
            delivered: delivered.load(Ordering::Relaxed),
            spurious: spurious.load(Ordering::Relaxed),
            wall: report.wall,
            stats: report.stats,
            trace: record.then_some(report.trace),
            latencies,
            link_samples,
            monitor,
        },
        chaos_report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::LiveConfig;
    use snapstab_core::spec::{analyze_me_epochs, analyze_me_trace, analyze_snapshot_trace};

    fn mutex_cfg(n: usize) -> MutexServiceConfig {
        MutexServiceConfig {
            n,
            requests_per_process: 3,
            cs_duration: 0,
            live: LiveConfig::default(),
            time_budget: Duration::from_secs(45),
        }
    }

    fn fast_monitor() -> MonitorConfig {
        MonitorConfig {
            interval: Duration::from_millis(5),
            ..MonitorConfig::default()
        }
    }

    #[test]
    fn monitored_mutex_serves_and_cuts_pass_spec5() {
        let cfg = mutex_cfg(3);
        let report = run_monitored_mutex_service(&cfg, &fast_monitor());
        assert_eq!(report.served, 9, "monitoring must not eat requests");
        assert!(
            !report.monitor.cuts.is_empty(),
            "a 5ms interval must land at least one cut"
        );
        assert!(report.monitor.cuts_per_sec() > 0.0);
        for cut in &report.monitor.cuts {
            assert_eq!(cut.values.len(), 3, "one digest per process");
            assert_eq!(cut.links.len(), 6, "n(n-1) directed link samples");
        }
        let trace = report.trace.as_ref().expect("recording on");
        let spec = analyze_snapshot_trace(trace, cfg.n, &[]);
        assert!(spec.holds(), "{spec:?}");
        assert_eq!(
            spec.cuts_decided(),
            report.monitor.cuts.len(),
            "every live cut appears in the trace verdict"
        );
        // Gauge sanity: the final cut's served total is at most the
        // workload (and grows over the run).
        let last = report.monitor.cuts.last().unwrap();
        assert!(last.served_total() <= 9);
    }

    #[test]
    fn monitored_trace_projects_to_clean_service_trace() {
        let cfg = mutex_cfg(3);
        let report = run_monitored_mutex_service(&cfg, &fast_monitor());
        let trace = report.trace.as_ref().expect("recording on");
        let service = project_service_trace(trace);
        let me = analyze_me_trace(&service, cfg.n);
        assert!(me.exclusivity_holds(), "{:?}", me.genuine_overlaps);
        assert!(me.all_served(), "unserved: {:?}", me.unserved);
        assert_eq!(me.served.len(), 9);
        // Projection preserves the full step count minus monitor events.
        assert!(service.iter().count() <= trace.iter().count());
    }

    #[test]
    fn monitored_mutex_under_chaos_holds_spec5_per_epoch_spec3() {
        use crate::chaos::ChaosMix;
        let cfg = MutexServiceConfig {
            requests_per_process: 4,
            live: LiveConfig {
                seed: 7,
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(60),
            ..mutex_cfg(3)
        };
        let plan = ChaosPlan {
            bursts: 2,
            quiet: Duration::from_millis(20),
            disruption: Duration::from_millis(15),
            ..ChaosPlan::profile(ChaosMix::All, 7)
        };
        let (report, chaos) =
            run_monitored_mutex_service_chaos_on(&cfg, &fast_monitor(), &InMemory, &plan)
                .expect("in-memory");
        assert_eq!(report.served, 12, "chaos must not eat requests");
        assert_eq!(chaos.bursts_fired, 2);
        let trace = report.trace.as_ref().expect("recording on");
        let spec = analyze_snapshot_trace(trace, cfg.n, &chaos.fault_steps);
        assert!(spec.holds(), "Spec 5 under chaos: {spec:?}");
        let service = project_service_trace(trace);
        let epochs = analyze_me_epochs(&service, cfg.n, &chaos.fault_steps);
        assert!(epochs.holds(), "projected epochs: {epochs:?}");
    }

    #[test]
    fn monitored_forwarding_delivers_and_cuts_pass_spec5() {
        let cfg = ForwardingServiceConfig {
            n: 3,
            payloads_per_process: 2,
            buffer_cap: 4,
            prefill_stale: false,
            live: LiveConfig::default(),
            time_budget: Duration::from_secs(45),
        };
        let report = run_monitored_forwarding_service(&cfg, &fast_monitor());
        assert_eq!(report.delivered, 6);
        assert!(!report.monitor.cuts.is_empty());
        let trace = report.trace.as_ref().expect("recording on");
        let spec = analyze_snapshot_trace(trace, cfg.n, &[]);
        assert!(spec.holds(), "{spec:?}");
    }

    #[test]
    fn multi_initiator_cuts_attributed_per_ledger() {
        let cfg = mutex_cfg(3);
        let mon = MonitorConfig {
            initiators: 2,
            ..fast_monitor()
        };
        let report = run_monitored_mutex_service(&cfg, &mon);
        assert_eq!(report.served, 9, "extra initiators must not eat requests");
        assert_eq!(report.monitor.initiators, 2);
        assert!(
            !report.monitor.cuts.is_empty(),
            "two 5ms schedules must land at least one cut"
        );
        for cut in &report.monitor.cuts {
            assert!(
                cut.initiator.index() < 2,
                "cut {} attributed to non-initiator {:?}",
                cut.cut,
                cut.initiator
            );
        }
        let per = report.monitor.per_initiator();
        assert_eq!(per.len(), 2);
        let cuts_sum: u64 = per.iter().map(|s| s.cuts).sum();
        assert_eq!(cuts_sum as usize, report.monitor.cuts.len());
        let refused_sum: u64 = per.iter().map(|s| s.refused).sum();
        assert_eq!(refused_sum, report.monitor.refused);
        // Per-initiator ledgers are independent: each one's cut ids are
        // strictly increasing in trace order.
        for init in 0..2 {
            let ids: Vec<u64> = report
                .monitor
                .cuts
                .iter()
                .filter(|c| c.initiator.index() == init)
                .map(|c| c.cut)
                .collect();
            assert!(
                ids.windows(2).all(|w| w[0] < w[1]),
                "ledger {init}: {ids:?}"
            );
        }
        let trace = report.trace.as_ref().expect("recording on");
        let spec = analyze_snapshot_trace(trace, cfg.n, &[]);
        assert!(spec.holds(), "{spec:?}");
        assert_eq!(spec.cuts_decided(), report.monitor.cuts.len());
    }

    #[test]
    fn monitored_mutex_on_mux_passes_spec5() {
        let cfg = mutex_cfg(4);
        let report = run_monitored_mutex_service_mux(&cfg, &fast_monitor(), 2);
        assert_eq!(report.served, 12, "monitoring must not eat requests");
        assert!(
            !report.monitor.cuts.is_empty(),
            "a cut must span the multiplexed instances"
        );
        for cut in &report.monitor.cuts {
            assert_eq!(cut.values.len(), 4, "one digest per instance");
        }
        let trace = report.trace.as_ref().expect("recording on");
        let spec = analyze_snapshot_trace(trace, cfg.n, &[]);
        assert!(spec.holds(), "{spec:?}");
        assert_eq!(spec.cuts_decided(), report.monitor.cuts.len());
    }

    #[test]
    fn monitored_forwarding_on_mux_passes_spec5() {
        let cfg = ForwardingServiceConfig {
            n: 3,
            payloads_per_process: 2,
            buffer_cap: 4,
            prefill_stale: false,
            live: LiveConfig::default(),
            time_budget: Duration::from_secs(45),
        };
        let report = run_monitored_forwarding_service_mux(&cfg, &fast_monitor(), 2);
        assert_eq!(report.delivered, 6);
        assert!(!report.monitor.cuts.is_empty());
        let trace = report.trace.as_ref().expect("recording on");
        let spec = analyze_snapshot_trace(trace, cfg.n, &[]);
        assert!(spec.holds(), "{spec:?}");
    }

    #[test]
    fn cut_ledger_is_single_flight() {
        let me = ProcessId::new(0);
        let svc = MeProcess::with_config(me, 2, 100, MeConfig::default());
        let mut m = Monitored::new(me, 2, svc);
        let first = m.request_cut();
        assert_eq!(first, Some(0));
        assert_eq!(m.request_cut(), None, "one wave in flight at a time");
        assert!(m.take_cuts().is_empty());
    }
}
