//! The service front-ends: a single-leader [`MeProcess`] mutex service
//! ([`run_mutex_service`]), its sharded, batching generalization
//! ([`run_sharded_service`]), and the end-to-end message-forwarding
//! service ([`run_forwarding_service`]).
//!
//! The single-leader service runs one [`MeProcess`] (Algorithm 3) per
//! worker thread and gives every worker a driver hook holding a queue of
//! client critical-section requests: whenever the process's `Request`
//! variable is `Done` and requests remain, the driver marks `"request"`
//! in the log, calls `request_cs()`, and times the service latency. This
//! is the front-end the ROADMAP's "heavy concurrent traffic" north star
//! asks for: a high-volume request stream served by the paper's protocol
//! under genuine thread interleavings and message loss.
//!
//! Its throughput is protocol-bound — one grant per leader `Value`
//! rotation — so the **sharded service** multiplies it: every worker
//! hosts `S` independent protocol instances ([`ShardedMe`], leaders
//! spread round-robin), the resource space is hash-partitioned across
//! them ([`snapstab_core::shard::shard_of`]), and each grant serves a
//! whole batch of non-conflicting client requests
//! ([`snapstab_core::request::BatchQueue`]). A shared [`GrantLog`]
//! records every batch for the service-level audit, and
//! [`snapstab_core::shard::project_shard_trace`] slices the merged trace
//! into per-shard traces for the Specification 3 checkers.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use snapstab_core::forward::{
    forward_workload, ForwardConfig, ForwardEvent, ForwardMsg, ForwardProcess, STALE_ID_BIT,
};
use snapstab_core::me::{MeConfig, MeEvent, MeMsg, MeProcess};
use snapstab_core::request::{ClientRequest, RequestState};
use snapstab_core::shard::{
    inject_requests, shard_marker, GrantAudit, GrantLog, ShardedMe, ShardedMeEvent, ShardedMeMsg,
};
use snapstab_sim::{ProcessId, Protocol, SimRng, Trace};

use crate::chaos::{ChaosHarness, ChaosPlan, ChaosReport, ChaosTransport};
use crate::mux::MuxRunner;
use crate::runner::{Driver, LiveConfig, LiveRunner, LiveStats, RuntimeBackend};
use crate::transport::{InMemory, Transport};

/// Configuration of a mutex-service run.
#[derive(Clone, Debug)]
pub struct MutexServiceConfig {
    /// Number of processes (= worker threads).
    pub n: usize,
    /// Client requests queued per process.
    pub requests_per_process: u64,
    /// Critical-section duration in activations (0 = the paper's atomic
    /// CS).
    pub cs_duration: u64,
    /// Transport and scheduling configuration.
    pub live: LiveConfig,
    /// Wall-clock budget: the run stops when every request is served or
    /// this much time has passed, whichever is first.
    pub time_budget: Duration,
}

impl Default for MutexServiceConfig {
    fn default() -> Self {
        MutexServiceConfig {
            n: 4,
            requests_per_process: 10,
            cs_duration: 0,
            live: LiveConfig::default(),
            time_budget: Duration::from_secs(30),
        }
    }
}

/// Outcome of a mutex-service run.
pub struct ServiceReport {
    /// Requests handed to the protocol (`request_cs` accepted).
    pub injected: u64,
    /// Requests served end-to-end (`Request` back to `Done`).
    pub served: u64,
    /// Critical-section entries summed over all processes (includes any
    /// spurious ones from a corrupted start; equals `served` on clean
    /// starts).
    pub cs_entries: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Aggregate runtime counters.
    pub stats: LiveStats,
    /// The merged trace (`None` when recording was off).
    pub trace: Option<Trace<MeMsg, MeEvent>>,
    /// Final process states.
    pub processes: Vec<MeProcess>,
    /// Per-request service latencies (injection to `Done`).
    pub latencies: Vec<Duration>,
    /// Per-link counters sampled just before shutdown — the same
    /// drop/reorder/in-transit table for every transport backend.
    pub link_samples: Vec<crate::runner::LinkSample>,
}

/// `(min, mean, max)` of a latency sample, if it is non-empty.
fn min_mean_max(latencies: &[Duration]) -> Option<(Duration, Duration, Duration)> {
    let min = *latencies.iter().min()?;
    let max = *latencies.iter().max()?;
    let mean = latencies.iter().sum::<Duration>() / latencies.len() as u32;
    Some((min, mean, max))
}

impl ServiceReport {
    /// Served requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        self.served as f64 / self.wall.as_secs_f64()
    }

    /// Critical-section entries per second.
    pub fn cs_per_sec(&self) -> f64 {
        self.cs_entries as f64 / self.wall.as_secs_f64()
    }

    /// Transport messages enqueued per second.
    pub fn msgs_per_sec(&self) -> f64 {
        self.stats.links.enqueued as f64 / self.wall.as_secs_f64()
    }

    /// `(min, mean, max)` service latency, if any request was served.
    pub fn latency_min_mean_max(&self) -> Option<(Duration, Duration, Duration)> {
        min_mean_max(&self.latencies)
    }
}

/// Runs a mutual-exclusion service workload to completion (all requests
/// served) or to the time budget.
///
/// ```
/// use snapstab_runtime::{run_mutex_service, MutexServiceConfig};
/// use std::time::Duration;
///
/// let report = run_mutex_service(&MutexServiceConfig {
///     n: 3,
///     requests_per_process: 1,
///     time_budget: Duration::from_secs(30),
///     ..MutexServiceConfig::default()
/// });
/// assert_eq!(report.served, 3);
/// assert!(report.requests_per_sec() > 0.0);
/// ```
pub fn run_mutex_service(cfg: &MutexServiceConfig) -> ServiceReport {
    run_mutex_service_on(cfg, &InMemory).expect("the in-memory transport is infallible")
}

/// [`run_mutex_service`] over an arbitrary [`Transport`] backend (e.g.
/// `snapstab-net`'s `UdpLoopback`). Fallible because a networked backend
/// binds OS resources; the in-memory path cannot fail.
pub fn run_mutex_service_on(
    cfg: &MutexServiceConfig,
    transport: &dyn Transport<MeMsg>,
) -> std::io::Result<ServiceReport> {
    mutex_service_impl(cfg, transport, None, spawn_threads).map(|(report, _)| report)
}

/// [`run_mutex_service`] on the event-driven [`MuxRunner`] backend:
/// `cfg.n` protocol instances multiplexed over `workers` pool threads,
/// in-memory links. Same workload, drivers, stamping and report shape as
/// the thread backend — the cross-backend conformance suite holds both
/// to the same Specification 3.
pub fn run_mutex_service_mux(cfg: &MutexServiceConfig, workers: usize) -> ServiceReport {
    run_mutex_service_mux_on(cfg, workers, &InMemory)
        .expect("the in-memory transport is infallible")
}

/// [`run_mutex_service_mux`] over an arbitrary [`Transport`] backend.
pub fn run_mutex_service_mux_on(
    cfg: &MutexServiceConfig,
    workers: usize,
    transport: &dyn Transport<MeMsg>,
) -> std::io::Result<ServiceReport> {
    mutex_service_impl(cfg, transport, None, spawn_mux(workers)).map(|(report, _)| report)
}

/// [`run_mutex_service_on`] under a live chaos schedule: the transport is
/// wrapped in a [`ChaosTransport`] and a [`ChaosHarness`] injects the
/// plan's fault bursts *mid-run* — state corruption, crash storms healed
/// by the supervisor's adversarially corrupted restarts, partitions and
/// drop storms — while the client workload runs. The loop continues until
/// every request is served **and** the schedule has drained (so every
/// planned burst really lands), or the time budget expires. The returned
/// [`ChaosReport`] carries the authoritative fault steps for
/// `snapstab_core::spec::analyze_me_epochs` over the merged trace.
pub fn run_mutex_service_chaos_on(
    cfg: &MutexServiceConfig,
    transport: &dyn Transport<MeMsg>,
    plan: &ChaosPlan,
) -> std::io::Result<(ServiceReport, ChaosReport)> {
    mutex_service_impl(cfg, transport, Some(plan), spawn_threads)
        .map(|(report, chaos)| (report, chaos.expect("chaos plan was given")))
}

/// [`run_mutex_service_chaos_on`] on the [`MuxRunner`] backend: the same
/// fault schedule, but crash bursts park *instances* while their pool
/// worker keeps stepping healthy neighbours, and the supervisor's wedge
/// detection reads per-instance activity counters.
pub fn run_mutex_service_chaos_mux_on(
    cfg: &MutexServiceConfig,
    workers: usize,
    transport: &dyn Transport<MeMsg>,
    plan: &ChaosPlan,
) -> std::io::Result<(ServiceReport, ChaosReport)> {
    mutex_service_impl(cfg, transport, Some(plan), spawn_mux(workers))
        .map(|(report, chaos)| (report, chaos.expect("chaos plan was given")))
}

/// The thread-per-process spawner the generic service impls default to.
pub(crate) fn spawn_threads<P>(
    processes: Vec<P>,
    drivers: Vec<Option<Driver<P>>>,
    live: LiveConfig,
    transport: &dyn Transport<P::Msg>,
) -> std::io::Result<LiveRunner<P>>
where
    P: Protocol + Send + 'static,
    P::Msg: Send,
    P::Event: Send,
{
    LiveRunner::spawn_with_transport(processes, drivers, live, transport)
}

/// A spawner for the mux backend with a fixed pool size.
#[allow(clippy::type_complexity)]
pub(crate) fn spawn_mux<P>(
    workers: usize,
) -> impl FnOnce(
    Vec<P>,
    Vec<Option<Driver<P>>>,
    LiveConfig,
    &dyn Transport<P::Msg>,
) -> std::io::Result<MuxRunner<P>>
where
    P: Protocol + Send + 'static,
    P::Msg: Send,
    P::Event: Send,
{
    move |processes, drivers, live, transport| {
        MuxRunner::spawn_with_transport(processes, drivers, live, workers, transport)
    }
}

fn mutex_service_impl<B>(
    cfg: &MutexServiceConfig,
    transport: &dyn Transport<MeMsg>,
    plan: Option<&ChaosPlan>,
    spawn: impl FnOnce(
        Vec<MeProcess>,
        Vec<Option<Driver<MeProcess>>>,
        LiveConfig,
        &dyn Transport<MeMsg>,
    ) -> std::io::Result<B>,
) -> std::io::Result<(ServiceReport, Option<ChaosReport>)>
where
    B: RuntimeBackend<MeProcess>,
{
    let n = cfg.n;
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| {
            MeProcess::with_config(
                ProcessId::new(i),
                n,
                100 + i as u64,
                MeConfig {
                    cs_duration: cfg.cs_duration,
                    ..MeConfig::default()
                },
            )
        })
        .collect();

    let total = cfg.requests_per_process * n as u64;
    let injected = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));

    let drivers: Vec<Option<Driver<MeProcess>>> = (0..n)
        .map(|_| {
            let mut remaining = cfg.requests_per_process;
            let mut outstanding: Option<Instant> = None;
            let injected = injected.clone();
            let served = served.clone();
            let latencies = latencies.clone();
            let hook: Driver<MeProcess> = Box::new(move |proc, scribe| {
                let mut progressed = false;
                if let Some(since) = outstanding {
                    if proc.request() == RequestState::Done {
                        served.fetch_add(1, Ordering::Relaxed);
                        latencies.lock().expect("latency log").push(since.elapsed());
                        outstanding = None;
                        progressed = true;
                    }
                }
                if outstanding.is_none() && remaining > 0 && proc.request() == RequestState::Done {
                    scribe.mark("request");
                    if proc.request_cs() {
                        remaining -= 1;
                        outstanding = Some(Instant::now());
                        injected.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                }
                progressed
            });
            Some(hook)
        })
        .collect();

    let record = cfg.live.record_trace;
    let chaos_transport = plan.map(|_| ChaosTransport::new(transport, n));
    let mut runner = match &chaos_transport {
        Some(ct) => spawn(processes, drivers, cfg.live.clone(), ct)?,
        None => spawn(processes, drivers, cfg.live.clone(), transport)?,
    };
    let mut harness = plan.map(|p| {
        let plane = chaos_transport.as_ref().expect("wrapped above").plane();
        ChaosHarness::new(p, plane, n, &cfg.live)
    });
    let deadline = Instant::now() + cfg.time_budget;
    loop {
        let work_done = served.load(Ordering::Relaxed) >= total;
        let chaos_done = harness.as_ref().is_none_or(|h| h.done(&runner));
        if (work_done && chaos_done) || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
        if let Some(h) = harness.as_mut() {
            h.tick(&mut runner, served.load(Ordering::Relaxed));
        }
    }
    let chaos_report = harness.map(|h| h.finish(&mut runner));
    let link_samples = runner.link_samples();
    let report = runner.stop();

    let cs_entries = report
        .processes
        .iter()
        .map(|m| m.counters().cs_entries)
        .sum();
    let latencies = std::mem::take(&mut *latencies.lock().expect("latency log"));
    Ok((
        ServiceReport {
            injected: injected.load(Ordering::Relaxed),
            served: served.load(Ordering::Relaxed),
            cs_entries,
            wall: report.wall,
            stats: report.stats,
            trace: record.then_some(report.trace),
            processes: report.processes,
            latencies,
            link_samples,
        },
        chaos_report,
    ))
}

/// Configuration of a sharded, batching mutex-service run
/// ([`run_sharded_service`]).
#[derive(Clone, Debug)]
pub struct ShardedServiceConfig {
    /// Number of processes (= worker threads). Each worker hosts every
    /// shard's sub-instance.
    pub n: usize,
    /// Number of independent protocol instances (one leader each).
    pub shards: usize,
    /// Maximum client requests served per critical-section grant.
    pub batch: usize,
    /// Client requests queued per process (all injected upfront, so the
    /// batch queues stay deep until the tail of the run). Size it by
    /// target per-shard queue depth with
    /// [`ShardedServiceConfig::with_queue_depth`].
    pub requests_per_process: u64,
    /// Resource keys are drawn uniformly from `0..key_space`; small
    /// spaces force intra-batch conflicts, large ones keep batches full.
    pub key_space: u64,
    /// Critical-section duration in activations (0 = atomic CS).
    pub cs_duration: u64,
    /// Transport and scheduling configuration.
    pub live: LiveConfig,
    /// Wall-clock budget: the run stops when every request is served or
    /// this much time has passed, whichever is first.
    pub time_budget: Duration,
}

impl ShardedServiceConfig {
    /// Returns a copy whose workload gives each per-shard client queue
    /// an initial depth of `≈ depth`: every process injects
    /// `depth * shards` requests, and the uniform hash partition spreads
    /// them `≈ depth` per shard.
    ///
    /// Shallow queues starve
    /// [`snapstab_core::request::BatchQueue::take_batch`] — with ~4
    /// requests per shard queue at `n = 64` the realized batch factor
    /// collapsed to 2.93 of 8 — so deepening them is the lever for batch
    /// efficiency at large `n`. The CLI exposes this as
    /// `snapstab live --queue-depth D`.
    pub fn with_queue_depth(mut self, depth: u64) -> Self {
        self.requests_per_process = depth * self.shards as u64;
        self
    }
}

impl Default for ShardedServiceConfig {
    fn default() -> Self {
        ShardedServiceConfig {
            n: 4,
            shards: 2,
            batch: 4,
            requests_per_process: 10,
            key_space: 1 << 16,
            cs_duration: 0,
            live: LiveConfig::default(),
            time_budget: Duration::from_secs(30),
        }
    }
}

/// Outcome of a sharded service run.
pub struct ShardedReport {
    /// Every injected client request (globally unique ids) — the audit's
    /// reference set.
    pub injected: Vec<ClientRequest>,
    /// Requests served end-to-end (batch members of observed grants).
    pub served: u64,
    /// Requests served per shard.
    pub per_shard_served: Vec<u64>,
    /// The grant log: one entry per critical-section grant, carrying its
    /// batch. [`ShardedReport::audit`] checks it.
    pub grant_log: GrantLog,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Aggregate runtime counters.
    pub stats: LiveStats,
    /// The merged sharded trace (`None` when recording was off); project
    /// per shard with [`snapstab_core::shard::project_shard_trace`].
    pub trace: Option<Trace<ShardedMeMsg, ShardedMeEvent>>,
    /// Final composite process states.
    pub processes: Vec<ShardedMe>,
    /// Per-request service latencies (batch bind to grant observation).
    pub latencies: Vec<Duration>,
}

impl ShardedReport {
    /// Served requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        self.served as f64 / self.wall.as_secs_f64()
    }

    /// Critical-section grants per second (sum over shards).
    pub fn grants_per_sec(&self) -> f64 {
        self.grant_log.len() as f64 / self.wall.as_secs_f64()
    }

    /// Transport messages enqueued per second.
    pub fn msgs_per_sec(&self) -> f64 {
        self.stats.links.enqueued as f64 / self.wall.as_secs_f64()
    }

    /// Mean requests served per grant (the realized batch factor).
    pub fn mean_batch(&self) -> f64 {
        if self.grant_log.is_empty() {
            0.0
        } else {
            self.served as f64 / self.grant_log.len() as f64
        }
    }

    /// Runs the grant-log audit: batches conflict-free, routing
    /// respected, every injected request served exactly once.
    pub fn audit(&self) -> GrantAudit {
        self.grant_log
            .audit(self.per_shard_served.len(), &self.injected)
    }

    /// The nearest-rank quantiles (each in 0.0–1.0) of the service
    /// latencies, if any request was served — one sort feeds all of them,
    /// so ask for p50 and p99 in one call.
    pub fn latency_quantiles(&self, qs: &[f64]) -> Option<Vec<Duration>> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut v = self.latencies.clone();
        v.sort_unstable();
        Some(
            qs.iter()
                .map(|q| v[((v.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize])
                .collect(),
        )
    }

    /// The `q`-quantile of the service latencies; for several quantiles
    /// prefer one [`ShardedReport::latency_quantiles`] call.
    pub fn latency_quantile(&self, q: f64) -> Option<Duration> {
        self.latency_quantiles(&[q]).map(|v| v[0])
    }

    /// `(min, mean, max)` service latency, if any request was served.
    pub fn latency_min_mean_max(&self) -> Option<(Duration, Duration, Duration)> {
        min_mean_max(&self.latencies)
    }
}

/// Runs the sharded, batching mutual-exclusion service to completion (all
/// requests served) or to the time budget.
///
/// Every worker thread hosts one [`ShardedMe`] (all `S` sub-instances);
/// its driver hook walks the shards each loop iteration: an outstanding
/// batch whose sub-instance returned to `Done` is recorded as a grant
/// (latencies timed per member), and an idle sub-instance with queued
/// requests binds the next conflict-free batch and calls `request_cs()`.
/// With `shards == 1 && batch == 1` this degenerates to exactly
/// [`run_mutex_service`]'s behaviour.
pub fn run_sharded_service(cfg: &ShardedServiceConfig) -> ShardedReport {
    run_sharded_service_on(cfg, &InMemory).expect("the in-memory transport is infallible")
}

/// [`run_sharded_service`] over an arbitrary [`Transport`] backend (e.g.
/// `snapstab-net`'s `UdpLoopback`). Fallible because a networked backend
/// binds OS resources; the in-memory path cannot fail.
pub fn run_sharded_service_on(
    cfg: &ShardedServiceConfig,
    transport: &dyn Transport<ShardedMeMsg>,
) -> std::io::Result<ShardedReport> {
    let n = cfg.n;
    let shards = cfg.shards;
    // S shards share each directed link. A naive share would let sibling
    // shards trigger the §4 drop-on-full rule against each other and
    // collapse throughput into retransmission; instead the link runs one
    // capacity lane per shard (`LiveRunner::spawn_with_drivers_laned`),
    // so every instance sees exactly a capacity-`live.capacity` channel
    // of its own and the per-instance flag domain is sized by the
    // ordinary §4 rule for that capacity (the default `live.capacity = 1`
    // keeps the paper's five flags).
    let me_config = MeConfig {
        cs_duration: cfg.cs_duration,
        flag_domain: snapstab_core::flag::FlagDomain::for_capacity(cfg.live.capacity.max(1)),
        ..MeConfig::default()
    };
    let processes: Vec<ShardedMe> = (0..n)
        .map(|i| ShardedMe::new(ProcessId::new(i), n, shards, me_config))
        .collect();

    // The deterministic request workload is built by the same helper the
    // simulator mirror uses (`shard::inject_requests`), so the sim-vs-live
    // conformance tests always compare identical streams.
    let (injected, queues) = inject_requests(
        n,
        cfg.requests_per_process,
        cfg.key_space,
        cfg.live.seed,
        shards,
        cfg.batch,
    );
    let total = injected.len() as u64;

    let served = Arc::new(AtomicU64::new(0));
    let per_shard_served: Arc<Vec<AtomicU64>> =
        Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect());
    let grant_log: Arc<Mutex<GrantLog>> = Arc::new(Mutex::new(GrantLog::new(shards)));
    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));

    let drivers: Vec<Option<Driver<ShardedMe>>> = queues
        .into_iter()
        .map(|mut shard_queues| {
            let mut outstanding: Vec<Option<(Instant, Vec<ClientRequest>)>> = vec![None; shards];
            let served = served.clone();
            let per_shard_served = per_shard_served.clone();
            let grant_log = grant_log.clone();
            let latencies = latencies.clone();
            let hook: Driver<ShardedMe> = Box::new(move |proc, scribe| {
                let mut progressed = false;
                for s in 0..proc.shard_count() {
                    if proc.shard(s).request() != RequestState::Done {
                        continue;
                    }
                    if let Some((since, batch)) = outstanding[s].take() {
                        let step = scribe.mark(shard_marker("grant", s));
                        let elapsed = since.elapsed();
                        {
                            let mut lat = latencies.lock().expect("latency log");
                            lat.extend(batch.iter().map(|_| elapsed));
                        }
                        served.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        per_shard_served[s].fetch_add(batch.len() as u64, Ordering::Relaxed);
                        grant_log
                            .lock()
                            .expect("grant log")
                            .record(s, scribe.me(), step, batch);
                        progressed = true;
                    }
                    if !shard_queues[s].is_empty() {
                        let batch = shard_queues[s].take_batch();
                        scribe.mark(shard_marker("request", s));
                        assert!(proc.shard_mut(s).request_cs(), "sub-instance was Done");
                        outstanding[s] = Some((Instant::now(), batch));
                        progressed = true;
                    }
                }
                progressed
            });
            Some(hook)
        })
        .collect();

    let record = cfg.live.record_trace;
    let runner = LiveRunner::spawn_with_transport_laned(
        processes,
        drivers,
        cfg.live.clone(),
        transport,
        shards,
        std::sync::Arc::new(|m: &ShardedMeMsg| m.shard as usize),
    )?;
    let deadline = Instant::now() + cfg.time_budget;
    while served.load(Ordering::Relaxed) < total && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = runner.stop();

    let latencies = std::mem::take(&mut *latencies.lock().expect("latency log"));
    let grant_log = std::mem::take(&mut *grant_log.lock().expect("grant log"));
    Ok(ShardedReport {
        injected,
        served: served.load(Ordering::Relaxed),
        per_shard_served: per_shard_served
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect(),
        grant_log,
        wall: report.wall,
        stats: report.stats,
        trace: record.then_some(report.trace),
        processes: report.processes,
        latencies,
    })
}

/// Configuration of a forwarding-service run
/// ([`run_forwarding_service`]).
#[derive(Clone, Debug)]
pub struct ForwardingServiceConfig {
    /// Number of processes on the line (= worker threads).
    pub n: usize,
    /// Client payloads injected per process (destinations drawn
    /// uniformly by the shared
    /// [`forward_workload`] stream).
    pub payloads_per_process: u64,
    /// Per-lane buffer capacity of every process.
    pub buffer_cap: usize,
    /// Start from adversarially pre-filled buffers: every process's
    /// lanes and hop slots are stuffed with distinct stale entries
    /// before the workers spawn
    /// ([`ForwardProcess::prefill_stale`]) — the
    /// arbitrary-initial-buffer configuration Specification 4 is judged
    /// against.
    pub prefill_stale: bool,
    /// Transport and scheduling configuration. The per-hop flag domain
    /// is sized from `live.capacity` by the §4 rule.
    pub live: LiveConfig,
    /// Wall-clock budget: the run stops when every genuine payload is
    /// delivered or this much time has passed, whichever is first.
    pub time_budget: Duration,
}

impl Default for ForwardingServiceConfig {
    fn default() -> Self {
        ForwardingServiceConfig {
            n: 4,
            payloads_per_process: 10,
            buffer_cap: 4,
            prefill_stale: false,
            live: LiveConfig::default(),
            time_budget: Duration::from_secs(30),
        }
    }
}

/// Outcome of a forwarding-service run.
pub struct ForwardingServiceReport {
    /// Genuine payloads handed to the protocol (`request_send`
    /// accepted).
    pub injected: u64,
    /// Genuine payloads delivered end-to-end at their destinations.
    pub delivered: u64,
    /// Spurious deliveries: stale pre-filled entries flushed end-to-end
    /// (allowed by Specification 4, at most once each).
    pub spurious: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Aggregate runtime counters.
    pub stats: LiveStats,
    /// The merged trace (`None` when recording was off), ready for
    /// [`snapstab_core::spec::analyze_forwarding_trace`].
    pub trace: Option<Trace<ForwardMsg, ForwardEvent>>,
    /// Final process states.
    pub processes: Vec<ForwardProcess>,
    /// Per-payload end-to-end latencies (injection to delivery at the
    /// destination).
    pub latencies: Vec<Duration>,
    /// Per-link counters sampled just before shutdown — the same
    /// drop/reorder/in-transit table for every transport backend.
    pub link_samples: Vec<crate::runner::LinkSample>,
}

impl ForwardingServiceReport {
    /// Genuine payloads delivered per second.
    pub fn payloads_per_sec(&self) -> f64 {
        self.delivered as f64 / self.wall.as_secs_f64()
    }

    /// Transport messages enqueued per second.
    pub fn msgs_per_sec(&self) -> f64 {
        self.stats.links.enqueued as f64 / self.wall.as_secs_f64()
    }

    /// `(min, mean, max)` end-to-end latency, if anything was delivered.
    pub fn latency_min_mean_max(&self) -> Option<(Duration, Duration, Duration)> {
        min_mean_max(&self.latencies)
    }
}

/// Runs the snap-stabilizing forwarding service to completion (every
/// genuine payload delivered) or to the time budget: one
/// [`ForwardProcess`] per worker thread, a per-process injection queue
/// fed by the deterministic [`forward_workload`] stream, and end-to-end
/// delivery latencies timed from injection at the source to collection
/// at the destination.
///
/// ```
/// use snapstab_runtime::{run_forwarding_service, ForwardingServiceConfig};
/// use snapstab_core::spec::analyze_forwarding_trace;
/// use std::time::Duration;
///
/// let report = run_forwarding_service(&ForwardingServiceConfig {
///     n: 3,
///     payloads_per_process: 2,
///     prefill_stale: true, // adversarial initial buffers
///     time_budget: Duration::from_secs(30),
///     ..ForwardingServiceConfig::default()
/// });
/// assert_eq!(report.delivered, 6);
/// // The merged live trace passes executable Specification 4.
/// let spec = analyze_forwarding_trace(&report.trace.unwrap(), 3);
/// assert!(spec.holds());
/// ```
pub fn run_forwarding_service(cfg: &ForwardingServiceConfig) -> ForwardingServiceReport {
    run_forwarding_service_on(cfg, &InMemory).expect("the in-memory transport is infallible")
}

/// [`run_forwarding_service`] over an arbitrary [`Transport`] backend
/// (e.g. `snapstab-net`'s `UdpLoopback`). Fallible because a networked
/// backend binds OS resources; the in-memory path cannot fail.
pub fn run_forwarding_service_on(
    cfg: &ForwardingServiceConfig,
    transport: &dyn Transport<ForwardMsg>,
) -> std::io::Result<ForwardingServiceReport> {
    forwarding_service_impl(cfg, transport, None, spawn_threads).map(|(report, _)| report)
}

/// [`run_forwarding_service`] on the event-driven [`MuxRunner`] backend:
/// every hop of the line is an instance on the pool, stepped when its
/// links carry traffic. Same workload, stamping and report shape as the
/// thread backend.
pub fn run_forwarding_service_mux(
    cfg: &ForwardingServiceConfig,
    workers: usize,
) -> ForwardingServiceReport {
    run_forwarding_service_mux_on(cfg, workers, &InMemory)
        .expect("the in-memory transport is infallible")
}

/// [`run_forwarding_service_mux`] over an arbitrary [`Transport`]
/// backend.
pub fn run_forwarding_service_mux_on(
    cfg: &ForwardingServiceConfig,
    workers: usize,
    transport: &dyn Transport<ForwardMsg>,
) -> std::io::Result<ForwardingServiceReport> {
    forwarding_service_impl(cfg, transport, None, spawn_mux(workers)).map(|(report, _)| report)
}

/// [`run_forwarding_service_on`] under a live chaos schedule (see
/// [`run_mutex_service_chaos_on`]). One forwarding-specific caveat:
/// state corruption can destroy payloads *in flight through protocol
/// buffers*, so unlike the fault-free service a chaos run may end below
/// its delivery total when the budget expires — the epoch checker
/// (`snapstab_core::spec::analyze_forwarding_epochs`) classifies those
/// payloads as interrupted at a fault boundary rather than lost.
pub fn run_forwarding_service_chaos_on(
    cfg: &ForwardingServiceConfig,
    transport: &dyn Transport<ForwardMsg>,
    plan: &ChaosPlan,
) -> std::io::Result<(ForwardingServiceReport, ChaosReport)> {
    forwarding_service_impl(cfg, transport, Some(plan), spawn_threads)
        .map(|(report, chaos)| (report, chaos.expect("chaos plan was given")))
}

/// [`run_forwarding_service_chaos_on`] on the [`MuxRunner`] backend (see
/// [`run_mutex_service_chaos_mux_on`] for the instance-level fault
/// semantics).
pub fn run_forwarding_service_chaos_mux_on(
    cfg: &ForwardingServiceConfig,
    workers: usize,
    transport: &dyn Transport<ForwardMsg>,
    plan: &ChaosPlan,
) -> std::io::Result<(ForwardingServiceReport, ChaosReport)> {
    forwarding_service_impl(cfg, transport, Some(plan), spawn_mux(workers))
        .map(|(report, chaos)| (report, chaos.expect("chaos plan was given")))
}

fn forwarding_service_impl<B>(
    cfg: &ForwardingServiceConfig,
    transport: &dyn Transport<ForwardMsg>,
    plan: Option<&ChaosPlan>,
    spawn: impl FnOnce(
        Vec<ForwardProcess>,
        Vec<Option<Driver<ForwardProcess>>>,
        LiveConfig,
        &dyn Transport<ForwardMsg>,
    ) -> std::io::Result<B>,
) -> std::io::Result<(ForwardingServiceReport, Option<ChaosReport>)>
where
    B: RuntimeBackend<ForwardProcess>,
{
    let n = cfg.n;
    let config = ForwardConfig {
        buffer_cap: cfg.buffer_cap,
        // §4: the per-hop handshake domain is sized by the channel
        // capacity the transport enforces.
        flag_domain: snapstab_core::flag::FlagDomain::for_capacity(cfg.live.capacity.max(1)),
    };
    let mut processes: Vec<ForwardProcess> = (0..n)
        .map(|i| ForwardProcess::new(ProcessId::new(i), n, config))
        .collect();
    if cfg.prefill_stale {
        let mut rng = SimRng::seed_from(cfg.live.seed ^ 0x57A1_EB0F);
        for proc in &mut processes {
            proc.prefill_stale(&mut rng);
        }
    }

    let workload = forward_workload(n, cfg.payloads_per_process, cfg.live.seed);
    let total: u64 = workload.iter().map(|w| w.len() as u64).sum();
    let injected = Arc::new(AtomicU64::new(0));
    let delivered = Arc::new(AtomicU64::new(0));
    let spurious = Arc::new(AtomicU64::new(0));
    // Injection timestamps by payload id, written at the source and read
    // at the destination (different worker threads).
    let inject_times: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));

    let drivers: Vec<Option<Driver<ForwardProcess>>> = workload
        .into_iter()
        .map(|stream| {
            let mut queue: VecDeque<_> = stream.into();
            let injected = injected.clone();
            let delivered = delivered.clone();
            let spurious = spurious.clone();
            let inject_times = inject_times.clone();
            let latencies = latencies.clone();
            let hook: Driver<ForwardProcess> = Box::new(move |proc, _scribe| {
                let mut progressed = false;
                for payload in proc.take_delivered() {
                    if payload.id & STALE_ID_BIT == 0 {
                        delivered.fetch_add(1, Ordering::Relaxed);
                        let since = inject_times.lock().expect("timestamps").remove(&payload.id);
                        if let Some(since) = since {
                            latencies.lock().expect("latency log").push(since.elapsed());
                        }
                    } else {
                        spurious.fetch_add(1, Ordering::Relaxed);
                    }
                    progressed = true;
                }
                if proc.can_inject() {
                    if let Some(&payload) = queue.front() {
                        inject_times
                            .lock()
                            .expect("timestamps")
                            .insert(payload.id, Instant::now());
                        assert!(proc.request_send(payload), "workload stays in domain");
                        queue.pop_front();
                        injected.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                }
                progressed
            });
            Some(hook)
        })
        .collect();

    let record = cfg.live.record_trace;
    let chaos_transport = plan.map(|_| ChaosTransport::new(transport, n));
    let mut runner = match &chaos_transport {
        Some(ct) => spawn(processes, drivers, cfg.live.clone(), ct)?,
        None => spawn(processes, drivers, cfg.live.clone(), transport)?,
    };
    let mut harness = plan.map(|p| {
        let plane = chaos_transport.as_ref().expect("wrapped above").plane();
        ChaosHarness::new(p, plane, n, &cfg.live)
    });
    let deadline = Instant::now() + cfg.time_budget;
    loop {
        // Recovery is judged on *any* end-to-end completion, spurious
        // flushes included — a corrupted run may finish below `total`.
        let completed = delivered.load(Ordering::Relaxed) + spurious.load(Ordering::Relaxed);
        let work_done = delivered.load(Ordering::Relaxed) >= total;
        let chaos_done = harness.as_ref().is_none_or(|h| h.done(&runner));
        if (work_done && chaos_done) || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
        if let Some(h) = harness.as_mut() {
            h.tick(&mut runner, completed);
        }
    }
    let chaos_report = harness.map(|h| h.finish(&mut runner));
    let link_samples = runner.link_samples();
    let report = runner.stop();

    let latencies = std::mem::take(&mut *latencies.lock().expect("latency log"));
    Ok((
        ForwardingServiceReport {
            injected: injected.load(Ordering::Relaxed),
            delivered: delivered.load(Ordering::Relaxed),
            spurious: spurious.load(Ordering::Relaxed),
            wall: report.wall,
            stats: report.stats,
            trace: record.then_some(report.trace),
            processes: report.processes,
            latencies,
            link_samples,
        },
        chaos_report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_core::spec::analyze_me_trace;

    #[test]
    fn small_service_serves_every_request() {
        let cfg = MutexServiceConfig {
            n: 3,
            requests_per_process: 2,
            time_budget: Duration::from_secs(45),
            ..MutexServiceConfig::default()
        };
        let report = run_mutex_service(&cfg);
        assert_eq!(report.injected, 6, "all requests injected");
        assert_eq!(report.served, 6, "all requests served");
        assert_eq!(report.latencies.len(), 6);
        assert!(report.latency_min_mean_max().is_some());
        // The merged trace passes the Specification 3 analysis.
        let trace = report.trace.expect("recording on by default");
        let me = analyze_me_trace(&trace, cfg.n);
        assert!(
            me.exclusivity_holds(),
            "genuine CS overlaps: {:?}",
            me.genuine_overlaps
        );
        assert_eq!(me.served.len(), 6);
        assert!(me.all_served());
    }

    #[test]
    fn sharded_service_serves_audits_and_batches() {
        let cfg = ShardedServiceConfig {
            n: 3,
            shards: 2,
            batch: 3,
            requests_per_process: 6,
            key_space: 4, // small space: conflicts must be split across grants
            time_budget: Duration::from_secs(45),
            ..ShardedServiceConfig::default()
        };
        let report = run_sharded_service(&cfg);
        assert_eq!(report.served, 18, "all requests served");
        assert_eq!(report.latencies.len(), 18);
        let audit = report.audit();
        assert!(audit.holds(), "{audit:?}");
        assert_eq!(
            report.per_shard_served.iter().sum::<u64>(),
            report.served,
            "per-shard counters add up"
        );
        assert!(report.mean_batch() >= 1.0);
        assert!(report.latency_quantile(0.5) <= report.latency_quantile(0.99));
        // Per-shard Specification 3 on the projected merged trace.
        let trace = report.trace.expect("recording on by default");
        for s in 0..cfg.shards {
            let shard_trace = snapstab_core::shard::project_shard_trace(&trace, s);
            let me = analyze_me_trace(&shard_trace, cfg.n);
            assert!(
                me.exclusivity_holds(),
                "shard {s} genuine CS overlap: {:?}",
                me.genuine_overlaps
            );
            assert!(me.all_served(), "shard {s} unserved: {:?}", me.unserved);
        }
    }

    #[test]
    fn sharded_service_with_one_shard_one_batch_degenerates() {
        let cfg = ShardedServiceConfig {
            n: 3,
            shards: 1,
            batch: 1,
            requests_per_process: 2,
            live: LiveConfig {
                record_trace: false,
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(45),
            ..ShardedServiceConfig::default()
        };
        let report = run_sharded_service(&cfg);
        assert_eq!(report.served, 6);
        assert_eq!(
            report.grant_log.len(),
            6,
            "one grant per request when batch=1"
        );
        assert!((report.mean_batch() - 1.0).abs() < 1e-9);
        assert!(report.audit().holds());
        assert!(report.trace.is_none());
    }

    #[test]
    fn queue_depth_overrides_requests_per_process() {
        let cfg = ShardedServiceConfig {
            n: 3,
            shards: 2,
            batch: 2,
            requests_per_process: 1, // overwritten by with_queue_depth
            live: LiveConfig {
                record_trace: false,
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(45),
            ..ShardedServiceConfig::default()
        }
        .with_queue_depth(3);
        assert_eq!(cfg.requests_per_process, 6, "depth 3 × 2 shards");
        let report = run_sharded_service(&cfg);
        // 3 processes × (queue_depth 3 × 2 shards) requests each.
        assert_eq!(report.injected.len(), 18);
        assert_eq!(report.served, 18);
        assert!(report.audit().holds());
    }

    #[test]
    fn forwarding_service_delivers_everything() {
        let cfg = ForwardingServiceConfig {
            n: 3,
            payloads_per_process: 3,
            time_budget: Duration::from_secs(45),
            ..ForwardingServiceConfig::default()
        };
        let report = run_forwarding_service(&cfg);
        assert_eq!(report.injected, 9);
        assert_eq!(report.delivered, 9);
        assert_eq!(report.spurious, 0, "clean start flushes nothing");
        assert_eq!(report.latencies.len(), 9);
        assert!(report.latency_min_mean_max().is_some());
        assert!(report.payloads_per_sec() > 0.0);
        let trace = report.trace.expect("recording on by default");
        let spec = snapstab_core::spec::analyze_forwarding_trace(&trace, cfg.n);
        assert!(spec.holds(), "{spec:?}");
        assert_eq!(spec.delivered.len(), 9);
    }

    #[test]
    fn forwarding_service_with_stale_buffers_and_loss_still_holds() {
        let cfg = ForwardingServiceConfig {
            n: 4,
            payloads_per_process: 2,
            buffer_cap: 2,
            prefill_stale: true,
            live: LiveConfig {
                loss: 0.2,
                seed: 0xF0D,
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(45),
        };
        let report = run_forwarding_service(&cfg);
        assert_eq!(report.delivered, 8, "all genuine payloads delivered");
        assert!(report.stats.links.lost_in_transit > 0, "loss was active");
        let trace = report.trace.expect("recording on by default");
        let spec = snapstab_core::spec::analyze_forwarding_trace(&trace, cfg.n);
        assert!(spec.holds(), "{spec:?}");
    }

    #[test]
    fn chaos_mutex_service_serves_and_epochs_hold() {
        use crate::chaos::{ChaosMix, ChaosPlan};
        let cfg = MutexServiceConfig {
            n: 3,
            requests_per_process: 4,
            live: LiveConfig {
                seed: 3,
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(60),
            ..MutexServiceConfig::default()
        };
        let plan = ChaosPlan {
            bursts: 2,
            quiet: Duration::from_millis(25),
            disruption: Duration::from_millis(15),
            ..ChaosPlan::profile(ChaosMix::All, 3)
        };
        let (report, chaos) =
            run_mutex_service_chaos_on(&cfg, &InMemory, &plan).expect("in-memory");
        assert_eq!(report.served, 12, "every request served despite chaos");
        assert_eq!(chaos.bursts_fired, 2, "both bursts landed mid-run");
        assert!(!chaos.fault_steps.is_empty(), "corruption was injected");
        let trace = report.trace.expect("recording on by default");
        let epochs = snapstab_core::spec::analyze_me_epochs(&trace, cfg.n, &chaos.fault_steps);
        assert!(
            epochs.holds(),
            "per-epoch Specification 3 verdict: {epochs:?}"
        );
        assert_eq!(epochs.epochs_checked(), chaos.fault_steps.len() + 1);
    }

    #[test]
    fn lossy_service_still_serves() {
        let cfg = MutexServiceConfig {
            n: 3,
            requests_per_process: 1,
            live: LiveConfig {
                loss: 0.2,
                seed: 11,
                record_trace: false,
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(45),
            ..MutexServiceConfig::default()
        };
        let report = run_mutex_service(&cfg);
        assert_eq!(report.served, 3, "all requests served under 20% loss");
        assert!(report.stats.links.lost_in_transit > 0);
        assert!(report.trace.is_none());
        assert!(report.requests_per_sec() > 0.0);
        assert!(report.msgs_per_sec() > 0.0);
        assert!(report.cs_per_sec() > 0.0);
    }
}
