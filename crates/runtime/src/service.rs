//! `MutexService` — a mutual-exclusion service absorbing a client
//! request stream over the live runtime.
//!
//! The service runs one [`MeProcess`] (Algorithm 3) per worker thread and
//! gives every worker a driver hook holding a queue of client
//! critical-section requests: whenever the process's `Request` variable is
//! `Done` and requests remain, the driver marks `"request"` in the log,
//! calls `request_cs()`, and times the service latency. This is the
//! front-end the ROADMAP's "heavy concurrent traffic" north star asks
//! for: a high-volume request stream served by the paper's protocol under
//! genuine thread interleavings and message loss.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use snapstab_core::me::{MeConfig, MeEvent, MeMsg, MeProcess};
use snapstab_core::request::RequestState;
use snapstab_sim::{ProcessId, Trace};

use crate::runner::{Driver, LiveConfig, LiveRunner, LiveStats};

/// Configuration of a mutex-service run.
#[derive(Clone, Debug)]
pub struct MutexServiceConfig {
    /// Number of processes (= worker threads).
    pub n: usize,
    /// Client requests queued per process.
    pub requests_per_process: u64,
    /// Critical-section duration in activations (0 = the paper's atomic
    /// CS).
    pub cs_duration: u64,
    /// Transport and scheduling configuration.
    pub live: LiveConfig,
    /// Wall-clock budget: the run stops when every request is served or
    /// this much time has passed, whichever is first.
    pub time_budget: Duration,
}

impl Default for MutexServiceConfig {
    fn default() -> Self {
        MutexServiceConfig {
            n: 4,
            requests_per_process: 10,
            cs_duration: 0,
            live: LiveConfig::default(),
            time_budget: Duration::from_secs(30),
        }
    }
}

/// Outcome of a mutex-service run.
pub struct ServiceReport {
    /// Requests handed to the protocol (`request_cs` accepted).
    pub injected: u64,
    /// Requests served end-to-end (`Request` back to `Done`).
    pub served: u64,
    /// Critical-section entries summed over all processes (includes any
    /// spurious ones from a corrupted start; equals `served` on clean
    /// starts).
    pub cs_entries: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Aggregate runtime counters.
    pub stats: LiveStats,
    /// The merged trace (`None` when recording was off).
    pub trace: Option<Trace<MeMsg, MeEvent>>,
    /// Final process states.
    pub processes: Vec<MeProcess>,
    /// Per-request service latencies (injection to `Done`).
    pub latencies: Vec<Duration>,
}

impl ServiceReport {
    /// Served requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        self.served as f64 / self.wall.as_secs_f64()
    }

    /// Critical-section entries per second.
    pub fn cs_per_sec(&self) -> f64 {
        self.cs_entries as f64 / self.wall.as_secs_f64()
    }

    /// Transport messages enqueued per second.
    pub fn msgs_per_sec(&self) -> f64 {
        self.stats.links.enqueued as f64 / self.wall.as_secs_f64()
    }

    /// `(min, mean, max)` service latency, if any request was served.
    pub fn latency_min_mean_max(&self) -> Option<(Duration, Duration, Duration)> {
        let min = *self.latencies.iter().min()?;
        let max = *self.latencies.iter().max()?;
        let mean = self.latencies.iter().sum::<Duration>() / self.latencies.len() as u32;
        Some((min, mean, max))
    }
}

/// Runs a mutual-exclusion service workload to completion (all requests
/// served) or to the time budget.
pub fn run_mutex_service(cfg: &MutexServiceConfig) -> ServiceReport {
    let n = cfg.n;
    let processes: Vec<MeProcess> = (0..n)
        .map(|i| {
            MeProcess::with_config(
                ProcessId::new(i),
                n,
                100 + i as u64,
                MeConfig {
                    cs_duration: cfg.cs_duration,
                    ..MeConfig::default()
                },
            )
        })
        .collect();

    let total = cfg.requests_per_process * n as u64;
    let injected = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));

    let drivers: Vec<Option<Driver<MeProcess>>> = (0..n)
        .map(|_| {
            let mut remaining = cfg.requests_per_process;
            let mut outstanding: Option<Instant> = None;
            let injected = injected.clone();
            let served = served.clone();
            let latencies = latencies.clone();
            let hook: Driver<MeProcess> = Box::new(move |proc, scribe| {
                let mut progressed = false;
                if let Some(since) = outstanding {
                    if proc.request() == RequestState::Done {
                        served.fetch_add(1, Ordering::Relaxed);
                        latencies.lock().expect("latency log").push(since.elapsed());
                        outstanding = None;
                        progressed = true;
                    }
                }
                if outstanding.is_none() && remaining > 0 && proc.request() == RequestState::Done {
                    scribe.mark("request");
                    if proc.request_cs() {
                        remaining -= 1;
                        outstanding = Some(Instant::now());
                        injected.fetch_add(1, Ordering::Relaxed);
                        progressed = true;
                    }
                }
                progressed
            });
            Some(hook)
        })
        .collect();

    let record = cfg.live.record_trace;
    let runner = LiveRunner::spawn_with_drivers(processes, drivers, cfg.live.clone());
    let deadline = Instant::now() + cfg.time_budget;
    while served.load(Ordering::Relaxed) < total && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = runner.stop();

    let cs_entries = report
        .processes
        .iter()
        .map(|m| m.counters().cs_entries)
        .sum();
    let latencies = std::mem::take(&mut *latencies.lock().expect("latency log"));
    ServiceReport {
        injected: injected.load(Ordering::Relaxed),
        served: served.load(Ordering::Relaxed),
        cs_entries,
        wall: report.wall,
        stats: report.stats,
        trace: record.then_some(report.trace),
        processes: report.processes,
        latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_core::spec::analyze_me_trace;

    #[test]
    fn small_service_serves_every_request() {
        let cfg = MutexServiceConfig {
            n: 3,
            requests_per_process: 2,
            time_budget: Duration::from_secs(45),
            ..MutexServiceConfig::default()
        };
        let report = run_mutex_service(&cfg);
        assert_eq!(report.injected, 6, "all requests injected");
        assert_eq!(report.served, 6, "all requests served");
        assert_eq!(report.latencies.len(), 6);
        assert!(report.latency_min_mean_max().is_some());
        // The merged trace passes the Specification 3 analysis.
        let trace = report.trace.expect("recording on by default");
        let me = analyze_me_trace(&trace, cfg.n);
        assert!(
            me.exclusivity_holds(),
            "genuine CS overlaps: {:?}",
            me.genuine_overlaps
        );
        assert_eq!(me.served.len(), 6);
        assert!(me.all_served());
    }

    #[test]
    fn lossy_service_still_serves() {
        let cfg = MutexServiceConfig {
            n: 3,
            requests_per_process: 1,
            live: LiveConfig {
                loss: 0.2,
                seed: 11,
                record_trace: false,
                ..LiveConfig::default()
            },
            time_budget: Duration::from_secs(45),
            ..MutexServiceConfig::default()
        };
        let report = run_mutex_service(&cfg);
        assert_eq!(report.served, 3, "all requests served under 20% loss");
        assert!(report.stats.links.lost_in_transit > 0);
        assert!(report.trace.is_none());
        assert!(report.requests_per_sec() > 0.0);
        assert!(report.msgs_per_sec() > 0.0);
        assert!(report.cs_per_sec() > 0.0);
    }
}
