//! `LiveLink` — one concurrent directed FIFO channel with the paper's
//! semantics.
//!
//! A live link is the thread-safe counterpart of the simulator's
//! [`snapstab_sim::Channel`]: bounded capacity with the §4 silent
//! drop-on-full rule, FIFO delivery order, seeded probabilistic in-transit
//! loss (the paper's fair-lossy channels: loss probability is strictly
//! below 1, so infinitely many sends imply infinitely many receipts), and
//! an optional uniform delivery-delay jitter that widens the set of real
//! interleavings a run explores.
//!
//! The queue lives behind a [`Mutex`]; the receiving worker parks when it
//! has nothing to do and the link unparks it on every successful enqueue,
//! so delivery latency is bounded by a thread wake-up, not a poll
//! interval.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::thread::Thread;
use std::time::{Duration, Instant};

use snapstab_sim::{ProcessId, SendFate, SimRng};

/// Classifies messages into capacity lanes — see [`LiveLink::with_lanes`].
pub type LaneOf<M> = Arc<dyn Fn(&M) -> usize + Send + Sync>;

/// Cumulative counters of one directed link.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LinkStats {
    /// Send attempts offered to the link.
    pub sends: u64,
    /// Messages that entered the queue.
    pub enqueued: u64,
    /// Messages lost to the §4 drop-on-full rule.
    pub lost_full: u64,
    /// Messages lost in transit by the loss model.
    pub lost_in_transit: u64,
    /// Messages dropped by a networked receiver to preserve FIFO order:
    /// out-of-order or duplicate datagrams (always 0 for [`LiveLink`],
    /// whose queue cannot reorder).
    pub lost_reorder: u64,
    /// Messages handed to the receiver.
    pub delivered: u64,
}

impl LinkStats {
    /// Folds another link's counters into this one.
    pub fn absorb(&mut self, other: LinkStats) {
        self.sends += other.sends;
        self.enqueued += other.enqueued;
        self.lost_full += other.lost_full;
        self.lost_in_transit += other.lost_in_transit;
        self.lost_reorder += other.lost_reorder;
        self.delivered += other.delivered;
    }
}

struct LinkInner<M> {
    /// In-flight messages with the instant they become deliverable
    /// (`None` = immediately) and the lane they occupy.
    queue: VecDeque<(M, Option<Instant>, usize)>,
    /// Current occupancy per lane; the §4 capacity bound is enforced
    /// against the message's lane, not the whole queue.
    lane_len: Vec<usize>,
    /// Per-link loss/jitter stream, seeded from the runtime seed and the
    /// link's endpoints, so the sequence of loss decisions on a link is
    /// reproducible regardless of thread timing.
    rng: SimRng,
    stats: LinkStats,
    /// The receiving worker's thread, unparked on enqueue. Re-registered
    /// on worker restart.
    receiver: Option<Thread>,
}

/// A concurrent directed FIFO channel `from → to` with bounded capacity,
/// drop-on-full, seeded probabilistic loss and optional delivery jitter.
///
/// ```
/// use snapstab_runtime::LiveLink;
/// use snapstab_sim::{ProcessId, SendFate};
///
/// // A capacity-2 lossless link: FIFO, with the §4 silent drop-on-full.
/// let link: LiveLink<u32> = LiveLink::new(ProcessId::new(0), ProcessId::new(1), 2, 0.0, None, 42);
/// assert_eq!(link.send(10), SendFate::Enqueued);
/// assert_eq!(link.send(20), SendFate::Enqueued);
/// assert_eq!(link.send(30), SendFate::LostFull); // the sender is not told
/// assert_eq!(link.try_recv(), Some(10));
/// assert_eq!(link.try_recv(), Some(20));
/// assert_eq!(link.try_recv(), None);
/// assert_eq!(link.stats().lost_full, 1);
/// ```
pub struct LiveLink<M> {
    from: ProcessId,
    to: ProcessId,
    /// Capacity **per lane** (single-lane links: the plain §4 capacity).
    capacity: usize,
    loss: f64,
    jitter: Option<Duration>,
    /// Maps a message to its lane; `None` = everything in lane 0.
    lane_of: Option<LaneOf<M>>,
    lanes: usize,
    inner: Mutex<LinkInner<M>>,
}

impl<M> LiveLink<M> {
    /// Creates an empty link.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (the model requires every channel to
    /// carry at least one message) or `loss` is outside `[0, 1)` (loss
    /// probability 1 would violate the paper's fairness assumption).
    pub fn new(
        from: ProcessId,
        to: ProcessId,
        capacity: usize,
        loss: f64,
        jitter: Option<Duration>,
        seed: u64,
    ) -> Self {
        Self::build(from, to, capacity, loss, jitter, seed, 1, None)
    }

    /// Creates an empty **multi-lane** link: one FIFO queue shared by
    /// `lanes` message classes, with the §4 capacity bound (and its
    /// silent drop-on-full) enforced *per lane*. `lane_of` classifies
    /// each message; out-of-range lanes clamp to the last lane.
    ///
    /// This is how the sharded mutex service shares one physical link per
    /// ordered process pair among `S` independent protocol instances:
    /// every instance sees exactly a capacity-`capacity` channel of its
    /// own (so the paper's flag-domain sizing still applies per
    /// instance), while delivery order stays FIFO overall — and therefore
    /// FIFO within each lane.
    ///
    /// # Panics
    ///
    /// As [`LiveLink::new`]; additionally if `lanes` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn with_lanes(
        from: ProcessId,
        to: ProcessId,
        capacity: usize,
        loss: f64,
        jitter: Option<Duration>,
        seed: u64,
        lanes: usize,
        lane_of: LaneOf<M>,
    ) -> Self {
        Self::build(from, to, capacity, loss, jitter, seed, lanes, Some(lane_of))
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        from: ProcessId,
        to: ProcessId,
        capacity: usize,
        loss: f64,
        jitter: Option<Duration>,
        seed: u64,
        lanes: usize,
        lane_of: Option<LaneOf<M>>,
    ) -> Self {
        crate::transport::assert_channel_domain(capacity, loss, lanes);
        let link_seed = crate::transport::link_seed(seed, from, to);
        LiveLink {
            from,
            to,
            capacity,
            loss,
            jitter,
            lane_of,
            lanes,
            inner: Mutex::new(LinkInner {
                queue: VecDeque::with_capacity((capacity * lanes).min(64)),
                lane_len: vec![0; lanes],
                rng: SimRng::seed_from(link_seed),
                stats: LinkStats::default(),
                receiver: None,
            }),
        }
    }

    /// Sender side of the link.
    pub fn from(&self) -> ProcessId {
        self.from
    }

    /// Receiver side of the link.
    pub fn to(&self) -> ProcessId {
        self.to
    }

    /// Registers (or replaces, after a worker restart) the receiving
    /// thread to unpark on enqueue.
    pub fn register_receiver(&self, receiver: Thread) {
        self.inner.lock().expect("link poisoned").receiver = Some(receiver);
    }

    /// Offers a message: the loss model may destroy it in transit, a full
    /// queue silently drops it (§4), otherwise it is enqueued (with a
    /// jittered ready instant when configured) and the receiver is
    /// unparked. Never blocks beyond the queue mutex.
    pub fn send(&self, msg: M) -> SendFate {
        let lane = self
            .lane_of
            .as_ref()
            .map(|f| f(&msg).min(self.lanes - 1))
            .unwrap_or(0);
        let wake;
        let fate;
        {
            let mut inner = self.inner.lock().expect("link poisoned");
            inner.stats.sends += 1;
            if self.loss > 0.0 && inner.rng.gen_bool(self.loss) {
                inner.stats.lost_in_transit += 1;
                return SendFate::LostInTransit;
            }
            if inner.lane_len[lane] >= self.capacity {
                inner.stats.lost_full += 1;
                return SendFate::LostFull;
            }
            let ready = self.jitter.map(|j| {
                let span = j.as_nanos().max(1) as usize;
                Instant::now() + Duration::from_nanos(inner.rng.gen_range(0..span) as u64)
            });
            inner.queue.push_back((msg, ready, lane));
            inner.lane_len[lane] += 1;
            inner.stats.enqueued += 1;
            wake = inner.receiver.clone();
            fate = SendFate::Enqueued;
        }
        if let Some(t) = wake {
            t.unpark();
        }
        fate
    }

    /// Removes and returns the head message if one is present and its
    /// jittered ready instant has passed.
    pub fn try_recv(&self) -> Option<M> {
        let mut inner = self.inner.lock().expect("link poisoned");
        match inner.queue.front() {
            None => None,
            Some((_, Some(ready), _)) if Instant::now() < *ready => None,
            Some(_) => {
                let (m, _, lane) = inner.queue.pop_front().expect("front checked");
                inner.lane_len[lane] -= 1;
                inner.stats.delivered += 1;
                Some(m)
            }
        }
    }

    /// Number of messages currently in flight.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("link poisoned").queue.len()
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the cumulative counters.
    pub fn stats(&self) -> LinkStats {
        self.inner.lock().expect("link poisoned").stats
    }
}

/// `LiveLink` is the in-memory [`Link`](crate::Link) backend — every
/// trait method forwards to the inherent one.
impl<M: Send> crate::transport::Link<M> for LiveLink<M> {
    fn from(&self) -> ProcessId {
        self.from
    }

    fn to(&self) -> ProcessId {
        self.to
    }

    fn register_receiver(&self, receiver: Thread) {
        LiveLink::register_receiver(self, receiver);
    }

    fn send(&self, msg: M) -> SendFate {
        LiveLink::send(self, msg)
    }

    fn try_recv(&self) -> Option<M> {
        LiveLink::try_recv(self)
    }

    fn len(&self) -> usize {
        LiveLink::len(self)
    }

    fn stats(&self) -> LinkStats {
        LiveLink::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn fifo_order_and_drop_on_full() {
        let link: LiveLink<u32> = LiveLink::new(p(0), p(1), 2, 0.0, None, 7);
        assert_eq!(link.send(1), SendFate::Enqueued);
        assert_eq!(link.send(2), SendFate::Enqueued);
        assert_eq!(link.send(3), SendFate::LostFull, "silent drop on full");
        assert_eq!(link.try_recv(), Some(1));
        assert_eq!(link.try_recv(), Some(2));
        assert_eq!(link.try_recv(), None);
        let s = link.stats();
        assert_eq!(
            (s.sends, s.enqueued, s.lost_full, s.delivered),
            (3, 2, 1, 2)
        );
    }

    #[test]
    fn probabilistic_loss_is_roughly_p_and_seeded() {
        let run = |seed| {
            let link: LiveLink<u32> = LiveLink::new(p(0), p(1), usize::MAX, 0.3, None, seed);
            for i in 0..10_000 {
                let _ = link.send(i);
                let _ = link.try_recv();
            }
            link.stats().lost_in_transit
        };
        let lost = run(1);
        assert!((2_500..3_500).contains(&lost), "lost {lost} of 10000");
        assert_eq!(lost, run(1), "same seed, same loss sequence");
        assert_ne!(lost, run(2), "different seed, different sequence");
    }

    #[test]
    fn jitter_delays_delivery_but_not_forever() {
        let link: LiveLink<u32> =
            LiveLink::new(p(0), p(1), 1, 0.0, Some(Duration::from_millis(2)), 3);
        assert_eq!(link.send(9), SendFate::Enqueued);
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            if let Some(m) = link.try_recv() {
                assert_eq!(m, 9);
                break;
            }
            assert!(
                Instant::now() < deadline,
                "jittered message never became ready"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn lanes_enforce_capacity_independently_and_keep_fifo() {
        // Two lanes of capacity 1: even lane for even payloads.
        let lane_of: super::LaneOf<u32> = Arc::new(|m: &u32| (*m % 2) as usize);
        let link: LiveLink<u32> = LiveLink::with_lanes(p(0), p(1), 1, 0.0, None, 5, 2, lane_of);
        assert_eq!(link.send(2), SendFate::Enqueued); // lane 0
        assert_eq!(link.send(3), SendFate::Enqueued); // lane 1: not blocked by lane 0
        assert_eq!(link.send(4), SendFate::LostFull, "lane 0 is full");
        assert_eq!(link.send(5), SendFate::LostFull, "lane 1 is full");
        assert_eq!(link.len(), 2);
        // Global FIFO: lane 0's message went in first.
        assert_eq!(link.try_recv(), Some(2));
        // Its slot is free again while lane 1 still holds its message.
        assert_eq!(link.send(6), SendFate::Enqueued);
        assert_eq!(link.send(7), SendFate::LostFull);
        assert_eq!(link.try_recv(), Some(3));
        assert_eq!(link.try_recv(), Some(6));
        assert_eq!(link.try_recv(), None);
        let s = link.stats();
        assert_eq!((s.enqueued, s.lost_full, s.delivered), (3, 3, 3));
    }

    #[test]
    fn out_of_range_lane_clamps() {
        let lane_of: super::LaneOf<u32> = Arc::new(|m: &u32| *m as usize);
        let link: LiveLink<u32> = LiveLink::with_lanes(p(0), p(1), 1, 0.0, None, 5, 2, lane_of);
        assert_eq!(link.send(99), SendFate::Enqueued, "clamped to lane 1");
        assert_eq!(link.send(1), SendFate::LostFull, "lane 1 occupied");
        assert_eq!(link.try_recv(), Some(99));
    }

    #[test]
    fn zero_capacity_rejected() {
        let r = std::panic::catch_unwind(|| LiveLink::<u8>::new(p(0), p(1), 0, 0.0, None, 0));
        assert!(r.is_err());
    }

    #[test]
    fn full_loss_rejected() {
        let r = std::panic::catch_unwind(|| LiveLink::<u8>::new(p(0), p(1), 1, 1.0, None, 0));
        assert!(r.is_err());
    }
}
