//! `LiveLink` — one concurrent directed FIFO channel with the paper's
//! semantics.
//!
//! A live link is the thread-safe counterpart of the simulator's
//! [`snapstab_sim::Channel`]: bounded capacity with the §4 silent
//! drop-on-full rule, FIFO delivery order, seeded probabilistic in-transit
//! loss (the paper's fair-lossy channels: loss probability is strictly
//! below 1, so infinitely many sends imply infinitely many receipts), and
//! an optional uniform delivery-delay jitter that widens the set of real
//! interleavings a run explores.
//!
//! The queue lives behind a [`Mutex`]; the receiving worker parks when it
//! has nothing to do and the link unparks it on every successful enqueue,
//! so delivery latency is bounded by a thread wake-up, not a poll
//! interval.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread::Thread;
use std::time::{Duration, Instant};

use snapstab_sim::{ProcessId, SendFate, SimRng};

/// Cumulative counters of one directed link.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LinkStats {
    /// Send attempts offered to the link.
    pub sends: u64,
    /// Messages that entered the queue.
    pub enqueued: u64,
    /// Messages lost to the §4 drop-on-full rule.
    pub lost_full: u64,
    /// Messages lost in transit by the loss model.
    pub lost_in_transit: u64,
    /// Messages handed to the receiver.
    pub delivered: u64,
}

impl LinkStats {
    /// Folds another link's counters into this one.
    pub fn absorb(&mut self, other: LinkStats) {
        self.sends += other.sends;
        self.enqueued += other.enqueued;
        self.lost_full += other.lost_full;
        self.lost_in_transit += other.lost_in_transit;
        self.delivered += other.delivered;
    }
}

struct LinkInner<M> {
    /// In-flight messages with the instant they become deliverable
    /// (`None` = immediately).
    queue: VecDeque<(M, Option<Instant>)>,
    /// Per-link loss/jitter stream, seeded from the runtime seed and the
    /// link's endpoints, so the sequence of loss decisions on a link is
    /// reproducible regardless of thread timing.
    rng: SimRng,
    stats: LinkStats,
    /// The receiving worker's thread, unparked on enqueue. Re-registered
    /// on worker restart.
    receiver: Option<Thread>,
}

/// A concurrent directed FIFO channel `from → to` with bounded capacity,
/// drop-on-full, seeded probabilistic loss and optional delivery jitter.
pub struct LiveLink<M> {
    from: ProcessId,
    to: ProcessId,
    capacity: usize,
    loss: f64,
    jitter: Option<Duration>,
    inner: Mutex<LinkInner<M>>,
}

impl<M> LiveLink<M> {
    /// Creates an empty link.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (the model requires every channel to
    /// carry at least one message) or `loss` is outside `[0, 1)` (loss
    /// probability 1 would violate the paper's fairness assumption).
    pub fn new(
        from: ProcessId,
        to: ProcessId,
        capacity: usize,
        loss: f64,
        jitter: Option<Duration>,
        seed: u64,
    ) -> Self {
        assert!(capacity >= 1, "channel capacity must be at least 1");
        assert!(
            (0.0..1.0).contains(&loss),
            "loss probability must be in [0,1) to preserve fairness, got {loss}"
        );
        // Mix the endpoints into the seed so every link draws an
        // independent, reproducible stream.
        let link_seed = seed
            ^ (from.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (to.index() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        LiveLink {
            from,
            to,
            capacity,
            loss,
            jitter,
            inner: Mutex::new(LinkInner {
                queue: VecDeque::with_capacity(capacity.min(64)),
                rng: SimRng::seed_from(link_seed),
                stats: LinkStats::default(),
                receiver: None,
            }),
        }
    }

    /// Sender side of the link.
    pub fn from(&self) -> ProcessId {
        self.from
    }

    /// Receiver side of the link.
    pub fn to(&self) -> ProcessId {
        self.to
    }

    /// Registers (or replaces, after a worker restart) the receiving
    /// thread to unpark on enqueue.
    pub fn register_receiver(&self, receiver: Thread) {
        self.inner.lock().expect("link poisoned").receiver = Some(receiver);
    }

    /// Offers a message: the loss model may destroy it in transit, a full
    /// queue silently drops it (§4), otherwise it is enqueued (with a
    /// jittered ready instant when configured) and the receiver is
    /// unparked. Never blocks beyond the queue mutex.
    pub fn send(&self, msg: M) -> SendFate {
        let wake;
        let fate;
        {
            let mut inner = self.inner.lock().expect("link poisoned");
            inner.stats.sends += 1;
            if self.loss > 0.0 && inner.rng.gen_bool(self.loss) {
                inner.stats.lost_in_transit += 1;
                return SendFate::LostInTransit;
            }
            if inner.queue.len() >= self.capacity {
                inner.stats.lost_full += 1;
                return SendFate::LostFull;
            }
            let ready = self.jitter.map(|j| {
                let span = j.as_nanos().max(1) as usize;
                Instant::now() + Duration::from_nanos(inner.rng.gen_range(0..span) as u64)
            });
            inner.queue.push_back((msg, ready));
            inner.stats.enqueued += 1;
            wake = inner.receiver.clone();
            fate = SendFate::Enqueued;
        }
        if let Some(t) = wake {
            t.unpark();
        }
        fate
    }

    /// Removes and returns the head message if one is present and its
    /// jittered ready instant has passed.
    pub fn try_recv(&self) -> Option<M> {
        let mut inner = self.inner.lock().expect("link poisoned");
        match inner.queue.front() {
            None => None,
            Some((_, Some(ready))) if Instant::now() < *ready => None,
            Some(_) => {
                inner.stats.delivered += 1;
                inner.queue.pop_front().map(|(m, _)| m)
            }
        }
    }

    /// Number of messages currently in flight.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("link poisoned").queue.len()
    }

    /// True if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the cumulative counters.
    pub fn stats(&self) -> LinkStats {
        self.inner.lock().expect("link poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn fifo_order_and_drop_on_full() {
        let link: LiveLink<u32> = LiveLink::new(p(0), p(1), 2, 0.0, None, 7);
        assert_eq!(link.send(1), SendFate::Enqueued);
        assert_eq!(link.send(2), SendFate::Enqueued);
        assert_eq!(link.send(3), SendFate::LostFull, "silent drop on full");
        assert_eq!(link.try_recv(), Some(1));
        assert_eq!(link.try_recv(), Some(2));
        assert_eq!(link.try_recv(), None);
        let s = link.stats();
        assert_eq!(
            (s.sends, s.enqueued, s.lost_full, s.delivered),
            (3, 2, 1, 2)
        );
    }

    #[test]
    fn probabilistic_loss_is_roughly_p_and_seeded() {
        let run = |seed| {
            let link: LiveLink<u32> = LiveLink::new(p(0), p(1), usize::MAX, 0.3, None, seed);
            for i in 0..10_000 {
                let _ = link.send(i);
                let _ = link.try_recv();
            }
            link.stats().lost_in_transit
        };
        let lost = run(1);
        assert!((2_500..3_500).contains(&lost), "lost {lost} of 10000");
        assert_eq!(lost, run(1), "same seed, same loss sequence");
        assert_ne!(lost, run(2), "different seed, different sequence");
    }

    #[test]
    fn jitter_delays_delivery_but_not_forever() {
        let link: LiveLink<u32> =
            LiveLink::new(p(0), p(1), 1, 0.0, Some(Duration::from_millis(2)), 3);
        assert_eq!(link.send(9), SendFate::Enqueued);
        let deadline = Instant::now() + Duration::from_secs(1);
        loop {
            if let Some(m) = link.try_recv() {
                assert_eq!(m, 9);
                break;
            }
            assert!(
                Instant::now() < deadline,
                "jittered message never became ready"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn zero_capacity_rejected() {
        let r = std::panic::catch_unwind(|| LiveLink::<u8>::new(p(0), p(1), 0, 0.0, None, 0));
        assert!(r.is_err());
    }

    #[test]
    fn full_loss_rejected() {
        let r = std::panic::catch_unwind(|| LiveLink::<u8>::new(p(0), p(1), 1, 1.0, None, 0));
        assert!(r.is_err());
    }
}
