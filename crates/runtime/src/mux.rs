//! `MuxRunner` — the event-driven backend: N protocol instances
//! multiplexed over a small pool of worker threads.
//!
//! The thread-per-process backend ([`crate::LiveRunner`]) is faithful to
//! the paper's "one process per machine" model but collapses into
//! context-switch time-sharing long before the link layer saturates: at
//! n = 64 the OS spends more time switching threads than the protocols
//! spend exchanging messages. Yet a [`Protocol`] is already a step-driven
//! state machine — the simulator proves it — so nothing forces the
//! 1:1 thread mapping. This module runs the same instances, unchanged,
//! on `W` pool workers:
//!
//! * **Ready queue keyed by traffic.** When an instance's atomic action
//!   sends into a link, the *receiver* instance is pushed onto a shared
//!   ready queue (deduplicated by a per-instance flag) — the same
//!   incremental live-link trick as the simulator's `SystemView`. Pool
//!   workers steal ready instances and step them.
//! * **Periodic sweep.** Message loss, delivery jitter, driver hooks and
//!   socket transports (whose demultiplexer cannot see the ready queue)
//!   all need time-driven re-examination; an idle pool re-enqueues every
//!   live instance once per [`LiveConfig::max_backoff`] — the same
//!   cadence at which an idle thread-backend worker re-polls, so
//!   retransmission behaviour under loss matches across backends.
//! * **Same stamping, same checkers.** Every atomic action draws its
//!   ticket from the identical global step counter and logs into a
//!   per-instance [`Trace`]; [`MuxRunner::stop`] merges them exactly as
//!   the thread backend does, so Spec 1/3/4/5 judge a mux run unchanged.
//! * **Instance-level faults.** [`MuxRunner::crash`] parks an *instance*
//!   (its worker keeps serving healthy neighbours) rather than killing a
//!   thread, with the same observable semantics — state and log survive,
//!   links hold backlogged messages, `"crash"`/`"restart"` markers
//!   segment the trace — so the chaos harness drives both backends
//!   through one seam ([`crate::RuntimeBackend`]).
//!
//! An instance is stepped under its own mutex, which *is* the atomic
//! action boundary: the lock ordering is instance → ready-queue only, so
//! the pool cannot deadlock, and a harness closure
//! ([`MuxRunner::with_process_ctx`]) simply takes the lock — no command
//! channels, no 30-second timeouts.
//!
//! ```
//! use snapstab_core::idl::IdlProcess;
//! use snapstab_core::request::RequestState;
//! use snapstab_runtime::{LiveConfig, MuxRunner, RuntimeBackend};
//! use snapstab_sim::ProcessId;
//! use std::time::Duration;
//!
//! // Eight IDs-Learning instances on two pool workers.
//! let fleet: Vec<IdlProcess> = (0..8)
//!     .map(|i| IdlProcess::new(ProcessId::new(i), 8, 10 + i as u64))
//!     .collect();
//! let mut runner = MuxRunner::spawn(fleet, LiveConfig::default(), 2);
//! runner.with_process(ProcessId::new(0), |p: &mut IdlProcess| p.request_learning());
//! assert!(runner.wait_until(
//!     ProcessId::new(0),
//!     |p: &IdlProcess| p.request() == RequestState::Done,
//!     Duration::from_secs(30),
//! ));
//! let report = runner.stop();
//! assert_eq!(report.processes[0].idl().min_id(), 10);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use snapstab_sim::{Context, ProcessId, Protocol, SimRng, Trace, TraceEvent};

use crate::runner::{
    Driver, LinkSample, LiveConfig, LiveReport, LiveStats, RuntimeBackend, Scribe, TraceDetail,
    WorkerStats,
};
use crate::transport::{InMemory, LinkMatrix, Transport};

/// Everything one instance owns, guarded by its slot's mutex. Holding
/// this lock *is* executing (or suspending) the instance's atomic
/// actions.
struct InstanceCore<P: Protocol> {
    protocol: P,
    rng: SimRng,
    log: Trace<P::Msg, P::Event>,
    send_buf: Vec<(ProcessId, P::Msg)>,
    event_buf: Vec<P::Event>,
    stats: WorkerStats,
    driver: Option<Driver<P>>,
    /// Rotates the incoming-link drain origin so no sender is favoured —
    /// the same fairness device as the thread backend's worker loop.
    rotate: usize,
}

/// One protocol instance's slot in the pool.
struct InstanceSlot<P: Protocol> {
    core: Mutex<InstanceCore<P>>,
    /// True while the instance sits in the ready queue (dedup flag).
    queued: AtomicBool,
    /// True while the instance is crashed: workers skip it, the sweep
    /// does not enqueue it, its links hold backlog.
    crashed: AtomicBool,
    /// Liveness counter (deliveries + effective activations) for the
    /// supervisor's wedge detection — per *instance*, not per thread.
    activity: AtomicU64,
}

/// State shared between the pool workers and the runner handle.
struct MuxShared<P: Protocol> {
    n: usize,
    record: bool,
    detail: TraceDetail,
    counter: Arc<AtomicU64>,
    slots: Vec<InstanceSlot<P>>,
    /// Row-major `n × n` link matrix (diagonal `None`).
    links: LinkMatrix<P::Msg>,
    ready: Mutex<ReadyState>,
    available: Condvar,
    stop: AtomicBool,
    sweep_period: Duration,
}

struct ReadyState {
    queue: VecDeque<usize>,
    last_sweep: Instant,
}

impl<P> MuxShared<P>
where
    P: Protocol + Send + 'static,
    P::Msg: Send,
    P::Event: Send,
{
    fn next_step(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Pushes instance `i` onto the ready queue unless it is already
    /// there or crashed, waking one pool worker.
    fn enqueue(&self, i: usize) {
        let slot = &self.slots[i];
        if slot.crashed.load(Ordering::Acquire) {
            return;
        }
        if slot.queued.swap(true, Ordering::AcqRel) {
            return;
        }
        self.ready
            .lock()
            .expect("ready queue poisoned")
            .queue
            .push_back(i);
        self.available.notify_one();
    }

    /// Blocks until an instance is ready (or the pool is stopping).
    /// An empty queue past the sweep deadline re-enqueues every live
    /// instance — the pool's analogue of the thread backend's park
    /// timeout, covering jittered deliveries, driver polling,
    /// retransmission pacing under loss, and socket arrivals.
    fn next_ready(&self) -> Option<usize> {
        let mut st = self.ready.lock().expect("ready queue poisoned");
        loop {
            if self.stop.load(Ordering::Acquire) {
                return None;
            }
            if let Some(i) = st.queue.pop_front() {
                self.slots[i].queued.store(false, Ordering::Release);
                return Some(i);
            }
            let since = st.last_sweep.elapsed();
            if since >= self.sweep_period {
                st.last_sweep = Instant::now();
                for (i, slot) in self.slots.iter().enumerate() {
                    if !slot.crashed.load(Ordering::Acquire)
                        && !slot.queued.swap(true, Ordering::AcqRel)
                    {
                        st.queue.push_back(i);
                    }
                }
                continue;
            }
            let (guard, _) = self
                .available
                .wait_timeout(st, self.sweep_period - since)
                .expect("ready queue poisoned");
            st = guard;
        }
    }

    /// Commits the context-buffered sends and events of the atomic
    /// action stamped `step` — identical bookkeeping to the thread
    /// backend's `Worker::commit`, plus the ready-queue fast path: each
    /// receiver of an enqueued message becomes ready immediately.
    fn commit(&self, i: usize, core: &mut InstanceCore<P>, step: u64) {
        let me = ProcessId::new(i);
        for (to, msg) in core.send_buf.drain(..) {
            let link = self.links[i * self.n + to.index()]
                .as_ref()
                .expect("protocol sent to itself or out of range");
            if self.record && self.detail == TraceDetail::Full {
                let fate = link.send(msg.clone());
                core.log.push(
                    step,
                    TraceEvent::Sent {
                        from: me,
                        to,
                        msg,
                        fate,
                    },
                );
            } else {
                link.send(msg);
            }
            // Harmless when the transport lost or delayed the message:
            // the receiver steps, finds nothing, and goes quiet again.
            self.enqueue(to.index());
        }
        for event in core.event_buf.drain(..) {
            core.stats.protocol_events += 1;
            if self.record
                && (self.detail != TraceDetail::Spec || P::event_is_spec_relevant(&event))
            {
                core.log.push(step, TraceEvent::Protocol { p: me, event });
            }
        }
    }

    /// One scheduling quantum of instance `i`: drain deliverable
    /// messages (each one an atomic receive action), run the driver
    /// hook, then one activation sweep — the exact loop body of the
    /// thread backend's worker, under the instance lock instead of on a
    /// dedicated thread. Re-enqueues itself only when it made receive or
    /// driver progress, mirroring the thread backend's backoff-reset
    /// rule (an activation alone does not keep an instance hot).
    fn step_instance(&self, i: usize) {
        let slot = &self.slots[i];
        let mut guard = slot.core.lock().expect("instance poisoned");
        if slot.crashed.load(Ordering::Acquire) {
            return;
        }
        let core = &mut *guard;
        let me = ProcessId::new(i);

        let mut received = 0usize;
        let in_count = self.n - 1;
        for off in 0..in_count {
            let from = incoming_origin(i, (core.rotate + off) % in_count);
            let link = self.links[from * self.n + i]
                .as_ref()
                .expect("off-diagonal");
            while let Some(msg) = link.try_recv() {
                let step = self.next_step();
                core.stats.deliveries += 1;
                slot.activity.fetch_add(1, Ordering::Relaxed);
                if self.record && self.detail == TraceDetail::Full {
                    core.log.push(
                        step,
                        TraceEvent::Delivered {
                            from: ProcessId::new(from),
                            to: me,
                            msg: msg.clone(),
                        },
                    );
                }
                let mut ctx = Context::new(
                    me,
                    self.n,
                    step,
                    &mut core.rng,
                    &mut core.send_buf,
                    &mut core.event_buf,
                );
                core.protocol
                    .on_receive(ProcessId::new(from), msg, &mut ctx);
                self.commit(i, core, step);
                received += 1;
            }
        }
        core.rotate = core.rotate.wrapping_add(1);

        let mut drove = false;
        if let Some(mut driver) = core.driver.take() {
            let mut scribe = Scribe::new(me, &self.counter, &mut core.log, self.record);
            drove = driver(&mut core.protocol, &mut scribe);
            core.driver = Some(driver);
        }

        if core.protocol.has_enabled_action() {
            let step = self.next_step();
            core.stats.activations += 1;
            let mut ctx = Context::new(
                me,
                self.n,
                step,
                &mut core.rng,
                &mut core.send_buf,
                &mut core.event_buf,
            );
            let acted = core.protocol.activate(&mut ctx);
            if acted {
                core.stats.effective_activations += 1;
                slot.activity.fetch_add(1, Ordering::Relaxed);
            }
            if self.record {
                core.log.push(step, TraceEvent::Activated { p: me, acted });
            }
            self.commit(i, core, step);
        }

        drop(guard);
        if received > 0 || drove {
            self.enqueue(i);
        }
    }

    fn worker_loop(&self) {
        while let Some(i) = self.next_ready() {
            self.step_instance(i);
        }
    }
}

/// Maps the `k`-th incoming slot of instance `i` back to the sender
/// index (the thread backend materialises this as its `incoming` vec).
fn incoming_origin(i: usize, k: usize) -> usize {
    if k < i {
        k
    } else {
        k + 1
    }
}

/// The event-driven multiplexed runtime: `n` protocol instances stepped
/// by `workers` pool threads over the same [`Transport`]-built link
/// matrix as [`crate::LiveRunner`]. See the module docs for the design
/// and the crate docs for where it sits in the reproduction.
pub struct MuxRunner<P: Protocol> {
    shared: Arc<MuxShared<P>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    crash_noops: u64,
    restart_noops: u64,
    started: Instant,
}

impl<P: Protocol> Drop for MuxRunner<P> {
    fn drop(&mut self) {
        // Parity with the thread backend's channel-disconnect exit: a
        // dropped runner releases its pool instead of leaking spinning
        // sweeps. `stop` already joined the handles by the time it drops
        // `self`, so this second signal is an idempotent no-op there.
        self.shared.stop.store(true, Ordering::Release);
        self.shared.available.notify_all();
    }
}

impl<P> MuxRunner<P>
where
    P: Protocol + Send + 'static,
    P::Msg: Send,
    P::Event: Send,
{
    /// Spawns `workers` pool threads multiplexing the given instances
    /// over in-memory links.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two processes or zero workers are given, or
    /// the configuration is out of domain (zero capacity, loss outside
    /// `[0, 1)`).
    pub fn spawn(processes: Vec<P>, config: LiveConfig, workers: usize) -> Self {
        let drivers = processes.iter().map(|_| None).collect();
        Self::spawn_with_drivers(processes, drivers, config, workers)
    }

    /// Like [`MuxRunner::spawn`], with an optional driver hook per
    /// instance run every scheduling quantum (client workload
    /// injection).
    pub fn spawn_with_drivers(
        processes: Vec<P>,
        drivers: Vec<Option<Driver<P>>>,
        config: LiveConfig,
        workers: usize,
    ) -> Self {
        Self::spawn_with_transport(processes, drivers, config, workers, &InMemory)
            .expect("the in-memory transport is infallible")
    }

    /// Spawns the pool over an arbitrary [`Transport`] backend —
    /// in-memory links or real sockets run unchanged, exactly as under
    /// the thread backend. Fallible because a networked backend binds OS
    /// resources.
    ///
    /// # Panics
    ///
    /// See [`MuxRunner::spawn`]; additionally if the driver list length
    /// differs from the process count.
    pub fn spawn_with_transport(
        processes: Vec<P>,
        drivers: Vec<Option<Driver<P>>>,
        config: LiveConfig,
        workers: usize,
        transport: &dyn Transport<P::Msg>,
    ) -> std::io::Result<Self> {
        let n = processes.len();
        assert!(
            n >= 2,
            "a message-passing system needs at least 2 processes"
        );
        assert!(workers >= 1, "the pool needs at least one worker");
        assert_eq!(drivers.len(), n, "one driver slot per process");
        let links = transport.connect(n, &config, None)?;
        assert_eq!(links.len(), n * n, "transport built a full link matrix");
        let counter = Arc::new(AtomicU64::new(0));
        let slots: Vec<InstanceSlot<P>> = processes
            .into_iter()
            .zip(drivers)
            .enumerate()
            .map(|(i, (protocol, driver))| InstanceSlot {
                core: Mutex::new(InstanceCore {
                    protocol,
                    rng: SimRng::seed_from(
                        config.seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F),
                    ),
                    log: Trace::new(),
                    send_buf: Vec::new(),
                    event_buf: Vec::new(),
                    stats: WorkerStats::default(),
                    driver,
                    rotate: 0,
                }),
                // Born queued: the spawn-time sweep below enqueues every
                // instance, so protocols with initially enabled actions
                // (or adversarial initial state) run without waiting for
                // traffic.
                queued: AtomicBool::new(true),
                crashed: AtomicBool::new(false),
                activity: AtomicU64::new(0),
            })
            .collect();
        let shared = Arc::new(MuxShared {
            n,
            record: config.record_trace,
            detail: config.detail,
            counter,
            slots,
            links,
            ready: Mutex::new(ReadyState {
                queue: (0..n).collect(),
                last_sweep: Instant::now(),
            }),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            sweep_period: config.max_backoff,
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("snapstab-mux-{w}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn pool worker thread")
            })
            .collect();
        Ok(MuxRunner {
            shared,
            handles,
            workers,
            crash_noops: 0,
            restart_noops: 0,
            started: Instant::now(),
        })
    }

    /// Number of pool worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn push_marker(&self, p: ProcessId, core: &mut InstanceCore<P>, label: &str) {
        if self.shared.record {
            let step = self.shared.next_step();
            core.log.push_marker(step, p, label);
        }
    }
}

impl<P> RuntimeBackend<P> for MuxRunner<P>
where
    P: Protocol + Send + 'static,
    P::Msg: Send,
    P::Event: Send,
{
    fn n(&self) -> usize {
        self.shared.n
    }

    fn step_count(&self) -> u64 {
        self.shared.counter.load(Ordering::Relaxed)
    }

    fn is_crashed(&self, p: ProcessId) -> bool {
        self.shared.slots[p.index()].crashed.load(Ordering::Acquire)
    }

    fn activity(&self, p: ProcessId) -> u64 {
        self.shared.slots[p.index()]
            .activity
            .load(Ordering::Relaxed)
    }

    /// Parks instance `p`: the instance-level analogue of a crash
    /// failure. Setting the flag and then taking the instance lock waits
    /// for any in-flight atomic action to finish, so the crash lands on
    /// an action boundary — exactly where the thread backend's joined
    /// thread stops. Workers skip the instance; its links hold backlog.
    fn crash(&mut self, p: ProcessId) -> bool {
        let slot = &self.shared.slots[p.index()];
        if slot.crashed.swap(true, Ordering::AcqRel) {
            self.crash_noops += 1;
            return false;
        }
        let mut core = slot.core.lock().expect("instance poisoned");
        self.push_marker(p, &mut core, "crash");
        true
    }

    /// Unparks a crashed instance and makes it ready immediately, so it
    /// drains any backlog its links accumulated.
    fn restart(&mut self, p: ProcessId) -> bool {
        let slot = &self.shared.slots[p.index()];
        if !slot.crashed.load(Ordering::Acquire) {
            self.restart_noops += 1;
            return false;
        }
        {
            let mut core = slot.core.lock().expect("instance poisoned");
            self.push_marker(p, &mut core, "restart");
        }
        slot.crashed.store(false, Ordering::Release);
        self.shared.enqueue(p.index());
        true
    }

    fn crash_noops(&self) -> u64 {
        self.crash_noops
    }

    fn restart_noops(&self) -> u64 {
        self.restart_noops
    }

    fn link_samples(&self) -> Vec<LinkSample> {
        self.shared
            .links
            .iter()
            .flatten()
            .map(|link| LinkSample {
                from: link.from(),
                to: link.to(),
                stats: link.stats(),
                in_transit: link.len(),
            })
            .collect()
    }

    /// Runs a closure against instance `p` under its lock — atomic with
    /// respect to its protocol actions by construction, crashed or not
    /// (a crashed instance's state is directly accessible, like the
    /// thread backend's parked state). No command round-trip, no
    /// timeout.
    fn with_process_ctx<R, F>(&mut self, p: ProcessId, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut P, &mut Scribe<'_, P::Msg, P::Event>) -> R + Send + 'static,
    {
        let i = p.index();
        let slot = &self.shared.slots[i];
        let out = {
            let mut guard = slot.core.lock().expect("instance poisoned");
            let core = &mut *guard;
            let mut scribe =
                Scribe::new(p, &self.shared.counter, &mut core.log, self.shared.record);
            f(&mut core.protocol, &mut scribe)
        };
        // The closure may have enabled actions (e.g. a client request):
        // make the instance ready rather than waiting for the sweep.
        self.shared.enqueue(i);
        out
    }

    /// Stops the pool, joins the workers, and merges the per-instance
    /// logs into one step-ordered trace — the same [`LiveReport`] shape
    /// as the thread backend, so every spec checker runs unchanged.
    fn stop(mut self) -> LiveReport<P> {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            h.join().expect("pool worker panicked");
        }
        let wall = self.started.elapsed();
        let shared = self.shared.clone();
        drop(self);
        let shared = match Arc::try_unwrap(shared) {
            Ok(shared) => shared,
            Err(_) => unreachable!("workers joined and the handle dropped"),
        };
        let mut stats = LiveStats {
            steps: shared.counter.load(Ordering::Relaxed),
            ..LiveStats::default()
        };
        for link in shared.links.iter().flatten() {
            stats.links.absorb(link.stats());
        }
        let mut processes = Vec::with_capacity(shared.n);
        let mut logs = Vec::with_capacity(shared.n);
        for slot in shared.slots {
            let core = slot.core.into_inner().expect("instance poisoned");
            stats.activations += core.stats.activations;
            stats.effective_activations += core.stats.effective_activations;
            stats.deliveries += core.stats.deliveries;
            stats.protocol_events += core.stats.protocol_events;
            processes.push(core.protocol);
            logs.push(core.log);
        }
        LiveReport {
            processes,
            trace: Trace::merged(logs),
            stats,
            wall,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_core::idl::IdlProcess;
    use snapstab_core::request::RequestState;
    use snapstab_sim::SendFate;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn idl_fleet(n: usize) -> Vec<IdlProcess> {
        (0..n)
            .map(|i| IdlProcess::new(p(i), n, 10 + i as u64))
            .collect()
    }

    #[test]
    fn mux_idl_wave_decides_and_learns_ids() {
        let mut r = MuxRunner::spawn(idl_fleet(8), LiveConfig::default(), 2);
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        assert!(
            r.wait_until(
                p(0),
                |m: &IdlProcess| m.request() == RequestState::Done,
                Duration::from_secs(20),
            ),
            "mux IDL computation must decide"
        );
        let report = r.stop();
        let learner = &report.processes[0];
        assert_eq!(learner.idl().min_id(), 10);
        for i in 1..8 {
            assert_eq!(learner.idl().id_of(p(i)), 10 + i as u64);
        }
        assert!(report.stats.deliveries > 0);
    }

    #[test]
    fn mux_merged_trace_is_step_ordered_and_causal() {
        let mut r = MuxRunner::spawn(idl_fleet(5), LiveConfig::default(), 2);
        r.mark(p(0), "request");
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        assert!(r.wait_until(
            p(0),
            |m: &IdlProcess| m.request() == RequestState::Done,
            Duration::from_secs(20),
        ));
        let report = r.stop();
        let steps: Vec<u64> = report.trace.iter().map(|te| te.step).collect();
        assert!(steps.windows(2).all(|w| w[0] <= w[1]), "monotone steps");
        assert!(!report.trace.is_empty());
        let sends = report.trace.count(|e| {
            matches!(
                e,
                TraceEvent::Sent {
                    fate: SendFate::Enqueued,
                    ..
                }
            )
        });
        let delivered = report
            .trace
            .count(|e| matches!(e, TraceEvent::Delivered { .. }));
        assert!(
            delivered <= sends,
            "{delivered} deliveries from {sends} sends"
        );
    }

    #[test]
    fn mux_lossy_wave_still_decides() {
        let cfg = LiveConfig {
            loss: 0.3,
            seed: 5,
            ..LiveConfig::default()
        };
        let mut r = MuxRunner::spawn(idl_fleet(4), cfg, 2);
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        assert!(
            r.wait_until(
                p(0),
                |m: &IdlProcess| m.request() == RequestState::Done,
                Duration::from_secs(30),
            ),
            "the sweep's retransmission pacing must push the wave through 30% loss"
        );
        let report = r.stop();
        assert!(report.stats.links.lost_in_transit > 0, "loss happened");
    }

    #[test]
    fn mux_crash_blocks_wave_restart_unblocks_it() {
        let mut r = MuxRunner::spawn(idl_fleet(3), LiveConfig::default(), 2);
        r.crash(p(2));
        assert!(r.is_crashed(p(2)));
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        assert!(
            !r.wait_until(
                p(0),
                |m: &IdlProcess| m.request() == RequestState::Done,
                Duration::from_millis(300),
            ),
            "wave must stall while an instance is crashed"
        );
        r.restart(p(2));
        assert!(!r.is_crashed(p(2)));
        assert!(r.wait_until(
            p(0),
            |m: &IdlProcess| m.request() == RequestState::Done,
            Duration::from_secs(30),
        ));
        let report = r.stop();
        let markers: Vec<String> = report
            .trace
            .markers()
            .map(|(_, _, l)| l.to_string())
            .collect();
        assert!(markers.contains(&"crash".to_string()));
        assert!(markers.contains(&"restart".to_string()));
    }

    #[test]
    fn mux_crash_restart_idempotent_counted_noops() {
        let mut r = MuxRunner::spawn(idl_fleet(3), LiveConfig::default(), 1);
        assert!(!r.restart(p(1)));
        assert_eq!(RuntimeBackend::restart_noops(&r), 1);
        assert!(r.crash(p(1)));
        assert!(!r.crash(p(1)));
        assert_eq!(RuntimeBackend::crash_noops(&r), 1);
        assert!(r.is_crashed(p(1)));
        assert!(r.restart(p(1)));
        assert!(!r.restart(p(1)));
        assert_eq!(RuntimeBackend::restart_noops(&r), 2);
        assert!(!r.is_crashed(p(1)));
        r.with_process(p(1), |m: &mut IdlProcess| m.request_learning());
        assert!(r.wait_until(
            p(1),
            |m: &IdlProcess| m.request() == RequestState::Done,
            Duration::from_secs(30),
        ));
        let report = r.stop();
        let count = |label: &str| {
            report
                .trace
                .markers()
                .filter(|(_, _, l)| *l == label)
                .count()
        };
        assert_eq!(count("crash"), 1);
        assert_eq!(count("restart"), 1);
    }

    #[test]
    fn mux_single_worker_hosts_many_instances() {
        // One pool thread stepping 16 instances: the degenerate schedule
        // that maximises interleaving through one worker.
        let mut r = MuxRunner::spawn(idl_fleet(16), LiveConfig::default(), 1);
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        assert!(r.wait_until(
            p(0),
            |m: &IdlProcess| m.request() == RequestState::Done,
            Duration::from_secs(30),
        ));
        let report = r.stop();
        assert_eq!(report.processes[0].idl().min_id(), 10);
    }

    #[test]
    fn mux_activity_counter_tracks_instance_progress() {
        let mut r = MuxRunner::spawn(idl_fleet(3), LiveConfig::default(), 2);
        let before = RuntimeBackend::activity(&r, p(0));
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        assert!(r.wait_until(
            p(0),
            |m: &IdlProcess| m.request() == RequestState::Done,
            Duration::from_secs(30),
        ));
        assert!(
            RuntimeBackend::activity(&r, p(0)) > before,
            "a wave must register as instance activity"
        );
        r.stop();
    }
}
