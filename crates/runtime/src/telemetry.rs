//! `runtime::telemetry` — cut differencing, metric series, and
//! threshold alerting on top of the snapshot monitor.
//!
//! The monitor ([`crate::monitor`]) produces consistent global cuts —
//! point-in-time gauge vectors judged by Specification 5. This module
//! turns consecutive cuts into *signals*: a [`Series`] differences each
//! initiator's cut chain into [`SeriesPoint`]s carrying first-class
//! rates (served/s, queue-depth delta, in-flight drift, per-link loss
//! rate from the counter table), and an [`AlertMonitor`] watches the
//! same stream for threshold crossings — Specification 5 refusal
//! streaks, stalled served-counters, queue-depth runaway.
//!
//! Alerts are recorded as trace marks under [`ALERT_MARK_PREFIX`],
//! stamped by the initiator's driver inside the run itself, so alert
//! behavior is part of the merged trace the specifications judge (the
//! spec checkers ignore unknown marker labels; `alert:` deliberately
//! shares nothing with the trust-checked `chaos:` prefix). A
//! stalled-served alert additionally feeds the chaos supervisor as a
//! wedge signal: the harness backdates every worker's progress
//! deadline, so a worker showing no fresh activity by the next watchdog
//! pass is recycled immediately instead of waiting out the full wedge
//! deadline.
//!
//! Every emitted line — per-cut metric points, alerts, and the final
//! summary the CLI prints — shares one schema-stable JSON shape, keyed
//! by a `"type"` tag (`"cut"` / `"alert"` / `"summary"`), consumed
//! unchanged by the bench JSON parser.

use std::collections::HashMap;
use std::time::Duration;

use snapstab_sim::{ProcessId, Trace, TraceEvent};

use crate::monitor::{LiveCut, MonitorReport};
use crate::runner::LinkSample;

/// Marker-label prefix of alert trace marks. Distinct from the chaos
/// engine's trust-checked `chaos:` prefix: an alert mark is harness
/// telemetry, not an authoritative fault claim.
pub const ALERT_MARK_PREFIX: &str = "alert:";

/// What threshold an [`Alert`] crossed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AlertKind {
    /// Consecutive snapshot waves refused on one initiator's ledger —
    /// the monitor plane is being corrupted faster than it stabilizes.
    RefusalStreak,
    /// Consecutive cuts with an unchanged global served counter while
    /// work is queued — the service has stopped making progress.
    StalledServed,
    /// Consecutive cuts with strictly growing total queue depth — load
    /// is outrunning the service.
    QueueRunaway,
}

impl AlertKind {
    /// The stable tag used in marks and JSON lines.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertKind::RefusalStreak => "refusal-streak",
            AlertKind::StalledServed => "stalled-served",
            AlertKind::QueueRunaway => "queue-runaway",
        }
    }
}

/// One fired alert: which threshold, on whose cut chain, and the
/// observation that crossed it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Alert {
    /// The crossed threshold.
    pub kind: AlertKind,
    /// The initiator whose cut chain fired.
    pub initiator: ProcessId,
    /// The cut id (requester-assigned, per initiator) at the crossing.
    pub cut: u64,
    /// Consecutive observations behind the crossing.
    pub streak: u64,
    /// Kind-specific magnitude: refusals counted, the stalled served
    /// total, or the runaway queue depth.
    pub value: u64,
}

impl Alert {
    /// The trace-mark label recording this alert, e.g.
    /// `alert:refusal-streak initiator=0 cut=9 streak=3 value=3`.
    pub fn mark(&self) -> String {
        format!(
            "{}{} initiator={} cut={} streak={} value={}",
            ALERT_MARK_PREFIX,
            self.kind.as_str(),
            self.initiator.index(),
            self.cut,
            self.streak,
            self.value,
        )
    }

    /// The schema-stable JSON line of this alert.
    pub fn json_line(&self) -> String {
        format!(
            "{{\"type\":\"alert\",\"kind\":\"{}\",\"initiator\":{},\"cut\":{},\"streak\":{},\"value\":{}}}",
            self.kind.as_str(),
            self.initiator.index(),
            self.cut,
            self.streak,
            self.value,
        )
    }
}

/// Extracts the alert marks from a merged trace: `(step, process,
/// label)` for every marker under [`ALERT_MARK_PREFIX`], in step order.
/// This is how a post-hoc check (or an operator reading the trace)
/// audits that an alert really fired inside the run it claims to
/// describe.
pub fn alert_marks<M, E>(trace: &Trace<M, E>) -> Vec<(u64, ProcessId, String)> {
    trace
        .iter()
        .filter_map(|te| match &te.event {
            TraceEvent::Marker { p, label } if label.starts_with(ALERT_MARK_PREFIX) => {
                Some((te.step, *p, label.clone()))
            }
            _ => None,
        })
        .collect()
}

/// Thresholds of the [`AlertMonitor`]. A zero threshold disables that
/// alert kind.
#[derive(Clone, Copy, Debug)]
pub struct AlertConfig {
    /// Fire after this many consecutive refusals on one ledger.
    pub refusal_streak: u64,
    /// Fire after this many consecutive cuts with an unchanged served
    /// total while the queue gauges show pending work.
    pub stall_cuts: u64,
    /// Fire after this many consecutive cuts with strictly growing
    /// total queue depth.
    pub runaway_cuts: u64,
}

impl Default for AlertConfig {
    fn default() -> Self {
        AlertConfig {
            refusal_streak: 3,
            stall_cuts: 4,
            runaway_cuts: 4,
        }
    }
}

/// The per-initiator threshold state machine. The initiator's driver
/// feeds it every cut outcome as it drains the ledger; a returned
/// [`Alert`] is stamped into the trace and pushed to the harness feed.
/// Each streak fires exactly once, at the crossing.
#[derive(Clone, Debug)]
pub struct AlertMonitor {
    cfg: AlertConfig,
    initiator: ProcessId,
    refusals: u64,
    last_served: Option<u64>,
    stalled: u64,
    last_queue: Option<u64>,
    growing: u64,
}

impl AlertMonitor {
    /// A monitor for `initiator`'s cut chain with the given thresholds.
    pub fn new(initiator: ProcessId, cfg: AlertConfig) -> Self {
        AlertMonitor {
            cfg,
            initiator,
            refusals: 0,
            last_served: None,
            stalled: 0,
            last_queue: None,
            growing: 0,
        }
    }

    /// Observes a refused wave. Fires once when the streak reaches the
    /// threshold.
    pub fn on_refused(&mut self, cut: u64) -> Option<Alert> {
        self.refusals += 1;
        (self.cfg.refusal_streak > 0 && self.refusals == self.cfg.refusal_streak).then_some(Alert {
            kind: AlertKind::RefusalStreak,
            initiator: self.initiator,
            cut,
            streak: self.refusals,
            value: self.refusals,
        })
    }

    /// Observes a decided cut's global gauge totals. Resets the refusal
    /// streak; may fire stalled-served and queue-runaway alerts (both
    /// can cross on the same cut).
    pub fn on_decided(&mut self, cut: u64, served_total: u64, queue_total: u64) -> Vec<Alert> {
        self.refusals = 0;
        let mut fired = Vec::new();
        if self.last_served == Some(served_total) && queue_total > 0 {
            self.stalled += 1;
            if self.cfg.stall_cuts > 0 && self.stalled == self.cfg.stall_cuts {
                fired.push(Alert {
                    kind: AlertKind::StalledServed,
                    initiator: self.initiator,
                    cut,
                    streak: self.stalled,
                    value: served_total,
                });
            }
        } else {
            self.stalled = 0;
        }
        if self.last_queue.is_some_and(|q| queue_total > q) {
            self.growing += 1;
            if self.cfg.runaway_cuts > 0 && self.growing == self.cfg.runaway_cuts {
                fired.push(Alert {
                    kind: AlertKind::QueueRunaway,
                    initiator: self.initiator,
                    cut,
                    streak: self.growing,
                    value: queue_total,
                });
            }
        } else {
            self.growing = 0;
        }
        self.last_served = Some(served_total);
        self.last_queue = Some(queue_total);
        fired
    }
}

/// One differenced metric point: a decided cut's gauge totals plus the
/// rates against the *previous cut of the same initiator* (cuts from
/// different initiators interleave freely; each chain differences
/// independently). The first cut of a chain reports zero rates.
#[derive(Clone, PartialEq, Debug)]
pub struct SeriesPoint {
    /// The initiator whose chain this point extends.
    pub initiator: ProcessId,
    /// Requester-assigned cut id.
    pub cut: u64,
    /// Global step of the decision.
    pub step: u64,
    /// Wall-clock offset from run start when the cut surfaced.
    pub at: Duration,
    /// Request-to-surface lag of this cut.
    pub staleness: Duration,
    /// Sum of the per-process served gauges.
    pub served_total: u64,
    /// Sum of the per-process queue-depth gauges.
    pub queue_total: u64,
    /// Sum of the per-process in-flight gauges.
    pub in_flight_total: u64,
    /// Messages in transit, summed over the link table.
    pub in_transit_total: u64,
    /// Served-counter rate against the previous cut (requests/s).
    pub served_per_sec: f64,
    /// Queue-depth change against the previous cut.
    pub queue_delta: i64,
    /// In-flight change against the previous cut.
    pub in_flight_delta: i64,
    /// Fraction of send attempts lost between the two cuts' link
    /// tables (drop-on-full + in-transit loss + reorder drops).
    pub loss_rate: f64,
}

impl SeriesPoint {
    /// The schema-stable JSON line of this point.
    pub fn json_line(&self) -> String {
        format!(
            "{{\"type\":\"cut\",\"initiator\":{},\"cut\":{},\"step\":{},\"at_ms\":{:.3},\
             \"staleness_ms\":{:.3},\"served_total\":{},\"queue_total\":{},\
             \"in_flight_total\":{},\"in_transit_total\":{},\"served_per_sec\":{:.2},\
             \"queue_delta\":{},\"in_flight_delta\":{},\"loss_rate\":{:.4}}}",
            self.initiator.index(),
            self.cut,
            self.step,
            self.at.as_secs_f64() * 1e3,
            self.staleness.as_secs_f64() * 1e3,
            self.served_total,
            self.queue_total,
            self.in_flight_total,
            self.in_transit_total,
            self.served_per_sec,
            self.queue_delta,
            self.in_flight_delta,
            self.loss_rate,
        )
    }
}

/// What a [`Series`] remembers of an initiator's previous cut.
#[derive(Clone, Copy, Debug)]
struct LastCut {
    at: Duration,
    served: u64,
    queue: u64,
    in_flight: u64,
    link_sends: u64,
    link_lost: u64,
}

/// Differences a stream of decided cuts into [`SeriesPoint`]s, one
/// independent chain per initiator. Feed it every [`LiveCut`] as it
/// surfaces (the CLI's `--metrics-out` path) or post-hoc from a
/// [`MonitorReport`]'s cut list — the points are identical.
#[derive(Clone, Debug, Default)]
pub struct Series {
    last: HashMap<usize, LastCut>,
}

impl Series {
    /// An empty series (no chains yet).
    pub fn new() -> Self {
        Series::default()
    }

    /// Observes a decided cut and returns its differenced point.
    pub fn observe(&mut self, cut: &LiveCut) -> SeriesPoint {
        let served_total = cut.served_total();
        let queue_total = cut.queue_total();
        let in_flight_total = cut.in_flight_total();
        let (sends, lost) = link_loss_counters(&cut.links);
        let prev = self.last.get(&cut.initiator.index()).copied();
        let (served_per_sec, queue_delta, in_flight_delta, loss_rate) = match prev {
            Some(p) => {
                let dt = cut.at.saturating_sub(p.at).as_secs_f64();
                let served_per_sec = if dt > 0.0 {
                    served_total.saturating_sub(p.served) as f64 / dt
                } else {
                    0.0
                };
                let dsends = sends.saturating_sub(p.link_sends);
                let dlost = lost.saturating_sub(p.link_lost);
                let loss_rate = if dsends > 0 {
                    dlost as f64 / dsends as f64
                } else {
                    0.0
                };
                (
                    served_per_sec,
                    queue_total as i64 - p.queue as i64,
                    in_flight_total as i64 - p.in_flight as i64,
                    loss_rate,
                )
            }
            None => (0.0, 0, 0, 0.0),
        };
        self.last.insert(
            cut.initiator.index(),
            LastCut {
                at: cut.at,
                served: served_total,
                queue: queue_total,
                in_flight: in_flight_total,
                link_sends: sends,
                link_lost: lost,
            },
        );
        SeriesPoint {
            initiator: cut.initiator,
            cut: cut.cut,
            step: cut.step,
            at: cut.at,
            staleness: cut.staleness,
            served_total,
            queue_total,
            in_flight_total,
            in_transit_total: cut.in_transit_total(),
            served_per_sec,
            queue_delta,
            in_flight_delta,
            loss_rate,
        }
    }
}

fn link_loss_counters(links: &[LinkSample]) -> (u64, u64) {
    links.iter().fold((0, 0), |(sends, lost), l| {
        (
            sends + l.stats.sends,
            lost + l.stats.lost_full + l.stats.lost_in_transit + l.stats.lost_reorder,
        )
    })
}

/// The run-level summary JSON the CLI prints after a monitored run —
/// same schema family as the per-cut stream (`"type":"summary"`).
/// `work_per_sec` is the service-side rate (requests or payloads per
/// second, whichever the service serves).
pub fn summary_json_line(interval: Duration, report: &MonitorReport, work_per_sec: f64) -> String {
    format!(
        "{{\"type\":\"summary\",\"interval_ms\":{},\"initiators\":{},\"cuts\":{},\
         \"cuts_per_sec\":{:.2},\"refused\":{},\"mean_staleness_ms\":{:.3},\
         \"work_per_sec\":{:.1},\"alerts\":{}}}",
        interval.as_millis(),
        report.initiators,
        report.cuts.len(),
        report.cuts_per_sec(),
        report.refused,
        report
            .mean_staleness()
            .map_or(0.0, |d| d.as_secs_f64() * 1e3),
        work_per_sec,
        report.alerts.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkStats;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn digest(proc_: usize, served: u64, queue: u32) -> snapstab_core::probe::ProbeDigest {
        snapstab_core::probe::ProbeDigest {
            proc: proc_ as u16,
            queue_depth: queue,
            served,
            ..Default::default()
        }
    }

    fn sample(sends: u64, lost: u64, in_transit: usize) -> LinkSample {
        LinkSample {
            from: p(0),
            to: p(1),
            stats: LinkStats {
                sends,
                enqueued: sends - lost,
                lost_in_transit: lost,
                ..LinkStats::default()
            },
            in_transit,
        }
    }

    fn cut(initiator: usize, id: u64, at_ms: u64, served: u64, queue: u32) -> LiveCut {
        LiveCut {
            cut: id,
            initiator: p(initiator),
            step: 10 * id,
            values: vec![
                digest(0, served / 2, queue),
                digest(1, served - served / 2, 0),
            ],
            staleness: Duration::from_millis(1),
            at: Duration::from_millis(at_ms),
            links: vec![sample(100 * (id + 1), id, 2)],
        }
    }

    #[test]
    fn series_differences_consecutive_cuts_per_initiator() {
        let mut s = Series::new();
        let first = s.observe(&cut(0, 0, 100, 10, 4));
        assert_eq!(first.served_per_sec, 0.0, "first cut has no predecessor");
        assert_eq!(first.served_total, 10);
        let second = s.observe(&cut(0, 1, 600, 35, 2));
        // 25 more served over 500 ms → 50/s; queue shrank by 2.
        assert!((second.served_per_sec - 50.0).abs() < 1e-9);
        assert_eq!(second.queue_delta, -2);
        // 100 more sends, 1 more lost → 1% loss between cuts.
        assert!((second.loss_rate - 0.01).abs() < 1e-9);
        // A different initiator starts its own chain.
        let other = s.observe(&cut(1, 0, 700, 40, 2));
        assert_eq!(other.served_per_sec, 0.0);
    }

    #[test]
    fn series_point_json_line_is_schema_stable() {
        let mut s = Series::new();
        let line = s.observe(&cut(0, 0, 100, 10, 4)).json_line();
        for field in [
            "\"type\":\"cut\"",
            "\"initiator\":0",
            "\"cut\":0",
            "\"step\":0",
            "\"at_ms\":",
            "\"staleness_ms\":",
            "\"served_total\":10",
            "\"queue_total\":4",
            "\"in_flight_total\":0",
            "\"in_transit_total\":2",
            "\"served_per_sec\":",
            "\"queue_delta\":0",
            "\"in_flight_delta\":0",
            "\"loss_rate\":",
        ] {
            assert!(line.contains(field), "{field} missing from {line}");
        }
    }

    #[test]
    fn refusal_streak_fires_once_at_threshold() {
        let mut m = AlertMonitor::new(p(0), AlertConfig::default());
        assert!(m.on_refused(0).is_none());
        assert!(m.on_refused(1).is_none());
        let fired = m.on_refused(2).expect("third consecutive refusal fires");
        assert_eq!(fired.kind, AlertKind::RefusalStreak);
        assert_eq!(fired.streak, 3);
        assert!(m.on_refused(3).is_none(), "fires once per streak");
        // A decided cut resets the streak.
        m.on_decided(4, 1, 0);
        assert!(m.on_refused(5).is_none());
    }

    #[test]
    fn stalled_served_needs_pending_work() {
        let mut m = AlertMonitor::new(
            p(0),
            AlertConfig {
                stall_cuts: 2,
                ..AlertConfig::default()
            },
        );
        assert!(m.on_decided(0, 10, 5).is_empty());
        assert!(m.on_decided(1, 10, 5).is_empty(), "first stall observation");
        let fired = m.on_decided(2, 10, 5);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::StalledServed);
        // Unchanged served with an *empty* queue is quiescence, not a
        // stall.
        let mut idle = AlertMonitor::new(
            p(0),
            AlertConfig {
                stall_cuts: 2,
                ..AlertConfig::default()
            },
        );
        assert!(idle.on_decided(0, 10, 0).is_empty());
        assert!(idle.on_decided(1, 10, 0).is_empty());
        assert!(idle.on_decided(2, 10, 0).is_empty());
    }

    #[test]
    fn queue_runaway_requires_strict_growth() {
        let mut m = AlertMonitor::new(
            p(0),
            AlertConfig {
                runaway_cuts: 2,
                stall_cuts: 0,
                ..AlertConfig::default()
            },
        );
        assert!(m.on_decided(0, 1, 10).is_empty());
        assert!(m.on_decided(1, 2, 11).is_empty());
        let fired = m.on_decided(2, 3, 12);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::QueueRunaway);
        assert_eq!(fired[0].value, 12);
        // A flat observation resets the growth streak.
        assert!(m.on_decided(3, 4, 12).is_empty());
        assert!(m.on_decided(4, 5, 13).is_empty());
    }

    #[test]
    fn alert_mark_round_trips_through_a_trace() {
        let alert = Alert {
            kind: AlertKind::RefusalStreak,
            initiator: p(2),
            cut: 9,
            streak: 3,
            value: 3,
        };
        let mut trace: Trace<(), ()> = Trace::new();
        trace.push_marker(5, p(2), alert.mark());
        trace.push_marker(6, p(0), "served");
        let marks = alert_marks(&trace);
        assert_eq!(marks.len(), 1);
        assert_eq!(marks[0].0, 5);
        assert_eq!(marks[0].1, p(2));
        assert_eq!(
            marks[0].2,
            "alert:refusal-streak initiator=2 cut=9 streak=3 value=3"
        );
    }
}
