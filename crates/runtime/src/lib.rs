//! # snapstab-runtime — the paper's protocols on real OS threads
//!
//! Everything else in this reproduction runs inside the single-threaded
//! deterministic simulator (`snapstab-sim`). This crate is the *live*
//! execution substrate: the same [`Protocol`](snapstab_sim::Protocol)
//! implementations — `PifProcess`, `IdlProcess`, `MeProcess`, the apps
//! layer — run **unchanged** with one worker thread per process, joined
//! by a concurrent transport ([`LiveLink`]) that preserves the paper's
//! channel semantics:
//!
//! * **bounded capacity, silent drop-on-full** (§4): a send into a full
//!   link vanishes without notifying the sender;
//! * **FIFO order** per directed link;
//! * **seeded probabilistic loss** strictly below 1, satisfying the
//!   fair-lossy assumption (infinitely many sends ⇒ infinitely many
//!   receipts);
//! * **optional delivery-delay jitter**, widening the set of real
//!   interleavings a run explores.
//!
//! Workers reuse the simulator's [`Context`](snapstab_sim::Context) for
//! every atomic action, so protocol code cannot tell which substrate it
//! runs on. Each atomic action draws a ticket from a global atomic step
//! counter and logs its events into a per-worker
//! [`Trace`](snapstab_sim::Trace); [`LiveRunner::stop`] merges the logs
//! into one
//! step-ordered trace — a total order consistent with program order and
//! real-time causality — on which the executable specifications of
//! `snapstab_core::spec` (Safety / Correctness / Decision) judge the
//! *live* run exactly as they judge simulated ones.
//!
//! ## Quick tour
//!
//! ```
//! use snapstab_core::idl::IdlProcess;
//! use snapstab_core::request::RequestState;
//! use snapstab_runtime::{LiveConfig, LiveRunner};
//! use snapstab_sim::ProcessId;
//! use std::time::Duration;
//!
//! // Three IDs-Learning processes on three OS threads, 10% message loss.
//! let processes: Vec<IdlProcess> = (0..3)
//!     .map(|i| IdlProcess::new(ProcessId::new(i), 3, 10 + i as u64))
//!     .collect();
//! let mut runner = LiveRunner::spawn(
//!     processes,
//!     LiveConfig { loss: 0.1, seed: 42, ..LiveConfig::default() },
//! );
//! runner.with_process(ProcessId::new(0), |p: &mut IdlProcess| p.request_learning());
//! assert!(runner.wait_until(
//!     ProcessId::new(0),
//!     |p: &IdlProcess| p.request() == RequestState::Done,
//!     Duration::from_secs(30),
//! ));
//! let report = runner.stop();
//! assert_eq!(report.processes[0].idl().min_id(), 10);
//! ```
//!
//! ## The mutex service — single-leader and sharded
//!
//! [`run_mutex_service`] puts Algorithm 3 behind a client request queue:
//! every worker's driver hook injects critical-section requests as fast
//! as the protocol serves them, timing each one. `exp_rtbench` (in
//! `snapstab-bench`) and the `snapstab live` CLI subcommand drive it at
//! up to 64 threads and hundreds of thousands of requests; committed
//! throughput numbers live in `BENCH_RUNTIME.json`.
//!
//! That service is protocol-bound: one grant per leader `Value` rotation.
//! [`run_sharded_service`] multiplies the ceiling — each worker hosts `S`
//! independent protocol instances (`snapstab_core::shard::ShardedMe`,
//! leaders spread round-robin), the resource space is hash-partitioned
//! across shards, and every grant serves a batch of non-conflicting
//! client requests atomically inside one critical section:
//!
//! ```
//! use snapstab_runtime::{run_sharded_service, LiveConfig, ShardedServiceConfig};
//! use std::time::Duration;
//!
//! let report = run_sharded_service(&ShardedServiceConfig {
//!     n: 3,          // worker threads
//!     shards: 2,     // independent leaders
//!     batch: 2,      // max client requests per grant
//!     requests_per_process: 2,
//!     live: LiveConfig { seed: 7, ..LiveConfig::default() },
//!     time_budget: Duration::from_secs(30),
//!     ..ShardedServiceConfig::default()
//! });
//! assert_eq!(report.served, 6);
//! // The grant log audits the composition: conflict-free batches,
//! // correct shard routing, every request served exactly once.
//! assert!(report.audit().holds());
//! ```
//!
//! ## The forwarding service
//!
//! [`run_forwarding_service`] drives the snap-stabilizing *message
//! forwarding* protocol (`snapstab_core::forward`): every worker hosts
//! one hop of the process line, a per-process injection queue feeds
//! client payloads, and end-to-end delivery latencies are timed from
//! source to destination. Runs may start from adversarially pre-filled
//! buffers (`prefill_stale`), and the merged trace is judged by
//! executable Specification 4
//! (`snapstab_core::spec::analyze_forwarding_trace`) — the same checker
//! the simulator harness uses.
//!
//! ## Pluggable transports
//!
//! The runner is generic over its message substrate: the [`Transport`]
//! trait builds the directed [`Link`] matrix, and everything above it —
//! workers, services, trace merging, the spec checkers — is
//! backend-agnostic. [`InMemory`] (the default) wires [`LiveLink`]s;
//! `snapstab-net`'s `UdpLoopback` wires real UDP datagram sockets with
//! the same §4 semantics enforced in the receive path. Pass a backend to
//! [`LiveRunner::spawn_with_transport`], [`run_mutex_service_on`] or
//! [`run_sharded_service_on`].
//!
//! ## Two backends, one seam
//!
//! Thread-per-process is faithful to the paper's model but tops out
//! around 64 processes on commodity hardware: past that, the OS spends
//! its time context-switching. The [`mux`] module adds an event-driven
//! backend — [`MuxRunner`] multiplexes N protocol *instances* over a
//! small worker pool, scheduling them through a ready queue keyed by
//! link traffic — that runs the same protocols, transports, and trace
//! stamping unchanged at n = 1024 and beyond. Everything above the
//! runner (services, chaos, the spec checkers) is written against the
//! [`RuntimeBackend`] trait, so the backends are interchangeable; the
//! cross-backend conformance suite (`tests/mux_runtime.rs`) drives the
//! same seeded workloads through both and holds their merged traces to
//! the same specifications. Mux entry points mirror the thread ones:
//! [`run_mutex_service_mux`], [`run_forwarding_service_mux`], and their
//! `_on` / chaos variants.
//!
//! ## Crash and restart
//!
//! [`LiveRunner::crash`] joins a worker's thread mid-run (its state and
//! log survive); [`LiveRunner::restart`] respawns it on a fresh thread.
//! Because the protocols are snap-stabilizing, computations started after
//! the restart satisfy their specifications immediately — the stress
//! tests in `tests/live_runtime.rs` exercise exactly that.
//!
//! ## Chaos and supervision
//!
//! The [`chaos`] module turns "from any configuration" into a live
//! experiment: a [`ChaosEngine`] walks a seeded [`ChaosPlan`] of fault
//! bursts against a running service — mid-flight state corruption,
//! crash storms, link partitions and drop storms (the latter two through
//! [`ChaosTransport`], a [`Transport`] decorator degrading in-memory and
//! UDP links identically) — while a [`Supervisor`] watchdog detects
//! crashed or wedged workers and restarts them with *adversarially
//! corrupted* state under bounded exponential backoff. The resulting
//! [`ChaosReport`] carries the authoritative fault steps at which
//! `snapstab_core::spec::analyze_me_epochs` /
//! `analyze_forwarding_epochs` segment the merged trace, requiring the
//! paper's specifications to hold per epoch. [`run_mutex_service_chaos_on`]
//! and [`run_forwarding_service_chaos_on`] package the whole loop.
//!
//! ## Observability — monitoring cuts
//!
//! The [`monitor`] module composes any service protocol with the §4.1
//! snapshot application on the *same* transport: a [`Monitored`] process
//! multiplexes service and monitor planes over [`MonitoredMsg`], and
//! each of K configured initiators ([`MonitorConfig::initiators`])
//! periodically starts a snap-stabilizing snapshot wave — on its own
//! schedule, waves overlapping freely — that collects a consistent
//! global cut of [`ProbeDigest`] values — per-process protocol-state
//! digests, queue depths, in-flight counts — plus per-link counter
//! samples ([`LinkSample`]), without pausing any worker.
//! [`run_monitored_mutex_service`] and
//! [`run_monitored_forwarding_service`] package the wiring on the
//! thread backend; [`run_monitored_mutex_service_mux`] and
//! [`run_monitored_forwarding_service_mux`] run the same composition on
//! the multiplexed pool, so one cut spans hundreds of instances. Every
//! cut in the merged trace is judged by executable Specification 5
//! (`snapstab_core::spec::analyze_snapshot_trace`), which attributes
//! each decided cut to the ledger that requested it.
//!
//! The [`telemetry`] module turns the cut stream into first-class
//! metrics: [`Series`] differences consecutive cuts per initiator into
//! rate signals (served/s, queue-depth delta, in-flight drift, link
//! loss rate), [`AlertMonitor`] raises threshold alerts — refusal
//! streaks, stalled served counters, queue runaway — recorded as
//! `alert:` trace marks so alert behavior is itself spec-checkable, and
//! stalled-served alerts feed [`ChaosHarness::suspect_all`] as an extra
//! supervisor wedge signal. Everything streams as schema-stable JSON
//! lines ([`SeriesPoint::json_line`], [`summary_json_line`]).
//!
//! [`ProbeDigest`]: snapstab_core::probe::ProbeDigest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod link;
pub mod monitor;
pub mod mux;
pub mod runner;
pub mod service;
pub mod telemetry;
pub mod transport;

pub use chaos::{
    ChaosEngine, ChaosHarness, ChaosMix, ChaosPlan, ChaosReport, ChaosTransport, FaultPlane,
    Intervention, InterventionKind, Supervisor, SupervisorConfig,
};
pub use link::{LaneOf, LinkStats, LiveLink};
pub use monitor::{
    project_service_trace, run_monitored_forwarding_service,
    run_monitored_forwarding_service_chaos_mux_on, run_monitored_forwarding_service_chaos_on,
    run_monitored_forwarding_service_mux, run_monitored_forwarding_service_mux_on,
    run_monitored_forwarding_service_mux_with, run_monitored_forwarding_service_on,
    run_monitored_forwarding_service_with, run_monitored_mutex_service,
    run_monitored_mutex_service_chaos_mux_on, run_monitored_mutex_service_chaos_on,
    run_monitored_mutex_service_mux, run_monitored_mutex_service_mux_on,
    run_monitored_mutex_service_mux_with, run_monitored_mutex_service_on,
    run_monitored_mutex_service_with, CutOutcome, InitiatorStats, LiveCut, MonitorConfig,
    MonitorReport, Monitored, MonitoredEvent, MonitoredForwardingReport, MonitoredMsg,
    MonitoredMutexReport, MonitoredState,
};
pub use mux::MuxRunner;
pub use runner::{
    Driver, LinkSample, LiveConfig, LiveReport, LiveRunner, LiveStats, RuntimeBackend, Scribe,
    TraceDetail, WorkerStats,
};
pub use service::{
    run_forwarding_service, run_forwarding_service_chaos_mux_on, run_forwarding_service_chaos_on,
    run_forwarding_service_mux, run_forwarding_service_mux_on, run_forwarding_service_on,
    run_mutex_service, run_mutex_service_chaos_mux_on, run_mutex_service_chaos_on,
    run_mutex_service_mux, run_mutex_service_mux_on, run_mutex_service_on, run_sharded_service,
    run_sharded_service_on, ForwardingServiceConfig, ForwardingServiceReport, MutexServiceConfig,
    ServiceReport, ShardedReport, ShardedServiceConfig,
};
pub use telemetry::{
    alert_marks, summary_json_line, Alert, AlertConfig, AlertKind, AlertMonitor, Series,
    SeriesPoint, ALERT_MARK_PREFIX,
};
pub use transport::{InMemory, Link, LinkMatrix, Transport};
