//! `LiveRunner` — one worker thread per process, event-driven, over
//! pluggable [`Link`] transports (in-memory [`crate::LiveLink`]s by
//! default).
//!
//! Each worker owns its [`Protocol`] instance and loops: apply harness
//! commands, drain deliverable messages from its incoming links (each
//! delivery is one atomic receive action), run the driver hook, then
//! execute one activation if an internal action is enabled. Every atomic
//! action draws a ticket from one global [`AtomicU64`] step counter and
//! logs its events into a per-worker [`Trace`] under that step, so the
//! merged trace ([`Trace::merged`]) is a total order consistent with both
//! per-process program order and real-time cross-thread causality — which
//! is exactly what the executable specifications in `snapstab_core::spec`
//! need to judge a live run.
//!
//! Workers never spin: an iteration that made no progress parks with an
//! exponentially growing timeout (the timeout doubles as the
//! retransmission period under loss), and senders unpark the receiver on
//! every enqueue.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use snapstab_sim::{Context, ProcessId, Protocol, SimRng, Trace, TraceEvent};

use crate::link::{LaneOf, LinkStats};
use crate::transport::{InMemory, Link, LinkMatrix, Transport};

/// Construction-time configuration of a live run.
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Per-link bounded capacity (§4 known-bound regime; the paper's
    /// protocols are designed for 1). Unbounded capacity is deliberately
    /// not offered: Theorem 1 shows snap-stabilization is impossible
    /// there, and a live transport would also exhaust memory.
    pub capacity: usize,
    /// Per-message in-transit loss probability in `[0, 1)`.
    pub loss: f64,
    /// Optional maximum extra delivery delay, drawn uniformly per message.
    pub jitter: Option<Duration>,
    /// Seed for the per-link loss/jitter streams and per-worker RNGs.
    pub seed: u64,
    /// Record per-worker event logs for trace merging (benches switch
    /// this off to measure raw throughput).
    pub record_trace: bool,
    /// How much detail to record while `record_trace` is on — see
    /// [`TraceDetail`]. Scale runs, where a snap-stabilizing fleet
    /// retransmits millions of messages per second, drop to
    /// [`TraceDetail::Spec`] to keep the merged trace proportional to
    /// specification activity instead of wire traffic.
    pub detail: TraceDetail,
    /// Initial park timeout of an idle worker.
    pub min_backoff: Duration,
    /// Park timeout ceiling; also bounds the retransmission period under
    /// loss and the latency of a jittered delivery.
    pub max_backoff: Duration,
}

/// How much detail a recording run keeps in its per-worker logs — the
/// trade-off between forensic completeness and trace volume. Every
/// executable specification checker judges protocol events and markers
/// alone, so every level below [`TraceDetail::Full`] still feeds the
/// unchanged Spec 1/3/4/5 checkers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TraceDetail {
    /// Wire (`Sent`/`Delivered`) and protocol events: the full forensic
    /// trace (default).
    #[default]
    Full,
    /// Drop the wire events; keep every protocol event and marker.
    Protocol,
    /// Keep only markers and the protocol events the protocol flags as
    /// spec-relevant ([`Protocol::event_is_spec_relevant`]) — the
    /// minimal trace the checkers accept, proportional to protocol
    /// decisions instead of wave traffic.
    Spec,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            capacity: 1,
            loss: 0.0,
            jitter: None,
            seed: 0,
            record_trace: true,
            detail: TraceDetail::Full,
            min_backoff: Duration::from_micros(50),
            max_backoff: Duration::from_millis(2),
        }
    }
}

/// Logging and stepping capabilities handed to harness closures and
/// driver hooks executing *inside* a worker: the live counterpart of the
/// runner-side accessors of the simulator.
pub struct Scribe<'a, M, E> {
    me: ProcessId,
    counter: &'a AtomicU64,
    log: &'a mut Trace<M, E>,
    record: bool,
}

impl<'a, M, E> Scribe<'a, M, E> {
    /// Assembles a scribe around a worker's log — crate-internal so every
    /// backend (thread-per-process here, the multiplexed pool in
    /// [`crate::mux`]) hands closures the exact same capability surface.
    pub(crate) fn new(
        me: ProcessId,
        counter: &'a AtomicU64,
        log: &'a mut Trace<M, E>,
        record: bool,
    ) -> Self {
        Scribe {
            me,
            counter,
            log,
            record,
        }
    }

    /// The process this scribe writes for.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Records a harness marker (e.g. `"request"`) under a fresh global
    /// step, so it is totally ordered against every protocol event.
    /// Returns the step.
    pub fn mark(&mut self, label: impl Into<String>) -> u64 {
        let step = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if self.record {
            self.log.push_marker(step, self.me, label);
        }
        step
    }

    /// The number of global atomic steps taken so far (approximate while
    /// other workers run).
    pub fn step_count(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

/// A hook run once per worker-loop iteration, between message draining
/// and the activation: the injection point for client workloads (see
/// `MutexService`). Returns `true` if it made progress (keeps the worker
/// from parking this iteration).
pub type Driver<P> = Box<
    dyn FnMut(&mut P, &mut Scribe<'_, <P as Protocol>::Msg, <P as Protocol>::Event>) -> bool + Send,
>;

type WithClosure<P> =
    Box<dyn FnOnce(&mut P, &mut Scribe<'_, <P as Protocol>::Msg, <P as Protocol>::Event>) + Send>;

enum Command<P: Protocol> {
    /// Run a closure against the process, atomically with respect to its
    /// protocol actions.
    With(WithClosure<P>),
    /// Exit the worker loop, returning the worker's state.
    Stop,
}

/// Per-worker execution counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WorkerStats {
    /// Activations executed (one per enabled-action sweep).
    pub activations: u64,
    /// Activations in which at least one action ran.
    pub effective_activations: u64,
    /// Receive actions executed.
    pub deliveries: u64,
    /// Protocol events emitted.
    pub protocol_events: u64,
}

/// What a stopped worker hands back.
struct WorkerReport<P: Protocol> {
    protocol: P,
    log: Trace<P::Msg, P::Event>,
    stats: WorkerStats,
    driver: Option<Driver<P>>,
}

/// Aggregate statistics of a live run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LiveStats {
    /// Global atomic steps executed (activations + deliveries + markers).
    pub steps: u64,
    /// Sum of the workers' counters.
    pub activations: u64,
    /// Activations in which at least one action ran.
    pub effective_activations: u64,
    /// Receive actions executed.
    pub deliveries: u64,
    /// Protocol events emitted.
    pub protocol_events: u64,
    /// Sum of the links' counters.
    pub links: LinkStats,
}

/// A point-in-time observation of one directed link, taken by
/// [`LiveRunner::link_samples`] while the run is live: the cumulative
/// [`LinkStats`] counters plus the instantaneous in-transit occupancy.
/// This is the per-link half of a monitoring cut (`crate::monitor`) —
/// channel *counters* observed at sampling time, deliberately not a
/// Chandy–Lamport channel-*content* recording.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LinkSample {
    /// Sender side of the link.
    pub from: ProcessId,
    /// Receiver side of the link.
    pub to: ProcessId,
    /// Cumulative counters at sampling time.
    pub stats: LinkStats,
    /// Messages queued in the link right now.
    pub in_transit: usize,
}

/// Everything a finished live run yields: final process states, the
/// merged trace, and counters.
pub struct LiveReport<P: Protocol> {
    /// Final protocol states, in id order.
    pub processes: Vec<P>,
    /// The merged, step-ordered trace (empty when recording was off).
    pub trace: Trace<P::Msg, P::Event>,
    /// Aggregate counters.
    pub stats: LiveStats,
    /// Wall-clock duration from spawn to stop.
    pub wall: Duration,
}

struct Worker<P: Protocol> {
    me: ProcessId,
    n: usize,
    protocol: P,
    rng: SimRng,
    /// Incoming links, one per other process.
    incoming: Vec<Arc<dyn Link<P::Msg>>>,
    /// Outgoing links indexed by receiver (own slot `None`).
    outgoing: Vec<Option<Arc<dyn Link<P::Msg>>>>,
    commands: Receiver<Command<P>>,
    counter: Arc<AtomicU64>,
    /// Shared liveness counter, bumped on every delivery and effective
    /// activation so a supervisor can detect wedged workers from outside
    /// without round-tripping a command.
    activity: Arc<AtomicU64>,
    log: Trace<P::Msg, P::Event>,
    send_buf: Vec<(ProcessId, P::Msg)>,
    event_buf: Vec<P::Event>,
    record: bool,
    detail: TraceDetail,
    driver: Option<Driver<P>>,
    stats: WorkerStats,
    min_backoff: Duration,
    max_backoff: Duration,
}

impl<P> Worker<P>
where
    P: Protocol + Send + 'static,
    P::Msg: Send,
    P::Event: Send,
{
    fn next_step(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Commits the context-buffered sends and events of the atomic action
    /// stamped `step` — the live analogue of the simulator runner's
    /// `commit_context_effects`.
    fn commit(&mut self, step: u64) {
        for (to, msg) in self.send_buf.drain(..) {
            let link = self.outgoing[to.index()]
                .as_ref()
                .expect("protocol sent to itself or out of range");
            if self.record && self.detail == TraceDetail::Full {
                let fate = link.send(msg.clone());
                self.log.push(
                    step,
                    TraceEvent::Sent {
                        from: self.me,
                        to,
                        msg,
                        fate,
                    },
                );
            } else {
                link.send(msg);
            }
        }
        for event in self.event_buf.drain(..) {
            self.stats.protocol_events += 1;
            if self.record
                && (self.detail != TraceDetail::Spec || P::event_is_spec_relevant(&event))
            {
                self.log
                    .push(step, TraceEvent::Protocol { p: self.me, event });
            }
        }
    }

    fn run(mut self) -> WorkerReport<P> {
        let handle = std::thread::current();
        for link in &self.incoming {
            link.register_receiver(handle.clone());
        }
        let mut backoff = self.min_backoff;
        let mut rotate = 0usize;
        'main: loop {
            // Harness commands first: they are atomic steps of their own.
            let mut commanded = false;
            loop {
                match self.commands.try_recv() {
                    Ok(Command::With(f)) => {
                        let mut scribe = Scribe {
                            me: self.me,
                            counter: &self.counter,
                            log: &mut self.log,
                            record: self.record,
                        };
                        f(&mut self.protocol, &mut scribe);
                        commanded = true;
                    }
                    Ok(Command::Stop) | Err(TryRecvError::Disconnected) => break 'main,
                    Err(TryRecvError::Empty) => break,
                }
            }

            // Drain every deliverable message; each is one atomic receive
            // action. Rotate the starting link so no sender is favoured.
            let mut received = 0usize;
            let in_count = self.incoming.len();
            for off in 0..in_count {
                let idx = (rotate + off) % in_count;
                while let Some(msg) = self.incoming[idx].try_recv() {
                    let from = self.incoming[idx].from();
                    let step = self.next_step();
                    self.stats.deliveries += 1;
                    self.activity.fetch_add(1, Ordering::Relaxed);
                    if self.record && self.detail == TraceDetail::Full {
                        self.log.push(
                            step,
                            TraceEvent::Delivered {
                                from,
                                to: self.me,
                                msg: msg.clone(),
                            },
                        );
                    }
                    let mut ctx = Context::new(
                        self.me,
                        self.n,
                        step,
                        &mut self.rng,
                        &mut self.send_buf,
                        &mut self.event_buf,
                    );
                    self.protocol.on_receive(from, msg, &mut ctx);
                    self.commit(step);
                    received += 1;
                }
            }
            rotate = rotate.wrapping_add(1);

            // Client workload injection (e.g. the mutex service).
            let mut drove = false;
            if let Some(driver) = self.driver.as_mut() {
                let mut scribe = Scribe {
                    me: self.me,
                    counter: &self.counter,
                    log: &mut self.log,
                    record: self.record,
                };
                drove = driver(&mut self.protocol, &mut scribe);
            }

            // One activation sweep: all enabled internal actions, in
            // textual order, atomically — exactly `Protocol::activate`.
            if self.protocol.has_enabled_action() {
                let step = self.next_step();
                self.stats.activations += 1;
                let mut ctx = Context::new(
                    self.me,
                    self.n,
                    step,
                    &mut self.rng,
                    &mut self.send_buf,
                    &mut self.event_buf,
                );
                let acted = self.protocol.activate(&mut ctx);
                if acted {
                    self.stats.effective_activations += 1;
                    self.activity.fetch_add(1, Ordering::Relaxed);
                }
                if self.record {
                    self.log
                        .push(step, TraceEvent::Activated { p: self.me, acted });
                }
                self.commit(step);
            }

            if received == 0 && !commanded && !drove {
                // Nothing arrived: park until a sender or the harness
                // unparks us, or the backoff elapses (the backoff is the
                // retransmission period that keeps lossy runs live).
                std::thread::park_timeout(backoff);
                backoff = (backoff * 2).min(self.max_backoff);
            } else {
                backoff = self.min_backoff;
            }
        }
        WorkerReport {
            protocol: self.protocol,
            log: self.log,
            stats: self.stats,
            driver: self.driver,
        }
    }
}

/// A live multi-threaded run: `n` worker threads, one per process, wired
/// by `n·(n−1)` [`Link`]s (in-memory [`crate::LiveLink`]s unless a
/// different [`Transport`] is given). See the crate docs for a quick
/// tour.
///
/// ```
/// use snapstab_core::idl::IdlProcess;
/// use snapstab_core::request::RequestState;
/// use snapstab_runtime::{LiveConfig, LiveRunner};
/// use snapstab_sim::ProcessId;
/// use std::time::Duration;
///
/// let fleet: Vec<IdlProcess> = (0..3)
///     .map(|i| IdlProcess::new(ProcessId::new(i), 3, 10 + i as u64))
///     .collect();
/// let mut runner = LiveRunner::spawn(fleet, LiveConfig::default());
/// runner.with_process(ProcessId::new(0), |p: &mut IdlProcess| p.request_learning());
/// assert!(runner.wait_until(
///     ProcessId::new(0),
///     |p: &IdlProcess| p.request() == RequestState::Done,
///     Duration::from_secs(30),
/// ));
/// let report = runner.stop();
/// assert_eq!(report.processes[0].idl().min_id(), 10);
/// ```
pub struct LiveRunner<P: Protocol> {
    n: usize,
    config: LiveConfig,
    counter: Arc<AtomicU64>,
    /// Row-major `n × n` link matrix (diagonal `None`).
    links: LinkMatrix<P::Msg>,
    handles: Vec<Option<JoinHandle<WorkerReport<P>>>>,
    senders: Vec<Sender<Command<P>>>,
    /// State of workers whose thread was crashed ([`LiveRunner::crash`]),
    /// kept for [`LiveRunner::restart`] or final collection.
    parked: Vec<Option<WorkerReport<P>>>,
    /// Per-worker liveness counters (deliveries + effective activations),
    /// shared with the worker threads — see [`LiveRunner::activity`].
    activity: Vec<Arc<AtomicU64>>,
    /// Crash calls on an already-crashed worker (counted no-ops).
    crash_noops: u64,
    /// Restart calls on a live worker (counted no-ops).
    restart_noops: u64,
    started: Instant,
}

impl<P> LiveRunner<P>
where
    P: Protocol + Send + 'static,
    P::Msg: Send,
    P::Event: Send,
{
    /// Spawns one worker thread per process.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two processes are given or the configuration
    /// is out of domain (zero capacity, loss outside `[0, 1)`).
    pub fn spawn(processes: Vec<P>, config: LiveConfig) -> Self {
        let drivers = processes.iter().map(|_| None).collect();
        Self::spawn_with_drivers(processes, drivers, config)
    }

    /// Spawns one worker thread per process, each with an optional driver
    /// hook run every loop iteration (client workload injection).
    ///
    /// # Panics
    ///
    /// See [`LiveRunner::spawn`]; additionally if the driver list length
    /// differs from the process count.
    pub fn spawn_with_drivers(
        processes: Vec<P>,
        drivers: Vec<Option<Driver<P>>>,
        config: LiveConfig,
    ) -> Self {
        Self::spawn_with_transport(processes, drivers, config, &InMemory)
            .expect("the in-memory transport is infallible")
    }

    /// Like [`LiveRunner::spawn_with_drivers`], but every link is a
    /// multi-lane [`crate::LiveLink::with_lanes`]: `lane_of` classifies
    /// each message into one of `lanes` lanes, and the capacity bound
    /// (with its §4 silent drop-on-full) is enforced per lane. This is
    /// how the sharded mutex service shares one physical link per ordered
    /// process pair among independent protocol instances without letting
    /// them drop each other's messages.
    pub fn spawn_with_drivers_laned(
        processes: Vec<P>,
        drivers: Vec<Option<Driver<P>>>,
        config: LiveConfig,
        lanes: usize,
        lane_of: LaneOf<P::Msg>,
    ) -> Self {
        Self::spawn_with_transport_laned(processes, drivers, config, &InMemory, lanes, lane_of)
            .expect("the in-memory transport is infallible")
    }

    /// Spawns the workers over an arbitrary [`Transport`] backend — the
    /// in-memory [`InMemory`] links or real sockets (`snapstab-net`'s
    /// `UdpLoopback`). Fallible because a networked backend binds OS
    /// resources.
    ///
    /// # Panics
    ///
    /// See [`LiveRunner::spawn_with_drivers`].
    pub fn spawn_with_transport(
        processes: Vec<P>,
        drivers: Vec<Option<Driver<P>>>,
        config: LiveConfig,
        transport: &dyn Transport<P::Msg>,
    ) -> std::io::Result<Self> {
        let links = transport.connect(processes.len(), &config, None)?;
        Ok(Self::spawn_inner(processes, drivers, config, links))
    }

    /// The multi-lane variant of [`LiveRunner::spawn_with_transport`]
    /// (see [`LiveRunner::spawn_with_drivers_laned`]).
    pub fn spawn_with_transport_laned(
        processes: Vec<P>,
        drivers: Vec<Option<Driver<P>>>,
        config: LiveConfig,
        transport: &dyn Transport<P::Msg>,
        lanes: usize,
        lane_of: LaneOf<P::Msg>,
    ) -> std::io::Result<Self> {
        let links = transport.connect(processes.len(), &config, Some((lanes, lane_of)))?;
        Ok(Self::spawn_inner(processes, drivers, config, links))
    }

    fn spawn_inner(
        processes: Vec<P>,
        drivers: Vec<Option<Driver<P>>>,
        config: LiveConfig,
        links: LinkMatrix<P::Msg>,
    ) -> Self {
        let n = processes.len();
        assert!(
            n >= 2,
            "a message-passing system needs at least 2 processes"
        );
        assert_eq!(drivers.len(), n, "one driver slot per process");
        assert_eq!(links.len(), n * n, "transport built a full link matrix");
        let counter = Arc::new(AtomicU64::new(0));
        let mut runner = LiveRunner {
            n,
            config,
            counter,
            links,
            handles: (0..n).map(|_| None).collect(),
            senders: Vec::with_capacity(n),
            parked: (0..n).map(|_| None).collect(),
            activity: (0..n).map(|_| Arc::new(AtomicU64::new(0))).collect(),
            crash_noops: 0,
            restart_noops: 0,
            // Placeholder; reset below once every worker is spawned, so
            // wall-clock throughput excludes thread-spawn cost.
            started: Instant::now(),
        };
        for (i, (protocol, driver)) in processes.into_iter().zip(drivers).enumerate() {
            let (tx, rx) = mpsc::channel();
            runner.senders.push(tx);
            let handle = runner.spawn_worker(
                i,
                protocol,
                Trace::new(),
                WorkerStats::default(),
                driver,
                rx,
            );
            runner.handles[i] = Some(handle);
        }
        runner.started = Instant::now();
        runner
    }

    fn spawn_worker(
        &self,
        i: usize,
        protocol: P,
        log: Trace<P::Msg, P::Event>,
        stats: WorkerStats,
        driver: Option<Driver<P>>,
        commands: Receiver<Command<P>>,
    ) -> JoinHandle<WorkerReport<P>> {
        let me = ProcessId::new(i);
        let incoming: Vec<Arc<dyn Link<P::Msg>>> = (0..self.n)
            .filter(|&from| from != i)
            .map(|from| {
                self.links[from * self.n + i]
                    .as_ref()
                    .expect("off-diagonal")
                    .clone()
            })
            .collect();
        let outgoing: Vec<Option<Arc<dyn Link<P::Msg>>>> = (0..self.n)
            .map(|to| self.links[i * self.n + to].clone())
            .collect();
        let worker = Worker {
            me,
            n: self.n,
            protocol,
            rng: SimRng::seed_from(
                self.config.seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            ),
            incoming,
            outgoing,
            commands,
            counter: self.counter.clone(),
            activity: self.activity[i].clone(),
            log,
            send_buf: Vec::new(),
            event_buf: Vec::new(),
            record: self.config.record_trace,
            detail: self.config.detail,
            driver,
            stats,
            min_backoff: self.config.min_backoff,
            max_backoff: self.config.max_backoff,
        };
        std::thread::Builder::new()
            .name(format!("snapstab-worker-{i}"))
            .spawn(move || worker.run())
            .expect("spawn worker thread")
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Global atomic steps executed so far.
    pub fn step_count(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// True if worker `p` is currently crashed.
    pub fn is_crashed(&self, p: ProcessId) -> bool {
        self.parked[p.index()].is_some()
    }

    /// Worker `p`'s liveness counter: deliveries plus effective
    /// activations, bumped by the worker thread itself. A supervisor
    /// polls this to detect *wedged* workers (no effective progress
    /// within a deadline) without round-tripping a command through the
    /// worker — a wedged worker might be slow to answer one.
    pub fn activity(&self, p: ProcessId) -> u64 {
        self.activity[p.index()].load(Ordering::Relaxed)
    }

    /// How many [`LiveRunner::crash`] calls were no-ops (worker already
    /// crashed).
    pub fn crash_noops(&self) -> u64 {
        self.crash_noops
    }

    /// How many [`LiveRunner::restart`] calls were no-ops (worker not
    /// crashed).
    pub fn restart_noops(&self) -> u64 {
        self.restart_noops
    }

    /// Samples every directed link *while the run is live*: cumulative
    /// counters plus instantaneous in-transit occupancy, in row-major
    /// `(from, to)` order. Lock-free towards the workers beyond each
    /// link's own mutex, so sampling never pauses the fleet — this is
    /// what the monitor attaches to each decided cut.
    pub fn link_samples(&self) -> Vec<LinkSample> {
        self.links
            .iter()
            .flatten()
            .map(|link| LinkSample {
                from: link.from(),
                to: link.to(),
                stats: link.stats(),
                in_transit: link.len(),
            })
            .collect()
    }

    /// Runs a closure against process `p` with scribe access, atomically
    /// with respect to its protocol actions, and returns its result. On a
    /// crashed worker the closure runs directly on the parked state.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread died abnormally (panicked protocol).
    pub fn with_process_ctx<R, F>(&mut self, p: ProcessId, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut P, &mut Scribe<'_, P::Msg, P::Event>) -> R + Send + 'static,
    {
        let i = p.index();
        if let Some(parked) = self.parked[i].as_mut() {
            let mut scribe = Scribe {
                me: p,
                counter: &self.counter,
                log: &mut parked.log,
                record: self.config.record_trace,
            };
            return f(&mut parked.protocol, &mut scribe);
        }
        let (tx, rx) = mpsc::channel();
        let cmd = Command::With(Box::new(
            move |proto: &mut P, scribe: &mut Scribe<'_, _, _>| {
                let _ = tx.send(f(proto, scribe));
            },
        ));
        self.senders[i]
            .send(cmd)
            .expect("worker command channel closed");
        if let Some(h) = self.handles[i].as_ref() {
            h.thread().unpark();
        }
        rx.recv_timeout(Duration::from_secs(30))
            .expect("worker did not answer within 30s")
    }

    /// Runs a closure against process `p` and returns its result.
    pub fn with_process<R, F>(&mut self, p: ProcessId, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut P) -> R + Send + 'static,
    {
        self.with_process_ctx(p, move |proto, _scribe| f(proto))
    }

    /// Records a harness marker at process `p` under a fresh global step.
    pub fn mark(&mut self, p: ProcessId, label: impl Into<String>) {
        let label = label.into();
        self.with_process_ctx(p, move |_proto, scribe| {
            scribe.mark(label);
        });
    }

    /// Polls `pred` on process `p` until it holds or `timeout` elapses.
    /// Returns whether it held.
    pub fn wait_until<F>(&mut self, p: ProcessId, pred: F, timeout: Duration) -> bool
    where
        F: Fn(&P) -> bool + Send + Sync + 'static,
    {
        let pred = Arc::new(pred);
        let deadline = Instant::now() + timeout;
        loop {
            let pred = pred.clone();
            if self.with_process(p, move |proto| pred(proto)) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Kills worker `p`'s thread: the live analogue of a crash failure.
    /// The process state and event log survive for [`LiveRunner::restart`];
    /// messages addressed to `p` stay in its incoming links undelivered
    /// (new sends keep hitting the capacity bound), and nothing `p` would
    /// have sent appears — exactly the simulator's crash semantics, but
    /// enforced by an actually-dead thread.
    ///
    /// Idempotent: crashing an already-crashed worker is a counted no-op
    /// ([`LiveRunner::crash_noops`]) returning `false`, so a supervisor
    /// and a chaos schedule can race without tearing the runner down.
    /// Returns `true` if the worker was actually crashed by this call.
    ///
    /// # Panics
    ///
    /// Panics only if the worker thread itself panicked (a protocol bug).
    pub fn crash(&mut self, p: ProcessId) -> bool {
        let i = p.index();
        let Some(handle) = self.handles[i].take() else {
            self.crash_noops += 1;
            return false;
        };
        // The worker exits on a disconnected command channel too, so a
        // failed send (it already observed Stop and dropped the receiver)
        // is fine — never panic on the race.
        let _ = self.senders[i].send(Command::Stop);
        handle.thread().unpark();
        let mut report = handle.join().expect("worker panicked");
        if self.config.record_trace {
            let step = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
            report.log.push_marker(step, p, "crash");
        }
        self.parked[i] = Some(report);
        true
    }

    /// Respawns a previously crashed worker on a fresh OS thread, resuming
    /// from its surviving process state. Its incoming links re-register
    /// the new thread for wake-ups; backlogged messages get delivered.
    ///
    /// Idempotent: restarting a never-crashed or already-restarted worker
    /// is a counted no-op ([`LiveRunner::restart_noops`]) returning
    /// `false`. Returns `true` if a thread was actually respawned.
    pub fn restart(&mut self, p: ProcessId) -> bool {
        let i = p.index();
        let Some(mut report) = self.parked[i].take() else {
            self.restart_noops += 1;
            return false;
        };
        if self.config.record_trace {
            let step = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
            report.log.push_marker(step, p, "restart");
        }
        let (tx, rx) = mpsc::channel();
        self.senders[i] = tx;
        let handle = self.spawn_worker(
            i,
            report.protocol,
            report.log,
            report.stats,
            report.driver,
            rx,
        );
        self.handles[i] = Some(handle);
        true
    }

    /// Stops every worker, joins the threads, and merges the per-worker
    /// logs into one step-ordered trace.
    pub fn stop(mut self) -> LiveReport<P> {
        for i in 0..self.n {
            if self.handles[i].is_some() {
                let _ = self.senders[i].send(Command::Stop);
            }
        }
        let mut reports: Vec<WorkerReport<P>> = Vec::with_capacity(self.n);
        for i in 0..self.n {
            if let Some(h) = self.handles[i].take() {
                h.thread().unpark();
                reports.push(h.join().expect("worker panicked"));
            } else {
                reports.push(self.parked[i].take().expect("crashed worker state"));
            }
        }
        let wall = self.started.elapsed();
        let mut stats = LiveStats {
            steps: self.counter.load(Ordering::Relaxed),
            ..LiveStats::default()
        };
        for r in &reports {
            stats.activations += r.stats.activations;
            stats.effective_activations += r.stats.effective_activations;
            stats.deliveries += r.stats.deliveries;
            stats.protocol_events += r.stats.protocol_events;
        }
        for link in self.links.iter().flatten() {
            stats.links.absorb(link.stats());
        }
        let mut processes = Vec::with_capacity(self.n);
        let mut logs = Vec::with_capacity(self.n);
        for r in reports {
            processes.push(r.protocol);
            logs.push(r.log);
        }
        LiveReport {
            processes,
            trace: Trace::merged(logs),
            stats,
            wall,
        }
    }
}

/// The seam between the protocol fleet and its execution substrate.
///
/// Two backends implement it: [`LiveRunner`] (one OS thread per process —
/// faithful to the paper's "each process runs on its own machine" model)
/// and [`crate::mux::MuxRunner`] (an event-driven pool multiplexing N
/// protocol *instances* over W worker threads). Everything above the
/// seam — the services in [`crate::service`], the chaos harness in
/// [`crate::chaos`], the spec checkers consuming the merged trace — is
/// written against this trait, so the two backends are interchangeable
/// and the cross-backend conformance suite (`tests/mux_runtime.rs`) can
/// drive the same seeded workload through both.
///
/// Fault injection is deliberately phrased per *process*, not per
/// thread: on the thread backend [`RuntimeBackend::crash`] kills an OS
/// thread, on the mux backend it parks an instance while its pool
/// worker keeps serving healthy neighbours — yet the observable
/// semantics (state survives, links hold backlogged messages, the
/// `"crash"`/`"restart"` markers segment the trace) are identical.
///
/// The trait has generic methods ([`RuntimeBackend::with_process_ctx`])
/// and is therefore not object-safe; consumers take `B: RuntimeBackend<P>`
/// type parameters instead of `dyn` objects.
pub trait RuntimeBackend<P: Protocol>: Send {
    /// Number of protocol instances.
    fn n(&self) -> usize;

    /// Global atomic steps executed so far.
    fn step_count(&self) -> u64;

    /// True if instance `p` is currently crashed.
    fn is_crashed(&self, p: ProcessId) -> bool;

    /// Instance `p`'s liveness counter (deliveries + effective
    /// activations), bumped by whichever worker steps it.
    fn activity(&self, p: ProcessId) -> u64;

    /// Crashes instance `p`. Idempotent counted no-op when already
    /// crashed; returns whether this call actually crashed it.
    fn crash(&mut self, p: ProcessId) -> bool;

    /// Restarts a crashed instance `p`. Idempotent counted no-op when
    /// not crashed; returns whether this call actually restarted it.
    fn restart(&mut self, p: ProcessId) -> bool;

    /// Counted [`RuntimeBackend::crash`] no-ops.
    fn crash_noops(&self) -> u64;

    /// Counted [`RuntimeBackend::restart`] no-ops.
    fn restart_noops(&self) -> u64;

    /// Samples every directed link while the run is live.
    fn link_samples(&self) -> Vec<LinkSample>;

    /// Runs a closure against process `p` with scribe access, atomically
    /// with respect to its protocol actions, and returns its result.
    fn with_process_ctx<R, F>(&mut self, p: ProcessId, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut P, &mut Scribe<'_, P::Msg, P::Event>) -> R + Send + 'static;

    /// Runs a closure against process `p` and returns its result.
    fn with_process<R, F>(&mut self, p: ProcessId, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut P) -> R + Send + 'static,
    {
        self.with_process_ctx(p, move |proto, _scribe| f(proto))
    }

    /// Records a harness marker at process `p` under a fresh global step.
    fn mark(&mut self, p: ProcessId, label: impl Into<String>) {
        let label = label.into();
        self.with_process_ctx(p, move |_proto, scribe| {
            scribe.mark(label);
        });
    }

    /// Polls `pred` on process `p` until it holds or `timeout` elapses.
    /// Returns whether it held.
    fn wait_until<F>(&mut self, p: ProcessId, pred: F, timeout: Duration) -> bool
    where
        F: Fn(&P) -> bool + Send + Sync + 'static,
    {
        let pred = Arc::new(pred);
        let deadline = Instant::now() + timeout;
        loop {
            let pred = pred.clone();
            if self.with_process(p, move |proto| pred(proto)) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// Stops the run and merges the per-worker logs.
    fn stop(self) -> LiveReport<P>
    where
        Self: Sized;
}

impl<P> RuntimeBackend<P> for LiveRunner<P>
where
    P: Protocol + Send + 'static,
    P::Msg: Send,
    P::Event: Send,
{
    fn n(&self) -> usize {
        LiveRunner::n(self)
    }

    fn step_count(&self) -> u64 {
        LiveRunner::step_count(self)
    }

    fn is_crashed(&self, p: ProcessId) -> bool {
        LiveRunner::is_crashed(self, p)
    }

    fn activity(&self, p: ProcessId) -> u64 {
        LiveRunner::activity(self, p)
    }

    fn crash(&mut self, p: ProcessId) -> bool {
        LiveRunner::crash(self, p)
    }

    fn restart(&mut self, p: ProcessId) -> bool {
        LiveRunner::restart(self, p)
    }

    fn crash_noops(&self) -> u64 {
        LiveRunner::crash_noops(self)
    }

    fn restart_noops(&self) -> u64 {
        LiveRunner::restart_noops(self)
    }

    fn link_samples(&self) -> Vec<LinkSample> {
        LiveRunner::link_samples(self)
    }

    fn with_process_ctx<R, F>(&mut self, p: ProcessId, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut P, &mut Scribe<'_, P::Msg, P::Event>) -> R + Send + 'static,
    {
        LiveRunner::with_process_ctx(self, p, f)
    }

    fn stop(self) -> LiveReport<P> {
        LiveRunner::stop(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snapstab_core::idl::IdlProcess;
    use snapstab_core::request::RequestState;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn idl_fleet(n: usize) -> Vec<IdlProcess> {
        (0..n)
            .map(|i| IdlProcess::new(p(i), n, 10 + i as u64))
            .collect()
    }

    #[test]
    fn live_idl_wave_decides_and_learns_ids() {
        let mut r = LiveRunner::spawn(idl_fleet(4), LiveConfig::default());
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        assert!(
            r.wait_until(
                p(0),
                |m: &IdlProcess| m.request() == RequestState::Done,
                Duration::from_secs(20),
            ),
            "live IDL computation must decide"
        );
        let report = r.stop();
        let learner = &report.processes[0];
        assert_eq!(learner.idl().min_id(), 10);
        for i in 1..4 {
            assert_eq!(learner.idl().id_of(p(i)), 10 + i as u64);
        }
        assert!(report.stats.deliveries > 0);
        assert!(report.stats.links.enqueued >= report.stats.links.delivered);
    }

    #[test]
    fn merged_trace_is_step_ordered_and_causal() {
        let mut r = LiveRunner::spawn(idl_fleet(3), LiveConfig::default());
        r.mark(p(0), "request");
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        assert!(r.wait_until(
            p(0),
            |m: &IdlProcess| m.request() == RequestState::Done,
            Duration::from_secs(20),
        ));
        let report = r.stop();
        let steps: Vec<u64> = report.trace.iter().map(|te| te.step).collect();
        assert!(steps.windows(2).all(|w| w[0] <= w[1]), "monotone steps");
        assert!(!report.trace.is_empty());
        // Each delivery of a message follows some send of it: check counts.
        let sends = report.trace.count(|e| {
            matches!(
                e,
                TraceEvent::Sent {
                    fate: snapstab_sim::SendFate::Enqueued,
                    ..
                }
            )
        });
        let delivered = report
            .trace
            .count(|e| matches!(e, TraceEvent::Delivered { .. }));
        assert!(
            delivered <= sends,
            "{delivered} deliveries from {sends} sends"
        );
    }

    #[test]
    fn record_trace_off_keeps_stats() {
        let cfg = LiveConfig {
            record_trace: false,
            ..LiveConfig::default()
        };
        let mut r = LiveRunner::spawn(idl_fleet(3), cfg);
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        assert!(r.wait_until(
            p(0),
            |m: &IdlProcess| m.request() == RequestState::Done,
            Duration::from_secs(20),
        ));
        let report = r.stop();
        assert!(report.trace.is_empty());
        assert!(report.stats.deliveries > 0, "stats survive");
    }

    #[test]
    fn protocol_detail_keeps_protocol_events_only() {
        let cfg = LiveConfig {
            detail: TraceDetail::Protocol,
            ..LiveConfig::default()
        };
        let mut r = LiveRunner::spawn(idl_fleet(3), cfg);
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        assert!(r.wait_until(
            p(0),
            |m: &IdlProcess| m.request() == RequestState::Done,
            Duration::from_secs(20),
        ));
        let report = r.stop();
        let wire = report
            .trace
            .count(|e| matches!(e, TraceEvent::Sent { .. } | TraceEvent::Delivered { .. }));
        assert_eq!(wire, 0, "no wire events in a message-free trace");
        let protocol = report
            .trace
            .count(|e| matches!(e, TraceEvent::Protocol { .. }));
        assert!(protocol > 0, "the spec-relevant events survive");
    }

    #[test]
    fn lossy_wave_still_decides() {
        let cfg = LiveConfig {
            loss: 0.3,
            seed: 5,
            ..LiveConfig::default()
        };
        let mut r = LiveRunner::spawn(idl_fleet(3), cfg);
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        assert!(
            r.wait_until(
                p(0),
                |m: &IdlProcess| m.request() == RequestState::Done,
                Duration::from_secs(30),
            ),
            "retransmission must push the wave through 30% loss"
        );
        let report = r.stop();
        assert!(
            report.stats.links.lost_in_transit > 0,
            "loss actually happened"
        );
    }

    #[test]
    fn crash_blocks_wave_restart_unblocks_it() {
        let mut r = LiveRunner::spawn(idl_fleet(3), LiveConfig::default());
        r.crash(p(2));
        assert!(r.is_crashed(p(2)));
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        // The wave needs feedback from every process; with P2 dead it
        // cannot decide.
        assert!(
            !r.wait_until(
                p(0),
                |m: &IdlProcess| m.request() == RequestState::Done,
                Duration::from_millis(300),
            ),
            "wave must stall while a worker is crashed"
        );
        r.restart(p(2));
        assert!(!r.is_crashed(p(2)));
        assert!(
            r.wait_until(
                p(0),
                |m: &IdlProcess| m.request() == RequestState::Done,
                Duration::from_secs(30),
            ),
            "wave must complete after the restart"
        );
        let report = r.stop();
        let markers: Vec<String> = report
            .trace
            .markers()
            .map(|(_, _, l)| l.to_string())
            .collect();
        assert!(markers.contains(&"crash".to_string()));
        assert!(markers.contains(&"restart".to_string()));
    }

    #[test]
    fn stop_collects_crashed_worker_state() {
        let mut r = LiveRunner::spawn(idl_fleet(2), LiveConfig::default());
        r.crash(p(1));
        let report = r.stop();
        assert_eq!(report.processes.len(), 2);
    }

    /// Satellite regression: crash/restart are idempotent counted no-ops,
    /// never panics — a supervisor and a chaos schedule may race.
    #[test]
    fn crash_restart_idempotent_counted_noops() {
        let mut r = LiveRunner::spawn(idl_fleet(3), LiveConfig::default());
        // Restart of a never-crashed worker: no-op.
        assert!(!r.restart(p(1)));
        assert_eq!(r.restart_noops(), 1);
        // First crash acts; second is a no-op.
        assert!(r.crash(p(1)));
        assert!(!r.crash(p(1)));
        assert_eq!(r.crash_noops(), 1);
        assert!(r.is_crashed(p(1)));
        // First restart acts; second (already restarted) is a no-op.
        assert!(r.restart(p(1)));
        assert!(!r.restart(p(1)));
        assert_eq!(r.restart_noops(), 2);
        assert!(!r.is_crashed(p(1)));
        // The restarted worker is actually alive: it still answers and
        // makes protocol progress.
        r.with_process(p(1), |m: &mut IdlProcess| m.request_learning());
        assert!(r.wait_until(
            p(1),
            |m: &IdlProcess| m.request() == RequestState::Done,
            Duration::from_secs(30),
        ));
        let report = r.stop();
        // Exactly one crash/restart marker pair despite the double calls.
        let count = |label: &str| {
            report
                .trace
                .markers()
                .filter(|(_, _, l)| *l == label)
                .count()
        };
        assert_eq!(count("crash"), 1);
        assert_eq!(count("restart"), 1);
    }

    #[test]
    fn activity_counter_tracks_worker_progress() {
        let mut r = LiveRunner::spawn(idl_fleet(3), LiveConfig::default());
        let before = r.activity(p(0));
        r.with_process(p(0), |m: &mut IdlProcess| m.request_learning());
        assert!(r.wait_until(
            p(0),
            |m: &IdlProcess| m.request() == RequestState::Done,
            Duration::from_secs(30),
        ));
        assert!(
            r.activity(p(0)) > before,
            "a wave must register as activity"
        );
        r.stop();
    }
}
