//! The pluggable transport abstraction: what [`LiveRunner`] needs from a
//! message substrate, extracted from [`LiveLink`].
//!
//! A *transport* wires a fully connected topology of `n` processes: for
//! every ordered pair `(from, to)` it produces one directed [`Link`]
//! carrying the paper's §4 channel semantics — FIFO order, bounded
//! capacity with *silent* drop-on-full, fair loss strictly below 1 — plus
//! the runtime's operational surface (per-link counters, receiver
//! wake-up, optional capacity lanes for the sharded service).
//!
//! Two backends implement it:
//!
//! * [`InMemory`] (this crate) — the original [`LiveLink`] path: a
//!   `Mutex`-guarded queue per directed pair, loss and jitter injected by
//!   a seeded per-link RNG. [`crate::LiveRunner::spawn`] and the service
//!   front-ends use it by default; behavior is identical to the
//!   pre-abstraction runtime.
//! * `UdpLoopback` (`snapstab-net`) — real UDP datagram sockets, one per
//!   process: the kernel supplies loss, duplication and finite buffering
//!   for free, and the receive path *enforces* the paper's semantics
//!   (FIFO by dropping out-of-order/duplicate datagrams, per-lane
//!   capacity with silent drop-on-full).
//!
//! ```
//! use snapstab_runtime::{InMemory, Link, LiveConfig, Transport};
//! use snapstab_sim::{ProcessId, SendFate};
//!
//! // Wire a 3-process topology by hand and talk over one link.
//! let transport = InMemory;
//! let links = Transport::<u32>::connect(&transport, 3, &LiveConfig::default(), None).unwrap();
//! let link = links[0 * 3 + 1].as_ref().expect("off-diagonal");
//! assert_eq!(link.send(7), SendFate::Enqueued);
//! assert_eq!(link.try_recv(), Some(7));
//! assert_eq!(link.stats().delivered, 1);
//! ```
//!
//! [`LiveRunner`]: crate::LiveRunner

use std::sync::Arc;
use std::thread::Thread;

use snapstab_sim::{ProcessId, SendFate};

use crate::link::{LaneOf, LinkStats, LiveLink};
use crate::runner::LiveConfig;

/// Mixes a link's endpoints into the runtime seed, giving every directed
/// link an independent, reproducible RNG stream.
///
/// Every backend derives its per-link loss/jitter streams from this one
/// formula (each further splitting or interleaving streams in its own
/// way), so a given `(backend, config)` pair replays the same injected
/// loss/jitter decisions run after run. Streams are *not* identical
/// across backends — only reproducible within each.
pub fn link_seed(seed: u64, from: ProcessId, to: ProcessId) -> u64 {
    seed ^ (from.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (to.index() as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// Asserts the channel-parameter domain of the model, shared by every
/// backend: capacity at least 1 (§4 requires every channel to carry at
/// least one message), loss strictly below 1 (fairness), at least one
/// lane.
pub fn assert_channel_domain(capacity: usize, loss: f64, lanes: usize) {
    assert!(capacity >= 1, "channel capacity must be at least 1");
    assert!(
        (0.0..1.0).contains(&loss),
        "loss probability must be in [0,1) to preserve fairness, got {loss}"
    );
    assert!(lanes >= 1, "a link needs at least one lane");
}

/// One concurrent directed FIFO channel with the paper's §4 semantics —
/// the interface [`crate::LiveRunner`]'s workers drive, extracted from
/// [`LiveLink`].
///
/// Implementations must be thread-safe: the sending worker calls
/// [`Link::send`] while the receiving worker calls [`Link::try_recv`]
/// (and, for socket backends, a demultiplexer thread feeds the queue).
pub trait Link<M>: Send + Sync {
    /// Sender side of the link.
    fn from(&self) -> ProcessId;

    /// Receiver side of the link.
    fn to(&self) -> ProcessId;

    /// Registers (or replaces, after a worker restart) the receiving
    /// thread, unparked whenever a message becomes deliverable.
    fn register_receiver(&self, receiver: Thread);

    /// Offers a message. The transport may destroy it (fair loss) or
    /// silently drop it on a full lane (§4); the sender is never told
    /// beyond the returned [`SendFate`] — and a networked backend cannot
    /// even observe a remote drop, so its fate is a *local* judgment
    /// (e.g. `Enqueued` = handed to the socket). Never blocks beyond a
    /// short critical section.
    fn send(&self, msg: M) -> SendFate;

    /// Removes and returns the head message if one is deliverable now.
    fn try_recv(&self) -> Option<M>;

    /// Number of messages currently queued for delivery.
    fn len(&self) -> usize;

    /// True if nothing is queued for delivery.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the cumulative counters.
    fn stats(&self) -> LinkStats;
}

/// The full directed link matrix of a fully connected `n`-process
/// topology, row-major with `None` on the diagonal: slot `from * n + to`
/// holds the link `from → to`.
pub type LinkMatrix<M> = Vec<Option<Arc<dyn Link<M>>>>;

/// A factory wiring the fully connected topology over some substrate.
///
/// `connect` is fallible because real backends bind OS resources (e.g.
/// UDP sockets); [`InMemory`] never fails. When `lanes` is given, every
/// link enforces the §4 capacity bound *per lane* (see
/// [`LiveLink::with_lanes`]) — this is how the sharded service keeps
/// sibling shards from dropping each other's messages.
pub trait Transport<M> {
    /// Builds the `n × n` link matrix (diagonal `None`) for the given
    /// runtime configuration.
    fn connect(
        &self,
        n: usize,
        config: &LiveConfig,
        lanes: Option<(usize, LaneOf<M>)>,
    ) -> std::io::Result<LinkMatrix<M>>;
}

/// The in-process transport: one [`LiveLink`] per ordered pair, exactly
/// as the pre-[`Transport`] runtime wired them. Infallible; loss and
/// jitter are injected by seeded per-link RNG streams.
#[derive(Clone, Copy, Debug, Default)]
pub struct InMemory;

impl<M: Send + 'static> Transport<M> for InMemory {
    fn connect(
        &self,
        n: usize,
        config: &LiveConfig,
        lanes: Option<(usize, LaneOf<M>)>,
    ) -> std::io::Result<LinkMatrix<M>> {
        let mut links: LinkMatrix<M> = Vec::with_capacity(n * n);
        for from in 0..n {
            for to in 0..n {
                links.push((from != to).then(|| {
                    let link: Arc<dyn Link<M>> = Arc::new(match &lanes {
                        None => LiveLink::new(
                            ProcessId::new(from),
                            ProcessId::new(to),
                            config.capacity,
                            config.loss,
                            config.jitter,
                            config.seed,
                        ),
                        Some((lanes, lane_of)) => LiveLink::with_lanes(
                            ProcessId::new(from),
                            ProcessId::new(to),
                            config.capacity,
                            config.loss,
                            config.jitter,
                            config.seed,
                            *lanes,
                            lane_of.clone(),
                        ),
                    });
                    link
                }));
            }
        }
        Ok(links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_memory_builds_a_full_matrix() {
        let cfg = LiveConfig::default();
        let links = Transport::<u32>::connect(&InMemory, 3, &cfg, None).expect("infallible");
        assert_eq!(links.len(), 9);
        for from in 0..3 {
            for to in 0..3 {
                let slot = &links[from * 3 + to];
                if from == to {
                    assert!(slot.is_none(), "diagonal must be empty");
                } else {
                    let link = slot.as_ref().expect("off-diagonal");
                    assert_eq!(link.from(), ProcessId::new(from));
                    assert_eq!(link.to(), ProcessId::new(to));
                    assert!(link.is_empty());
                }
            }
        }
    }

    #[test]
    fn in_memory_links_behave_like_live_links() {
        let cfg = LiveConfig {
            capacity: 1,
            ..LiveConfig::default()
        };
        let links = Transport::<u32>::connect(&InMemory, 2, &cfg, None).expect("infallible");
        let link = links[1].as_ref().expect("0 -> 1");
        assert_eq!(link.send(5), SendFate::Enqueued);
        assert_eq!(link.send(6), SendFate::LostFull, "silent §4 drop");
        assert_eq!(link.len(), 1);
        assert_eq!(link.try_recv(), Some(5));
        assert_eq!(link.try_recv(), None);
        let stats = link.stats();
        assert_eq!((stats.sends, stats.lost_full, stats.delivered), (2, 1, 1));
        assert_eq!(stats.lost_reorder, 0, "in-memory links never reorder");
    }

    #[test]
    fn in_memory_respects_lanes() {
        let cfg = LiveConfig {
            capacity: 1,
            ..LiveConfig::default()
        };
        let lane_of: LaneOf<u32> = Arc::new(|m: &u32| (*m % 2) as usize);
        let links =
            Transport::<u32>::connect(&InMemory, 2, &cfg, Some((2, lane_of))).expect("infallible");
        let link = links[1].as_ref().expect("0 -> 1");
        assert_eq!(link.send(2), SendFate::Enqueued); // lane 0
        assert_eq!(link.send(3), SendFate::Enqueued); // lane 1
        assert_eq!(link.send(4), SendFate::LostFull); // lane 0 full
    }
}
