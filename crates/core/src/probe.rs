//! Monitoring probes: the data a snap-stabilizing snapshot wave carries
//! when it observes a *live* service (see `snapstab_runtime::monitor`).
//!
//! A monitoring instance runs the paper's §4.1 PIF-based snapshot
//! alongside a service: each wave collects one [`ProbeDigest`] per
//! process — a digest of the service protocol state plus the
//! instrumentation gauges its driver maintains — into a global cut. The
//! cut-level events a monitor publishes ([`MonitorEvent`]) are what
//! executable **Specification 5** ([`crate::spec::analyze_snapshot_trace`])
//! judges: one value per live process, causal consistency with the
//! surrounding service trace, and refusal (never fabrication) of cuts
//! from corrupted monitor state.
//!
//! The types live in `snapstab-core` (not the runtime) so the
//! specification checker can consume them from any trace — live,
//! simulated, or crafted-adversarial — via the [`MonitorEventView`]
//! projection.

use snapstab_sim::{ArbitraryState, SimRng};

/// One process's answer to a monitoring snapshot wave: a compact digest
/// of its service-protocol state and the instrumentation gauges its
/// driver maintains, captured at the moment the wave's broadcast is
/// received (so the collected cut reflects receive-time state, not
/// construction-time state).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProbeDigest {
    /// The reporting process (its index as `u16`): Specification 5's
    /// one-value-per-process check pins `values[i].proc == i`.
    pub proc: u16,
    /// FNV-1a hash of the service protocol state ([`state_digest`]) —
    /// cheap change detection across consecutive cuts.
    pub state_hash: u64,
    /// Client request-queue depth / workload backlog at this process.
    pub queue_depth: u32,
    /// In-flight work at this process (outstanding requests, buffer
    /// occupancy).
    pub in_flight: u32,
    /// Requests served (payloads collected) at this process so far —
    /// the gauge Specification 5's causal-consistency check bounds
    /// against the surrounding trace's `"served"` markers.
    pub served: u64,
}

impl ArbitraryState for ProbeDigest {
    fn arbitrary(rng: &mut SimRng) -> Self {
        ProbeDigest {
            proc: u32::arbitrary(rng) as u16,
            state_hash: u64::arbitrary(rng),
            queue_depth: u32::arbitrary(rng),
            in_flight: u32::arbitrary(rng),
            served: u64::arbitrary(rng),
        }
    }
}

/// FNV-1a digest of a `Debug`-rendered state — the `state_hash` a
/// monitor reports. Dependency-free and deterministic for a given
/// `Debug` rendering; collisions only blunt change *detection*, never
/// any Specification 5 verdict (the checker never compares hashes).
pub fn state_digest(state: &impl std::fmt::Debug) -> u64 {
    let rendered = format!("{state:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in rendered.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Cut-level events a monitoring instance publishes into the trace.
/// Specification 5 ([`crate::spec::analyze_snapshot_trace`]) judges
/// exactly these: every `CutDecided` needs a matching earlier
/// `CutStarted` at the same process (else the cut is *fabricated*),
/// its values must name each process exactly once (else *torn*), and
/// on fault-free intervals they must be causally consistent with the
/// surrounding service trace. `CutRefused` is always allowed — the
/// escape hatch corrupted monitor state is required to take.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MonitorEvent {
    /// The monitor started snapshot wave `cut`.
    CutStarted {
        /// Requester-assigned wave id, unique per initiator.
        cut: u64,
    },
    /// Wave `cut` decided with one digest per process (index order).
    CutDecided {
        /// The wave id announced by the matching `CutStarted`.
        cut: u64,
        /// The collected global cut, `values[i]` from process `i`.
        values: Vec<ProbeDigest>,
    },
    /// Wave `cut` was refused — the monitor could not vouch for a
    /// consistent collection (corrupted monitor state, malformed
    /// collection). Refusal is always legal; fabrication never is.
    CutRefused {
        /// The wave id being refused.
        cut: u64,
    },
}

/// Projection from a composite trace-event type onto its monitor
/// events, so [`crate::spec::analyze_snapshot_trace`] can judge any
/// trace whose event type *embeds* [`MonitorEvent`] (e.g. the live
/// runtime's `MonitoredEvent<E>`, which interleaves service events with
/// monitor events) without caring about the service half.
pub trait MonitorEventView {
    /// The embedded monitor event, if this event is one.
    fn as_monitor(&self) -> Option<&MonitorEvent>;
}

impl MonitorEventView for MonitorEvent {
    fn as_monitor(&self) -> Option<&MonitorEvent> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_digest_is_deterministic_and_sensitive() {
        assert_eq!(state_digest(&(1u64, 2u64)), state_digest(&(1u64, 2u64)));
        assert_ne!(state_digest(&(1u64, 2u64)), state_digest(&(2u64, 1u64)));
        assert_ne!(state_digest(&"a"), state_digest(&"b"));
    }

    #[test]
    fn arbitrary_probe_digest_varies() {
        let mut rng = SimRng::seed_from(9);
        let a = ProbeDigest::arbitrary(&mut rng);
        let b = ProbeDigest::arbitrary(&mut rng);
        assert_ne!(a, b, "two draws almost surely differ");
    }

    #[test]
    fn monitor_event_view_projects_identity() {
        let e = MonitorEvent::CutStarted { cut: 3 };
        assert_eq!(e.as_monitor(), Some(&e));
    }
}
